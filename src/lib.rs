//! Helper library for the runnable examples of the V-Star reproduction.
//!
//! The real functionality lives in the workspace crates; this package only hosts
//! the `examples/` binaries listed in the root `Cargo.toml`.
