//! Offline stand-in for `serde_derive`: a struct-only `#[derive(Serialize)]`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, which
//! are unreachable in this offline environment). Supports the shapes the
//! workspace actually derives on: non-generic structs with named fields, any
//! field visibility, attributes and doc comments on fields. Anything else
//! (enums, tuple structs, generics) produces a compile error naming the
//! limitation rather than silently misbehaving.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored stand-in trait) for a struct with
/// named fields, mapping each field to a key in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error tokens parse"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`, skipping attributes and visibility.
    let mut struct_kw = None;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Ident(id) = t {
            match id.to_string().as_str() {
                "struct" => {
                    struct_kw = Some(i);
                    break;
                }
                "enum" | "union" => {
                    return Err(format!(
                        "the vendored #[derive(Serialize)] only supports structs, found `{id}`"
                    ));
                }
                _ => {}
            }
        }
    }
    let struct_kw = struct_kw.ok_or("expected a `struct` item")?;
    let name = match tokens.get(struct_kw + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a struct name after `struct`".to_string()),
    };
    let body = match tokens.get(struct_kw + 2) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "the vendored #[derive(Serialize)] does not support generics on `{name}`"
            ));
        }
        _ => {
            return Err(format!(
                "the vendored #[derive(Serialize)] requires named fields on `{name}`"
            ));
        }
    };

    let fields = named_fields(body)?;
    if fields.is_empty() {
        return Ok(impl_for(&name, "::std::vec::Vec::new()"));
    }

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(\"{field}\".to_string(), ::serde::Serialize::to_value(&self.{field})),"
        ));
    }
    Ok(impl_for(&name, &format!("vec![{entries}]")))
}

/// Extracts field names from the brace body of a struct: for each top-level
/// comma-separated segment, the identifier immediately before the first
/// top-level `:` (this skips attributes, doc comments and visibility).
///
/// Angle-bracket depth is tracked because generic arguments are bare token
/// sequences, not groups: without it, the `,` and `:` inside a type like
/// `BTreeMap<String, std::string::String>` would be misread as a new field.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut field_taken = false;
    let mut angle_depth = 0u32;
    let mut prev_joint_minus = false;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                // The `>` of a fn-pointer `->` is not a closing bracket.
                '>' if !prev_joint_minus => angle_depth = angle_depth.saturating_sub(1),
                ':' if angle_depth == 0 && !field_taken => {
                    let id = last_ident.take().ok_or(
                        "expected a field name before `:` (tuple structs are unsupported)",
                    )?;
                    fields.push(id);
                    field_taken = true;
                }
                ',' if angle_depth == 0 => {
                    field_taken = false;
                    last_ident = None;
                }
                _ => {}
            }
            prev_joint_minus = p.as_char() == '-' && p.spacing() == Spacing::Joint;
        } else {
            prev_joint_minus = false;
            if let TokenTree::Ident(id) = t {
                last_ident = Some(id.to_string());
            }
        }
    }
    Ok(fields)
}

fn impl_for(name: &str, object: &str) -> TokenStream {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object({object})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
