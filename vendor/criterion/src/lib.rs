//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short warm-up, then a
//! fixed batch of timed iterations, and prints mean wall-clock time per
//! iteration. Benches therefore still *run* (`cargo bench`) and still
//! *compile-check* (`cargo bench --no-run`) in this offline environment; for
//! publication-grade numbers swap in the real crate.
//!
//! Honors the standard libtest-style arguments cargo passes through: a filter
//! substring selects benchmark IDs, and `--test` (used by `cargo test
//! --benches`) runs each body once without timing. Unknown flags are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (after one warm-up iteration).
const MEASURED_ITERS: u32 = 10;

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo and libtest pass a handful of flags benches must
                // tolerate; everything starting with '-' is not a filter.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named benchmark identifier, optionally derived from an input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an ID `"<function>/<parameter>"`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function.into()) }
    }

    /// Creates an ID from just the input parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// the stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        if self.criterion.should_run(&id) {
            run_one(&id, self.criterion.test_mode, &mut f);
        }
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        if self.criterion.should_run(&id) {
            run_one(&id, self.criterion.test_mode, &mut |b| f(b, input));
        }
        self
    }

    /// Finishes the group (printing nothing extra; present for API parity).
    pub fn finish(self) {}
}

fn run_one(id: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher =
        Bencher { iters: if test_mode { 1 } else { MEASURED_ITERS }, elapsed: Duration::ZERO };
    f(&mut bencher);
    if test_mode {
        println!("test {id} ... ok");
    } else {
        let per_iter = bencher.elapsed.checked_div(bencher.iters).unwrap_or_default();
        println!("bench {id:<50} {:>12.3?}/iter ({} iters)", per_iter, bencher.iters);
    }
}

/// Passed to benchmark closures; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then a fixed batch of timed
    /// iterations. Return values are passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// An opaque identity function that prevents the optimizer from removing the
/// computation of its argument (re-export of [`std::hint::black_box`]).
pub use std::hint::black_box;

/// Collects benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion { filter: None, test_mode: false };
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10).measurement_time(Duration::from_millis(1));
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // One warm-up plus MEASURED_ITERS timed iterations.
        assert_eq!(calls, MEASURED_ITERS + 1);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion { filter: Some("nomatch".into()), test_mode: false };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| calls += n as u32)
        });
        group.finish();
        assert_eq!(calls, 14, "warm-up + one timed iteration");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
