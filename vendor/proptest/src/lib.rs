//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * integer-range strategies (`0u64..5000`, `4usize..24`, …),
//! * [`collection::vec`] and [`sample::select`],
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header), and the [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Each property runs `ProptestConfig::cases` times on a deterministic
//! per-case seed; a failing case reports the generated inputs and its case
//! index. Unlike the real proptest there is **no shrinking** — the first
//! failing input is reported as-is — which keeps this stand-in dependency-free
//! while preserving the bug-finding power the test-suite relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports intended for glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

/// The result type property bodies produce (`Ok` = case passed).
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random test inputs.
///
/// The stand-in generates directly from an RNG with no intermediate value
/// tree, so there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategies over collections.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() { 0 } else { rng.gen_range(self.len.clone()) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value sets.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Picks uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `choices` is empty.
    pub fn select<T: Clone + Debug>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.choices.is_empty(), "sample::select needs at least one choice");
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }
}

#[doc(hidden)]
pub mod runner {
    use super::{ProptestConfig, SeedableRng, StdRng, TestCaseResult};
    use std::fmt::Debug;

    /// Drives one property: `cases` deterministic cases, reporting the inputs
    /// of the first failure. Called by the [`proptest!`](crate::proptest)
    /// expansion; not public API.
    pub fn run_property<I: Debug>(
        name: &str,
        config: &ProptestConfig,
        mut gen_inputs: impl FnMut(&mut StdRng) -> I,
        mut body: impl FnMut(I) -> TestCaseResult,
    ) {
        // Deterministic base seed per property so failures reproduce; FNV-1a
        // over the property name keeps seeds distinct between properties.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..config.cases {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(u64::from(case)));
            let inputs = gen_inputs(&mut rng);
            let repr = format!("{inputs:?}");
            if let Err(e) = body(inputs) {
                panic!(
                    "property `{name}` failed at case {case}/{cases} with inputs {repr}: {msg}",
                    cases = config.cases,
                    msg = e.message,
                );
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_parens)]
                $crate::runner::run_property(
                    stringify!($name),
                    &$config,
                    |rng| {
                        ($({
                            let value = $crate::Strategy::generate(&($strategy), rng);
                            value
                        }),+)
                    },
                    |($($arg),+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Like `assert!`, but inside [`proptest!`] bodies: fails the current case with
/// the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Like `assert_ne!` inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_stay_in_bounds(a in 0u64..5000, b in 4usize..24) {
            prop_assert!(a < 5000);
            prop_assert!((4..24).contains(&b));
        }

        /// `collection::vec` + `sample::select` + `prop_map` compose.
        #[test]
        fn vec_select_and_map_compose(s in crate::collection::vec(
            crate::sample::select(vec!['x', 'y']), 0..10).prop_map(|v| v.into_iter().collect::<String>())) {
            prop_assert!(s.len() < 10);
            prop_assert!(s.chars().all(|c| c == 'x' || c == 'y'), "unexpected char in {:?}", s);
        }
    }

    proptest! {
        /// The no-config form defaults to 256 cases.
        #[test]
        fn default_config_form_works(x in 0u8..10) {
            prop_assert_ne!(x, 10);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case")]
    fn failing_property_reports_inputs() {
        crate::runner::run_property(
            "failing",
            &ProptestConfig::with_cases(8),
            |rng| {
                use rand::Rng;
                rng.gen_range(0u32..100)
            },
            |n| {
                prop_assert!(n > 1000, "n was {}", n);
                Ok(())
            },
        );
    }
}
