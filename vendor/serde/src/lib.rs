//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the minimal serialization surface the workspace uses: a
//! [`Serialize`] trait rendered through a self-describing [`Value`] tree, plus
//! a struct-only `#[derive(Serialize)]` re-exported from the companion
//! `serde_derive` stand-in. `serde_json` (also vendored) formats the tree.
//!
//! The real serde streams through a `Serializer` visitor; building an
//! intermediate [`Value`] is simpler and plenty for report-sized data. Code
//! written against this subset (`#[derive(Serialize)]` on field structs,
//! `serde_json::to_string_pretty`) compiles unchanged against the real crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the `::serde::` paths the derive macro generates resolve inside this
// crate's own unit tests as well.
extern crate self as serde;

pub use serde_derive::Serialize;

use std::collections::BTreeMap;

/// A self-describing serialized value tree (the stand-in's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (from `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (covers all primitive integer widths in use).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key–value map preserving field declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value of an object's field, if `self` is an object that has it.
    /// When a key repeats, the first occurrence wins.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer as `i64`, if `self` is an integer that fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer as `u64`, if `self` is a non-negative integer that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The number as `f64` (integers convert), if `self` is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean, if `self` is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in declaration order, if `self` is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
///
/// Derivable for structs with named fields via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5usize.to_value(), Value::Int(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<usize>::None.to_value(), Value::Null);
        assert_eq!(Some(2u32).to_value(), Value::Int(2));
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn derive_produces_ordered_object() {
        #[derive(Serialize)]
        struct Point {
            x: usize,
            y: Option<f64>,
            label: String,
        }

        let p = Point { x: 3, y: None, label: "origin-ish".into() };
        let Value::Object(fields) = p.to_value() else {
            panic!("derive should produce an object");
        };
        assert_eq!(fields[0], ("x".to_string(), Value::Int(3)));
        assert_eq!(fields[1], ("y".to_string(), Value::Null));
        assert_eq!(fields[2], ("label".to_string(), Value::Str("origin-ish".into())));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(7)),
            ("s".into(), Value::Str("hi".into())),
            ("xs".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("xs").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().map(<[(String, Value)]>::len), Some(3));
        assert!(Value::Null.get("n").is_none());
        assert!(Value::Int(1).as_str().is_none());
        assert!(Value::Int(-1).as_u64().is_none());
    }

    #[test]
    fn derive_handles_generic_argument_types() {
        // Regression: commas/colons inside angle brackets are part of the field
        // TYPE, not new fields — `BTreeMap<String, std::string::String>` must
        // not make the derive invent a field named "std".
        #[derive(Serialize)]
        struct Nested {
            map: BTreeMap<String, std::string::String>,
            items: Vec<Option<usize>>,
        }

        let n = Nested {
            map: BTreeMap::from([("k".to_string(), "v".to_string())]),
            items: vec![Some(1), None],
        };
        let Value::Object(fields) = n.to_value() else {
            panic!("derive should produce an object");
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "map");
        assert_eq!(fields[0].1, Value::Object(vec![("k".into(), Value::Str("v".into()))]));
        assert_eq!(fields[1].0, "items");
        assert_eq!(fields[1].1, Value::Array(vec![Value::Int(1), Value::Null]));
    }
}
