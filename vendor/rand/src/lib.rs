//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to crates.io,
//! so this vendored crate re-implements exactly the rand 0.8 API subset the
//! workspace uses: [`RngCore`], the [`Rng`] extension trait (`gen_range`,
//! `gen_bool`), [`SeedableRng`], [`rngs::StdRng`] (a xoshiro256** generator
//! seeded via SplitMix64) and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! It is deterministic given a seed, statistically decent for test-data
//! generation, and **not** cryptographically secure. If network access is ever
//! restored, deleting `vendor/` and pointing `Cargo.toml` at crates.io restores
//! the real implementation with no source changes elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Draws a uniform `u64` in `[0, bound)` without modulo bias
/// (rejection sampling over the largest multiple of `bound`).
fn bounded_u64(next: &mut dyn FnMut() -> u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = next();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// Mirrors rand's `SampleUniform` so that `Range<T>: SampleRange<T>` is a
/// single blanket impl — that shape is what lets type inference resolve
/// call sites like `arr[rng.gen_range(0..2)]`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`), drawing words from `next`.
    fn sample_span(lo: &Self, hi: &Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span(lo: &Self, hi: &Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*lo as i128, *hi as i128);
                let span = (hi - lo) as u64;
                if inclusive && span == u64::MAX {
                    return next() as $t;
                }
                let span = if inclusive { span + 1 } else { span };
                (lo + bounded_u64(next, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_span(lo: &Self, hi: &Self, _inclusive: bool, next: &mut dyn FnMut() -> u64) -> f64 {
        let f = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + f * (hi - lo)
    }
}

/// A range type from which [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range, drawing words from `next`.
    fn sample_single(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_span(&self.start, &self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_span(self.start(), self.end(), true, next)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample_single(&mut next)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        // 53 random mantissa bits, same construction as rand's `Standard` f64.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator {numerator} exceeds denominator {denominator}"
        );
        let mut next = || self.next_u64();
        bounded_u64(&mut next, u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via SplitMix64.
    ///
    /// The real `rand::rngs::StdRng` is a ChaCha block cipher; this stand-in
    /// trades cryptographic strength (unneeded here) for zero dependencies while
    /// keeping the same construction API and high statistical quality.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..26u8);
            assert!(u < 26);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear in 1000 draws");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0..10usize);
        assert!(v < 10);
        assert!([1, 2, 3].choose(dynamic).is_some());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffling 50 elements should not be the identity");
    }
}
