//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: formats the vendored `serde` [`serde::Value`] tree as JSON and
//! parses JSON text back into a [`serde::Value`] tree.
//!
//! Provides [`to_string`] and [`to_string_pretty`] (2-space indent, `": "` key
//! separator — the same layout the real crate emits) plus [`from_str`], which
//! is the entire surface the workspace uses. Where the real crate deserializes
//! through `Deserialize` impls, callers here decode the self-describing
//! [`serde::Value`] tree with its accessor helpers (`get`, `as_str`, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Errors from JSON serialization.
///
/// The value-tree data model is always representable, except for the
/// non-finite floats JSON cannot express.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Fails if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Fails if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error { message: format!("JSON cannot represent float {x}") });
            }
            if x.trunc() == *x && x.abs() < 1e16 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_sequence(out, items.len(), indent, depth, '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?;
        }
        Value::Object(fields) => {
            write_sequence(out, fields.len(), indent, depth, '{', '}', |out, i| {
                let (key, val) = &fields[i];
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })?;
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar (objects, arrays, strings with escapes and
/// `\uXXXX` sequences including surrogate pairs, numbers, booleans, `null`).
/// Integral numbers that fit an `i128` parse to [`Value::Int`]; everything
/// else numeric parses to [`Value::Float`]. Duplicate object keys keep their
/// textual order (the data model stores fields as an ordered list).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the byte offset and what went wrong when
/// the text is not valid JSON or when anything but whitespace follows the
/// top-level value.
pub fn from_str(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the top-level value"));
    }
    Ok(value)
}

/// Errors from JSON parsing, carrying the byte offset of the failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", char::from(c))))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.error("unescaped control character")),
                _ => {
                    // Copy one UTF-8 scalar (the input is a &str, so boundaries
                    // are trustworthy).
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(slice)
                            .map_err(|_| self.error("invalid UTF-8 inside string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        // from_str_radix would also accept a leading '+', which JSON forbids.
        if !slice.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.error("bad \\u escape digits"));
        }
        let text = std::str::from_utf8(slice).expect("hex digits are ASCII");
        let v = u16::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape digits"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.parse_hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.parse_hex4()?;
                if !(0xdc00..0xe000).contains(&lo) {
                    return Err(self.error("expected a low surrogate"));
                }
                let c = 0x10000 + ((u32::from(hi) - 0xd800) << 10) + (u32::from(lo) - 0xdc00);
                return char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.error("lone low surrogate"));
        }
        char::from_u32(u32::from(hi)).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        // Rust's f64 FromStr saturates huge literals to infinity; JSON (and
        // the serializer above, which rejects non-finite floats) cannot
        // represent those, so refuse them here for a clean round trip.
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Float(x)),
            Ok(_) => Err(ParseError { offset: start, message: "number out of range".to_string() }),
            Err(_) => Err(ParseError { offset: start, message: "malformed number".to_string() }),
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        score: f64,
        queries: usize,
        note: Option<String>,
    }

    fn row() -> Row {
        Row { name: "vstar".into(), score: 0.75, queries: 1200, note: None }
    }

    #[test]
    fn compact_layout() {
        assert_eq!(
            to_string(&row()).unwrap(),
            r#"{"name":"vstar","score":0.75,"queries":1200,"note":null}"#
        );
    }

    #[test]
    fn pretty_layout_matches_real_serde_json() {
        let pretty = to_string_pretty(&row()).unwrap();
        let expected = "{\n  \"name\": \"vstar\",\n  \"score\": 0.75,\n  \"queries\": 1200,\n  \"note\": null\n}";
        assert_eq!(pretty, expected);
    }

    #[test]
    fn nested_arrays_and_escapes() {
        let v = Value::Array(vec![
            Value::Str("a\"b\\c\n".into()),
            Value::Array(vec![]),
            Value::Object(vec![]),
            Value::Float(2.0),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"["a\"b\\c\n",[],{},2.0]"#);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn parse_round_trips_serialized_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("v*".into())),
            ("stats".into(), Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Null])),
            ("ok".into(), Value::Bool(true)),
            ("esc".into(), Value::Str("a\"b\\c\nd\tμ".into())),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("0").unwrap(), Value::Int(0));
        assert_eq!(from_str("2.5e2").unwrap(), Value::Float(250.0));
        assert_eq!(from_str("1e-1").unwrap(), Value::Float(0.1));
        assert_eq!(from_str("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
        assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".into()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "tru",
            "\"abc",
            "\"\\q\"",
            "1 2",
            "nul",
            "[1 2]",
            "{\"a\":1,}",
            "\"\\ud800x\"",
            "+1",
            "\"\\u+fff\"",
            "\"\\u00g1\"",
            "1e999",
            "-1e999",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
        let err = from_str("[1,").unwrap_err();
        assert!(err.to_string().contains("byte 3"), "{err}");
    }

    #[test]
    fn parse_preserves_object_field_order() {
        let Value::Object(fields) = from_str("{\"b\":1,\"a\":2}").unwrap() else {
            panic!("expected an object");
        };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }
}
