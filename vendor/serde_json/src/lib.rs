//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: formats the vendored `serde` [`serde::Value`] tree as JSON.
//!
//! Provides [`to_string`] and [`to_string_pretty`] (2-space indent, `": "` key
//! separator — the same layout the real crate emits), which is the entire
//! surface the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Errors from JSON serialization.
///
/// The value-tree data model is always representable, except for the
/// non-finite floats JSON cannot express.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Fails if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Fails if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error { message: format!("JSON cannot represent float {x}") });
            }
            if x.trunc() == *x && x.abs() < 1e16 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_sequence(out, items.len(), indent, depth, '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?;
        }
        Value::Object(fields) => {
            write_sequence(out, fields.len(), indent, depth, '{', '}', |out, i| {
                let (key, val) = &fields[i];
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })?;
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        score: f64,
        queries: usize,
        note: Option<String>,
    }

    fn row() -> Row {
        Row { name: "vstar".into(), score: 0.75, queries: 1200, note: None }
    }

    #[test]
    fn compact_layout() {
        assert_eq!(
            to_string(&row()).unwrap(),
            r#"{"name":"vstar","score":0.75,"queries":1200,"note":null}"#
        );
    }

    #[test]
    fn pretty_layout_matches_real_serde_json() {
        let pretty = to_string_pretty(&row()).unwrap();
        let expected = "{\n  \"name\": \"vstar\",\n  \"score\": 0.75,\n  \"queries\": 1200,\n  \"note\": null\n}";
        assert_eq!(pretty, expected);
    }

    #[test]
    fn nested_arrays_and_escapes() {
        let v = Value::Array(vec![
            Value::Str("a\"b\\c\n".into()),
            Value::Array(vec![]),
            Value::Object(vec![]),
            Value::Float(2.0),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"["a\"b\\c\n",[],{},2.0]"#);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
