//! Quickstart: learn a visibly pushdown grammar for a tiny bracket language from a
//! black-box membership oracle and two seed strings.
//!
//! Run with: `cargo run --example quickstart --release`

use vstar::{Mat, VStar, VStarConfig};

fn main() {
    // The "black-box program": accepts balanced parentheses with 'x' bodies.
    let oracle = |s: &str| {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    };

    let mat = Mat::new(&oracle);
    let seeds = vec!["(x(x))x".to_string(), "()".to_string()];
    let alphabet = vec!['(', ')', 'x'];

    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &alphabet, &seeds)
        .expect("learning succeeds");

    println!("inferred call/return tokens:\n{}", result.tokenizer);
    println!("learned VPA: {} states", result.vpa.state_count());
    println!("learned VPG:\n{}", result.vpg);
    println!("statistics: {:?}", result.stats);

    for probe in ["((x)x)", "(((x)))", "((x)", "xx", ")("] {
        println!(
            "  {probe:10} -> oracle={} learned={}",
            oracle(probe),
            result.accepts(&mat, probe)
        );
    }
}
