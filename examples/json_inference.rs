//! Learn the JSON input grammar from the bundled JSON recognizer — the workload of
//! the paper's Table 1, row "json" — and report Table-1-style metrics.
//!
//! Run with: `cargo run --example json_inference --release`

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig};
use vstar_eval::{f1_score, precision, recall};
use vstar_oracles::{Json, Language};

fn main() {
    let lang = Json::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);

    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("json learning succeeds");

    println!("inferred call/return tokens:\n{}", result.tokenizer);
    println!(
        "queries: {} total ({:.2}% token inference, {:.2}% VPA learning), {} test strings",
        result.stats.queries_total,
        result.stats.token_query_percent(),
        result.stats.vpa_query_percent(),
        result.stats.test_strings
    );

    // Recall on 200 random JSON documents, precision on 200 samples from the
    // learned grammar.
    let mut rng = StdRng::seed_from_u64(7);
    let corpus = lang.generate_corpus(&mut rng, 18, 200);
    let learned = result.as_learned_language();
    let r = recall(|s| learned.accepts(&mat, s), &corpus);

    let sampler = vstar_parser::GrammarSampler::new(&result.vpg);
    let samples: Vec<String> = sampler
        .sample_many(&mut rng, 18, 800)
        .into_iter()
        .map(|s| vstar::tokenizer::strip_markers(&s))
        .take(200)
        .collect();
    let p = precision(|s| lang.accepts(s), &samples);

    println!("recall = {r:.3}, precision = {p:.3}, F1 = {:.3}", f1_score(r, p));
    for probe in ["{\"deep\":[{\"x\":[1,2,3]}]}", "{\"{\":true}", "[1,2,", "{\"a\" :1}"] {
        println!(
            "  {probe:28} -> oracle={} learned={}",
            lang.accepts(probe),
            result.accepts(&mat, probe)
        );
    }
}
