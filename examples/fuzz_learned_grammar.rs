//! Differential fuzzing of a learned grammar against its oracle.
//!
//! Learns the LISP (S-expression) language with the V-Star pipeline, then
//! turns the learned grammar into a fuzzer: derivations are sampled and
//! mutated at the tree level (members by construction), some inputs are
//! deliberately corrupted at the character level, and every input is judged
//! by both the learned artifact and the black-box oracle. LISP learns
//! exactly, so the campaign must report zero divergences — and to prove the
//! campaign has teeth, the paper's Figure-1 language is learned in character
//! mode, weakened by one injected rule, and fuzzed again, which must surface
//! false positives.
//!
//! Run with: `cargo run --example fuzz_learned_grammar --release`

use vstar::{Mat, TokenDiscovery, VStar, VStarConfig};
use vstar_fuzz::{surgery, FuzzCampaign, FuzzConfig};
use vstar_oracles::{Fig1, Language, Lisp};
use vstar_vpl::{NonterminalId, RuleRhs};

fn main() {
    let lang = Lisp::new();
    println!("learning {} from {} seeds …", lang.name(), lang.seeds().len());
    let learned = vstar_bench::learn_learned_language(&lang);
    println!(
        "learned grammar: {} nonterminals, {} rules",
        learned.vpg().nonterminal_count(),
        learned.vpg().rule_count()
    );

    let config = FuzzConfig { seed: 42, iterations: 200, ..FuzzConfig::default() };
    let report = FuzzCampaign::new(&learned, &lang, config.clone()).run();
    println!(
        "faithful campaign: {} cases, {} agree-accept / {} agree-reject, \
         {} divergences, rule coverage {}/{}",
        report.counts.total(),
        report.counts.agree_accept,
        report.counts.agree_reject,
        report.counts.divergences(),
        report.rules_covered,
        report.rules_total,
    );
    assert_eq!(report.counts.divergences(), 0, "lisp learns exactly: no divergence expected");

    // Fault injection on the character-mode Figure-1 language: add the
    // over-generalizing rule `L → d L` to the learned grammar (a bare "d" is
    // not in the language, which requires "cd"). The campaign samples from the
    // weakened grammar, so it must find and minimize false positives.
    let fig1 = Fig1::new();
    let fig1_oracle = |s: &str| fig1.accepts(s);
    let mat = Mat::new(&fig1_oracle);
    let char_config =
        VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
    let fig1_learned = VStar::new(char_config)
        .learn(&mat, &fig1.alphabet(), &fig1.seeds())
        .expect("figure-1 learns in character mode")
        .as_learned_language();
    let start = fig1_learned.vpg().start();
    let weakened_vpg = surgery::with_extra_rule(
        fig1_learned.vpg(),
        NonterminalId(start.0),
        RuleRhs::Linear { plain: 'd', next: start },
    )
    .expect("`L → d L` is a valid rule under the figure-1 tagging");
    let weakened = fig1_learned.with_vpg(weakened_vpg);
    let weak_report = FuzzCampaign::new(&weakened, &fig1, config).run();
    println!(
        "weakened fig1 campaign: {} false positives ({} distinct after minimization)",
        weak_report.counts.false_positive,
        weak_report.distinct_divergences(),
    );
    for case in weak_report.divergences.iter().take(3) {
        println!(
            "  {} via {}: {:?} → minimized {:?}",
            case.class, case.mutation, case.raw, case.minimized
        );
    }
    assert!(
        weak_report.counts.false_positive > 0,
        "the campaign must catch the injected over-generalization"
    );
}
