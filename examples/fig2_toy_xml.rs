//! The paper's Figure-2 toy XML example (§5): infer the multi-character call/return
//! tokens `<p>` / `</p>` from the single seed `<p><p>p</p></p>`, convert the
//! language with `conv_τ`, and learn a VPA over the converted alphabet.
//!
//! Run with: `cargo run --example fig2_toy_xml --release`

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Language, ToyXml};

fn main() {
    let lang = ToyXml::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);

    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("fig2 learning succeeds");

    println!("seed strings: {:?}", lang.seeds());
    println!("inferred call/return tokens:\n{}", result.tokenizer);
    println!("learned VPA: {} states", result.vpa.state_count());
    println!(
        "queries: {} ({} test strings)",
        result.stats.queries_total, result.stats.test_strings
    );

    // The conversion of the seed mirrors the paper's ⊳<p>⊳<p>p</p>⊲</p>⊲ picture.
    let converted = result.tokenizer.convert(&mat, "<p><p>p</p></p>");
    println!(
        "conv(<p><p>p</p></p>) has {} artificial markers",
        converted.chars().filter(|&c| vstar::tokenizer::is_marker(c)).count()
    );

    for probe in ["hello", "<p>deep</p>", "<p><p><p>x</p></p></p>", "<p>x", "<p></p>"] {
        println!(
            "  {probe:24} -> oracle={} learned={}",
            lang.accepts(probe),
            result.accepts(&mat, probe)
        );
    }
}
