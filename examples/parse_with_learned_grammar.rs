//! Parse raw inputs with a grammar learned by V-Star.
//!
//! Learns the JSON input language from the bundled black-box recognizer, then
//! uses `vstar_parser` to turn the learned grammar into a working parser:
//! raw strings are parsed with the derivative-based VPG parser into explicit
//! parse trees, and rejected inputs come back with a parse error carrying the
//! raw-input byte span. Finally the grammar sampler generates fresh members —
//! the sample → parse → accept loop that grammar-directed fuzzing builds on.
//! (For the serving-side workflow — compile/save/load/batch — see the
//! `serve_compiled_grammar` example.)
//!
//! Run with: `cargo run --example parse_with_learned_grammar --release`

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language};
use vstar_parser::{CompileLearned, GrammarSampler, LearnedParser};

fn main() {
    let lang = Json::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);

    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("json learning succeeds");
    let learned = result.as_learned_language();
    let parser = LearnedParser::new(&learned);
    println!(
        "learned json: {} states, {} nonterminals, {} rules",
        learned.vpa().state_count(),
        learned.vpg().nonterminal_count(),
        learned.vpg().rule_count(),
    );

    // Parse a member: the tree makes the inferred call/return nesting explicit.
    let doc = "{\"a\":[1,{\"b\":true}]}";
    let tree = parser.parse(&mat, doc).expect("member parses");
    println!(
        "parsed {doc:?}: {} terminals, nesting depth {}, {} rule applications",
        tree.len(),
        tree.depth(),
        tree.rule_applications(),
    );
    assert!(tree.validate(learned.vpg()));

    // Parse errors locate the failure in the converted word *and* carry the
    // raw-input byte span of the offending fragment.
    for bad in ["{\"a\":1", "[1,2,,3]"] {
        match parser.parse(&mat, bad) {
            Ok(_) => println!("unexpectedly parsed {bad:?}"),
            Err(e) => println!("rejected {bad:?}: {e}"),
        }
    }

    // The same grammar compiles into an owned artifact that parses without
    // the Mat; the uncompiled and compiled paths agree.
    let compiled = result.compile().expect("learned grammar compiles");
    assert!(compiled.recognize(doc));
    println!(
        "compiled artifact agrees on {doc:?} with {} automaton states",
        compiled.automaton_states()
    );

    // Sample → parse → accept: grammar-sampler output always parses back.
    let sampler = GrammarSampler::new(learned.vpg());
    let mut rng = StdRng::seed_from_u64(11);
    let mut shown = 0usize;
    for _ in 0..200 {
        let Some(word) = sampler.sample(&mut rng, 20) else {
            break;
        };
        let tree = parser.parser().parse(&word).expect("sampled word parses");
        assert_eq!(tree.yielded(), word);
        // Show the samples that correspond to raw JSON documents.
        let raw = vstar::tokenizer::strip_markers(&word);
        if result.tokenizer.convert(&mat, &raw) == word && lang.accepts(&raw) && shown < 5 {
            println!("sampled member: {raw}");
            shown += 1;
        }
    }
    println!("sample → parse → accept round-trip held for 200 samples");
}
