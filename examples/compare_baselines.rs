//! Head-to-head comparison of V-Star against the GLADE-style and ARVADA-style
//! baselines on one grammar — a single row of the paper's Table 1.
//!
//! Run with: `cargo run --example compare_baselines --release [-- grammar]`
//! (default grammar: lisp; options: json lisp xml while mathexpr)

use vstar_eval::{evaluate_arvada, evaluate_glade, evaluate_vstar, EvalConfig, Table1Report};
use vstar_oracles::{table1_languages, Language};

fn main() {
    let grammar = std::env::args().nth(1).unwrap_or_else(|| "lisp".to_string());
    let Some(lang): Option<Box<dyn Language>> =
        table1_languages().into_iter().find(|l| l.name() == grammar)
    else {
        eprintln!("unknown grammar {grammar:?}; available: json lisp xml while mathexpr");
        std::process::exit(1);
    };

    let config =
        EvalConfig { recall_samples: 120, precision_samples: 120, ..EvalConfig::default() };
    let mut report = Table1Report::new();
    println!("evaluating GLADE-style baseline on {grammar} …");
    report.push(evaluate_glade(lang.as_ref(), &config));
    println!("evaluating ARVADA-style baseline on {grammar} …");
    report.push(evaluate_arvada(lang.as_ref(), &config));
    println!("evaluating V-Star on {grammar} …");
    report.push(evaluate_vstar(lang.as_ref(), &config));
    println!();
    print!("{report}");
}
