//! Learn once, serve forever: compile a learned grammar into an owned,
//! oracle-free artifact, persist it, reload it and serve traffic.
//!
//! The learning stack (oracle, Mat, learner state) is dropped before any
//! serving happens — everything after the `drop` line runs on the compiled
//! artifact alone: single calls, a saved/loaded copy, a multi-threaded batch
//! and a streaming session.
//!
//! Run with: `cargo run --example serve_compiled_grammar --release`

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language};
use vstar_parser::{CompileLearned, CompiledGrammar};

fn main() {
    // Learning time: the black-box oracle answers membership queries.
    let lang = Json::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("json learning succeeds");
    let compiled = result.compile().expect("learned grammar compiles");
    println!(
        "compiled json: {} item-set states, {} stack symbols, {} rules",
        compiled.automaton_states(),
        compiled.stack_symbols(),
        compiled.vpg().rule_count(),
    );
    drop((mat, result)); // serving needs no oracle and no learner state

    // Ship the artifact: save, load, keep serving with the reloaded copy.
    let path = std::env::temp_dir().join("vstar_served_json.grammar.json");
    compiled.save(&path).expect("artifact saves");
    let served = CompiledGrammar::load(&path).expect("artifact loads");
    std::fs::remove_file(&path).ok();
    println!("artifact round-tripped through {} bytes of JSON", compiled.to_json().len());

    // Single calls: recognition, parse trees and raw-span errors.
    let doc = "{\"a\":[1,{\"b\":true}]}";
    let tree = served.parse(doc).expect("member parses");
    println!("parsed {doc:?}: {} terminals, nesting depth {}", tree.len(), tree.depth());
    // The paper's §5.1 shape: a `{` inside a string is plain text, resolved
    // here without a single membership query.
    println!("brace-in-string member accepted: {}", served.recognize("{\"{\":0}"));
    for bad in ["{\"a\":1", "[1,2,,3]"] {
        let err = served.parse(bad).expect_err("non-member rejected");
        println!("rejected {bad:?}: {err}");
    }

    // Batch serving: one artifact, many documents, scoped threads.
    let docs: Vec<String> = (0..2000)
        .map(|k| match k % 4 {
            0 => format!("{{\"k{k}\":{k}}}"),
            1 => format!("[{k},true,null]"),
            2 => format!("{{\"a\":{{\"b\":[{k}]}}}}"),
            _ => format!("[{k},"), // malformed
        })
        .collect();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let verdicts = served.recognize_batch(&refs);
    let accepted = verdicts.iter().filter(|&&v| v).count();
    println!("batch: {accepted}/{} documents accepted across threads", refs.len());

    // Streaming: feed a document chunk by chunk at the word level.
    let mut session = served.session();
    let word = served.converted_word("{\"stream\":[1,2,3]}").expect("member converts");
    for chunk in word.as_bytes().chunks(3) {
        session.push_bytes(chunk);
    }
    println!("streamed verdict: {}", session.finish());
}
