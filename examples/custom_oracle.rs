//! Bring your own black-box program: any `Fn(&str) -> bool` can serve as the
//! membership oracle. This example learns the input language of a small
//! "configuration file" recognizer defined inline (sections with nested blocks),
//! a language none of the bundled oracles cover.
//!
//! Run with: `cargo run --example custom_oracle --release`

use vstar::{Mat, VStar, VStarConfig};

/// cfg   := entry*
/// entry := [a-z]+ '=' [0-9]+ ';'  |  [a-z]+ '{' cfg '}'
fn accepts_config(s: &str) -> bool {
    fn ident(b: &[u8], mut p: usize) -> Option<usize> {
        let start = p;
        while p < b.len() && b[p].is_ascii_lowercase() {
            p += 1;
        }
        (p > start).then_some(p)
    }
    fn cfg(b: &[u8], mut p: usize) -> Option<usize> {
        loop {
            if p >= b.len() || !b[p].is_ascii_lowercase() {
                return Some(p);
            }
            p = ident(b, p)?;
            match b.get(p) {
                Some(b'=') => {
                    p += 1;
                    let start = p;
                    while p < b.len() && b[p].is_ascii_digit() {
                        p += 1;
                    }
                    if p == start || b.get(p) != Some(&b';') {
                        return None;
                    }
                    p += 1;
                }
                Some(b'{') => {
                    p = cfg(b, p + 1)?;
                    if b.get(p) != Some(&b'}') {
                        return None;
                    }
                    p += 1;
                }
                _ => return None,
            }
        }
    }
    s.is_ascii() && cfg(s.as_bytes(), 0) == Some(s.len())
}

fn main() {
    let oracle = accepts_config;
    let mat = Mat::new(&oracle);

    let seeds = vec![
        "x=1;".to_string(),
        "srv{port=80;}".to_string(),
        "a{b{c=2;}}".to_string(),
        "log=9;net{ttl=3;}".to_string(),
    ];
    let mut alphabet: Vec<char> = vec!['=', ';', '{', '}'];
    alphabet.extend('a'..='z');
    alphabet.extend('0'..='9');

    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &alphabet, &seeds)
        .expect("custom oracle learning succeeds");

    println!("inferred call/return tokens:\n{}", result.tokenizer);
    println!(
        "learned VPA: {} states, queries: {}",
        result.vpa.state_count(),
        result.stats.queries_total
    );
    for probe in ["", "a=0;", "outer{inner{deep=7;}}x=1;", "a=;", "a{b=1;", "A=1;"] {
        println!(
            "  {probe:28} -> oracle={} learned={}",
            oracle(probe),
            result.accepts(&mat, probe)
        );
    }
}
