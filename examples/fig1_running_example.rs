//! The paper's Figure-1 running example (§4.3): infer a character-level tagging
//! and learn the VPG `L → ‹a A b› L | c B | ε`, `A → ‹g L h› E`, `B → d L` from the
//! single seed string `agcdcdhbcd`.
//!
//! Run with: `cargo run --example fig1_running_example --release`

use vstar::{Mat, TokenDiscovery, VStar, VStarConfig};
use vstar_oracles::{Fig1, Language};

fn main() {
    let lang = Fig1::new();
    println!("oracle grammar (Figure 1):\n{}", lang.grammar());

    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let config =
        VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
    let result = VStar::new(config)
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("fig1 learning succeeds");

    println!("seed strings: {:?}", lang.seeds());
    println!("inferred tagging (single-character tokens):\n{}", result.tokenizer);
    println!("learned VPA: {} states", result.vpa.state_count());
    println!("learned VPG:\n{}", result.vpg);
    println!("membership queries: {}", result.stats.queries_total);

    // The paper's pumped variants of the seed string.
    for k in 1..=3 {
        let s = format!("{}cdcd{}cd", "ag".repeat(k), "hb".repeat(k));
        println!("  {s:30} -> oracle={} learned={}", lang.accepts(&s), result.accepts(&mat, &s));
    }
    for bad in ["agcd", "ab", "agaghbcd"] {
        println!(
            "  {bad:30} -> oracle={} learned={}",
            lang.accepts(bad),
            result.accepts(&mat, bad)
        );
    }
}
