//! Angluin's L\* algorithm for learning regular languages (paper §3.4).
//!
//! The learner maintains an observation table `(S, E, T)`: `S` is a prefix-closed
//! set of access strings, `E` a suffix-closed set of test strings, and `T` caches
//! membership answers. When the table is *closed* and *consistent* a hypothesis DFA
//! is read off; a counterexample refines the table by adding all of its prefixes to
//! `S` (Angluin's original strategy).
//!
//! Equivalence queries are simulated, exactly as V-Star does for its VPA learner:
//! either by exhaustively checking all strings up to a length bound, or by checking
//! a caller-supplied pool of test strings (paper §5.2 uses prefix/suffix
//! combinations of nesting patterns for token learning).

use std::collections::{BTreeMap, BTreeSet};

use crate::cache::QueryCache;
use crate::dfa::Dfa;

/// How the learner simulates equivalence queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceMode {
    /// Test every string over the alphabet up to the given length.
    Bounded(usize),
    /// Test exactly the given strings.
    TestStrings(Vec<String>),
}

/// Configuration for [`LStar`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LStarConfig {
    /// Equivalence-query simulation strategy.
    pub equivalence: EquivalenceMode,
    /// Upper bound on refinement rounds (defensive; the algorithm terminates long
    /// before this for regular targets).
    pub max_rounds: usize,
}

impl LStarConfig {
    /// Simulate equivalence queries by enumerating all strings up to `max_len`.
    #[must_use]
    pub fn bounded_equivalence(max_len: usize) -> Self {
        LStarConfig { equivalence: EquivalenceMode::Bounded(max_len), max_rounds: 200 }
    }

    /// Simulate equivalence queries with an explicit pool of test strings.
    #[must_use]
    pub fn with_test_strings(tests: Vec<String>) -> Self {
        LStarConfig { equivalence: EquivalenceMode::TestStrings(tests), max_rounds: 200 }
    }
}

/// Counters describing a completed L\* run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LStarStats {
    /// Number of *unique* membership queries issued (cache misses).
    pub membership_queries: usize,
    /// Number of simulated equivalence queries issued.
    pub equivalence_queries: usize,
    /// Number of counterexamples processed.
    pub counterexamples: usize,
}

/// The observation-table learner.
pub struct LStar<'a> {
    alphabet: Vec<char>,
    oracle: &'a dyn Fn(&str) -> bool,
    config: LStarConfig,
    s: Vec<String>,
    e: Vec<String>,
    cache: QueryCache,
    stats: LStarStats,
}

impl<'a> std::fmt::Debug for LStar<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LStar")
            .field("alphabet", &self.alphabet)
            .field("s", &self.s)
            .field("e", &self.e)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> LStar<'a> {
    /// Creates a learner for the language decided by `oracle` over `alphabet`.
    #[must_use]
    pub fn new(alphabet: &[char], oracle: &'a dyn Fn(&str) -> bool, config: LStarConfig) -> Self {
        LStar {
            alphabet: alphabet.to_vec(),
            oracle,
            config,
            s: vec![String::new()],
            e: vec![String::new()],
            cache: QueryCache::for_site("lstar"),
            stats: LStarStats::default(),
        }
    }

    /// Statistics of the run so far.
    #[must_use]
    pub fn stats(&self) -> LStarStats {
        LStarStats { membership_queries: self.cache.unique_queries(), ..self.stats }
    }

    fn member(&mut self, s: &str) -> bool {
        let oracle = self.oracle;
        self.cache.query(s, oracle)
    }

    fn row(&mut self, prefix: &str) -> Vec<bool> {
        let suffixes = self.e.clone();
        suffixes.iter().map(|e| self.member(&format!("{prefix}{e}"))).collect()
    }

    fn close_and_make_consistent(&mut self) {
        loop {
            // Closedness: every one-symbol extension of an S row must equal some S row.
            let mut changed = false;
            let s_rows: Vec<(String, Vec<bool>)> =
                self.s.clone().into_iter().map(|p| (p.clone(), self.row(&p))).collect();
            'outer: for (p, _) in &s_rows {
                for &a in &self.alphabet.clone() {
                    let ext = format!("{p}{a}");
                    let ext_row = self.row(&ext);
                    if !s_rows.iter().any(|(_, r)| *r == ext_row) && !self.s.contains(&ext) {
                        self.s.push(ext);
                        changed = true;
                        break 'outer;
                    }
                }
            }
            if changed {
                continue;
            }
            // Consistency: equal S rows must stay equal under every one-symbol extension.
            let s_list = self.s.clone();
            'cons: for i in 0..s_list.len() {
                for j in i + 1..s_list.len() {
                    let (ri, rj) = (self.row(&s_list[i]), self.row(&s_list[j]));
                    if ri != rj {
                        continue;
                    }
                    for &a in &self.alphabet.clone() {
                        let (ra, rb) = (
                            self.row(&format!("{}{a}", s_list[i])),
                            self.row(&format!("{}{a}", s_list[j])),
                        );
                        if ra != rb {
                            // Find the distinguishing suffix and add `a`+suffix to E.
                            let k =
                                ra.iter().zip(&rb).position(|(x, y)| x != y).expect("rows differ");
                            let new_e = format!("{a}{}", self.e[k]);
                            if !self.e.contains(&new_e) {
                                self.e.push(new_e);
                                changed = true;
                                break 'cons;
                            }
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    fn hypothesis(&mut self) -> Dfa {
        let mut row_ids: BTreeMap<Vec<bool>, usize> = BTreeMap::new();
        let mut reps: Vec<String> = Vec::new();
        for p in self.s.clone() {
            let r = self.row(&p);
            if !row_ids.contains_key(&r) {
                let id = row_ids.len();
                row_ids.insert(r, id);
                reps.push(p);
            }
        }
        let mut transitions = BTreeMap::new();
        let mut accepting = BTreeSet::new();
        let eps_index = self.e.iter().position(String::is_empty).expect("ε is always in E");
        for (id, rep) in reps.clone().into_iter().enumerate() {
            let r = self.row(&rep);
            if r[eps_index] {
                accepting.insert(id);
            }
            for &a in &self.alphabet.clone() {
                let target_row = self.row(&format!("{rep}{a}"));
                if let Some(&t) = row_ids.get(&target_row) {
                    transitions.insert((id, a), t);
                }
                // A missing target can only happen transiently; closedness restores it.
            }
        }
        let initial_row = self.row("");
        let initial = row_ids[&initial_row];
        Dfa::new(self.alphabet.clone(), row_ids.len(), initial, accepting, transitions)
    }

    fn find_counterexample(&mut self, dfa: &Dfa) -> Option<String> {
        self.stats.equivalence_queries += 1;
        match self.config.equivalence.clone() {
            EquivalenceMode::Bounded(max_len) => {
                let mut frontier = vec![String::new()];
                for len in 0..=max_len {
                    for w in &frontier {
                        if self.member(w) != dfa.accepts(w) {
                            return Some(w.clone());
                        }
                    }
                    if len == max_len {
                        break;
                    }
                    let mut next = Vec::with_capacity(frontier.len() * self.alphabet.len());
                    for w in &frontier {
                        for &a in &self.alphabet {
                            next.push(format!("{w}{a}"));
                        }
                    }
                    frontier = next;
                }
                None
            }
            EquivalenceMode::TestStrings(tests) => {
                for w in tests {
                    if self.member(&w) != dfa.accepts(&w) {
                        return Some(w);
                    }
                }
                None
            }
        }
    }

    /// Runs the learner to completion and returns the final hypothesis DFA
    /// (minimized).
    pub fn learn(&mut self) -> Dfa {
        self.close_and_make_consistent();
        for _ in 0..self.config.max_rounds {
            let hyp = self.hypothesis();
            match self.find_counterexample(&hyp) {
                None => return hyp.minimized(),
                Some(cex) => {
                    self.stats.counterexamples += 1;
                    // Add every prefix of the counterexample to S (Angluin 1987).
                    let chars: Vec<char> = cex.chars().collect();
                    for i in 0..=chars.len() {
                        let p: String = chars[..i].iter().collect();
                        if !self.s.contains(&p) {
                            self.s.push(p);
                        }
                    }
                    self.close_and_make_consistent();
                }
            }
        }
        self.hypothesis().minimized()
    }
}

/// One-shot convenience wrapper around [`LStar`].
pub fn learn_dfa(alphabet: &[char], oracle: &dyn Fn(&str) -> bool, config: &LStarConfig) -> Dfa {
    LStar::new(alphabet, oracle, config.clone()).learn()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn exhaustive_agreement(
        target: &dyn Fn(&str) -> bool,
        dfa: &Dfa,
        alphabet: &[char],
        max_len: usize,
    ) {
        let mut frontier = vec![String::new()];
        for _ in 0..=max_len {
            for w in &frontier {
                assert_eq!(target(w), dfa.accepts(w), "disagreement on {w:?}");
            }
            let mut next = Vec::new();
            for w in &frontier {
                for &a in alphabet {
                    next.push(format!("{w}{a}"));
                }
            }
            frontier = next;
        }
    }

    #[test]
    fn learns_even_number_of_as() {
        let alphabet = ['a', 'b'];
        let oracle = |s: &str| s.chars().filter(|&c| c == 'a').count() % 2 == 0;
        let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(6));
        assert_eq!(dfa.state_count(), 2);
        exhaustive_agreement(&oracle, &dfa, &alphabet, 6);
    }

    #[test]
    fn learns_regex_language() {
        let re = Regex::parse("(ab|ba)*").unwrap();
        let alphabet = ['a', 'b'];
        let oracle = move |s: &str| re.is_match(s);
        let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(6));
        exhaustive_agreement(&oracle, &dfa, &alphabet, 6);
    }

    #[test]
    fn learns_token_like_language_with_test_strings() {
        // XML-open-tag-like token: "<" [a-z]+ ">"
        let re = Regex::parse("<[a-z]+>").unwrap();
        let alphabet: Vec<char> = vec!['<', '>', 'a', 'b'];
        let oracle = move |s: &str| re.is_match(s);
        let tests: Vec<String> =
            ["", "<", ">", "<>", "<a>", "<ab>", "<aab>", "a", "<a", "a>", "<a>>", "<<a>"]
                .iter()
                .map(ToString::to_string)
                .collect();
        let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::with_test_strings(tests));
        assert!(dfa.accepts("<a>"));
        assert!(dfa.accepts("<ab>"));
        assert!(!dfa.accepts("<>"));
        assert!(!dfa.accepts("a>"));
    }

    #[test]
    fn learns_finite_language() {
        let members = ["", "ab", "abab"];
        let alphabet = ['a', 'b'];
        let oracle = move |s: &str| members.contains(&s);
        let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(6));
        exhaustive_agreement(&oracle, &dfa, &alphabet, 6);
    }

    #[test]
    fn stats_are_recorded() {
        let alphabet = ['a'];
        let oracle = |s: &str| s.len() % 3 == 0;
        let mut learner = LStar::new(&alphabet, &oracle, LStarConfig::bounded_equivalence(7));
        let dfa = learner.learn();
        assert_eq!(dfa.state_count(), 3);
        let stats = learner.stats();
        assert!(stats.membership_queries > 0);
        assert!(stats.equivalence_queries >= 1);
    }

    #[test]
    fn minimality_of_result() {
        // Strings over {a,b} ending in "ab": minimal DFA has 3 states.
        let alphabet = ['a', 'b'];
        let oracle = |s: &str| s.ends_with("ab");
        let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(7));
        assert_eq!(dfa.state_count(), 3);
        exhaustive_agreement(&oracle, &dfa, &alphabet, 7);
    }

    #[test]
    fn learning_with_random_target_dfas_is_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let alphabet = ['a', 'b'];
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            // Random complete DFA with 1..=4 states.
            let n = rng.gen_range(1..=4usize);
            let mut transitions = std::collections::BTreeMap::new();
            for s in 0..n {
                for &c in &alphabet {
                    transitions.insert((s, c), rng.gen_range(0..n));
                }
            }
            let mut accepting = std::collections::BTreeSet::new();
            for s in 0..n {
                if rng.gen_bool(0.5) {
                    accepting.insert(s);
                }
            }
            let target = Dfa::new(alphabet.to_vec(), n, 0, accepting, transitions);
            let t2 = target.clone();
            let oracle = move |s: &str| t2.accepts(s);
            let learned =
                learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(2 * n + 2));
            exhaustive_agreement(&|s| target.accepts(s), &learned, &alphabet, 2 * n + 2);
            assert!(learned.state_count() <= target.minimized().state_count());
        }
    }
}
