//! Nondeterministic finite automata with ε-transitions and character-class labels.
//!
//! Built by the regex compiler ([`crate::regex`]) via Thompson's construction and
//! executed by subset simulation. A subset-construction conversion to [`Dfa`] is
//! provided for callers that need a deterministic machine over a concrete alphabet.

use std::collections::{BTreeMap, BTreeSet};

use crate::dfa::Dfa;

/// A set of characters, described by ranges/singletons with optional negation, or
/// the wildcard `.` (any character).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CharClass {
    /// `true` for the `.` wildcard.
    pub any: bool,
    /// `true` for negated classes `[^…]`.
    pub negated: bool,
    /// Inclusive ranges; singletons are ranges with equal endpoints.
    pub ranges: Vec<(char, char)>,
}

impl CharClass {
    /// A class matching exactly one character.
    #[must_use]
    pub fn single(c: char) -> Self {
        CharClass { any: false, negated: false, ranges: vec![(c, c)] }
    }

    /// The wildcard class (`.`), matching any character.
    #[must_use]
    pub fn any() -> Self {
        CharClass { any: true, negated: false, ranges: Vec::new() }
    }

    /// Returns `true` if the class matches `c`.
    #[must_use]
    pub fn matches(&self, c: char) -> bool {
        if self.any {
            return true;
        }
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Label of an NFA transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Label {
    /// An ε-transition.
    Epsilon,
    /// A transition consuming one character matched by the class.
    Class(CharClass),
}

/// An NFA with a single start state and a single accepting state (Thompson style).
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    /// Number of states (`0..n_states`).
    pub n_states: usize,
    /// Transitions `(from, label, to)`.
    pub transitions: Vec<(usize, Label, usize)>,
    /// The start state.
    pub start: usize,
    /// The accepting state.
    pub accept: usize,
}

impl Nfa {
    /// Creates an NFA with `n` fresh states and no transitions.
    #[must_use]
    pub fn with_states(n: usize) -> Self {
        Nfa { n_states: n, transitions: Vec::new(), start: 0, accept: n.saturating_sub(1) }
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.n_states += 1;
        self.n_states - 1
    }

    /// Adds an ε-transition.
    pub fn add_epsilon(&mut self, from: usize, to: usize) {
        self.transitions.push((from, Label::Epsilon, to));
    }

    /// Adds a character-class transition.
    pub fn add_class(&mut self, from: usize, class: CharClass, to: usize) {
        self.transitions.push((from, Label::Class(class), to));
    }

    fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (from, label, to) in &self.transitions {
                if *from == s && *label == Label::Epsilon && closure.insert(*to) {
                    stack.push(*to);
                }
            }
        }
        closure
    }

    fn step(&self, states: &BTreeSet<usize>, c: char) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for (from, label, to) in &self.transitions {
            if states.contains(from) {
                if let Label::Class(class) = label {
                    if class.matches(c) {
                        next.insert(*to);
                    }
                }
            }
        }
        self.epsilon_closure(&next)
    }

    /// Returns `true` if the NFA accepts `input` (subset simulation).
    #[must_use]
    pub fn accepts(&self, input: &str) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for c in input.chars() {
            if current.is_empty() {
                return false;
            }
            current = self.step(&current, c);
        }
        current.contains(&self.accept)
    }

    /// Lengths (in characters) of every prefix of `input` accepted by the NFA.
    #[must_use]
    pub fn matching_prefix_lengths(&self, input: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        if current.contains(&self.accept) {
            out.push(0);
        }
        for (i, c) in input.chars().enumerate() {
            if current.is_empty() {
                break;
            }
            current = self.step(&current, c);
            if current.contains(&self.accept) {
                out.push(i + 1);
            }
        }
        out
    }

    /// Subset construction over a concrete alphabet, producing an equivalent
    /// [`Dfa`] restricted to strings over that alphabet.
    #[must_use]
    pub fn to_dfa(&self, alphabet: &[char]) -> Dfa {
        let start = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        index.insert(start.clone(), 0);
        let mut worklist = vec![start];
        let mut transitions = BTreeMap::new();
        let mut accepting = BTreeSet::new();
        while let Some(set) = worklist.pop() {
            let from = index[&set];
            if set.contains(&self.accept) {
                accepting.insert(from);
            }
            for &c in alphabet {
                let next = self.step(&set, c);
                if next.is_empty() {
                    continue;
                }
                let next_id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = index.len();
                        index.insert(next.clone(), id);
                        worklist.push(next);
                        id
                    }
                };
                transitions.insert((from, c), next_id);
            }
        }
        Dfa::new(alphabet.to_vec(), index.len(), 0, accepting, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_star() -> Nfa {
        // (ab)* : states 0 -a-> 1 -b-> 0, accept 0.
        let mut n = Nfa::with_states(2);
        n.start = 0;
        n.accept = 0;
        n.add_class(0, CharClass::single('a'), 1);
        n.add_class(1, CharClass::single('b'), 0);
        n
    }

    #[test]
    fn char_class_matching() {
        let c = CharClass { any: false, negated: false, ranges: vec![('a', 'z'), ('0', '0')] };
        assert!(c.matches('m'));
        assert!(c.matches('0'));
        assert!(!c.matches('A'));
        let neg = CharClass { negated: true, ..c };
        assert!(!neg.matches('m'));
        assert!(neg.matches('A'));
        assert!(CharClass::any().matches('☃'));
        assert!(CharClass::single('x').matches('x'));
        assert!(!CharClass::single('x').matches('y'));
    }

    #[test]
    fn nfa_accepts() {
        let n = ab_star();
        assert!(n.accepts(""));
        assert!(n.accepts("ab"));
        assert!(n.accepts("abab"));
        assert!(!n.accepts("a"));
        assert!(!n.accepts("ba"));
        assert!(!n.accepts("abx"));
    }

    #[test]
    fn epsilon_transitions() {
        // a | ε  via epsilon edge to an 'a' branch.
        let mut n = Nfa::with_states(3);
        n.start = 0;
        n.accept = 2;
        n.add_epsilon(0, 2);
        n.add_class(0, CharClass::single('a'), 1);
        n.add_epsilon(1, 2);
        assert!(n.accepts(""));
        assert!(n.accepts("a"));
        assert!(!n.accepts("aa"));
    }

    #[test]
    fn prefix_lengths() {
        let n = ab_star();
        assert_eq!(n.matching_prefix_lengths("ababx"), vec![0, 2, 4]);
        assert_eq!(n.matching_prefix_lengths("x"), vec![0]);
    }

    #[test]
    fn subset_construction_agrees_with_nfa() {
        let n = ab_star();
        let d = n.to_dfa(&['a', 'b']);
        for w in ["", "a", "b", "ab", "ba", "abab", "abb", "aab"] {
            assert_eq!(n.accepts(w), d.accepts(w), "mismatch on {w:?}");
        }
    }
}
