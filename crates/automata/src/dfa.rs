//! Deterministic finite automata over `char` alphabets.
//!
//! DFAs here are *partial*: a missing transition rejects. They support the usual
//! operations needed by the rest of the workspace: execution, prefix matching (for
//! tokenization), Moore minimization, bounded enumeration and a state-elimination
//! conversion to a regular expression string for human-readable reports.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// A partial deterministic finite automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Vec<char>,
    n_states: usize,
    initial: usize,
    accepting: BTreeSet<usize>,
    /// `transitions[(state, ch)] = next`
    transitions: BTreeMap<(usize, char), usize>,
}

impl Dfa {
    /// Creates a DFA. `transitions` maps `(state, symbol)` to the next state.
    ///
    /// # Panics
    ///
    /// Panics if a transition refers to a state `>= n_states` or a symbol outside
    /// the alphabet, or if `initial >= n_states`.
    #[must_use]
    pub fn new(
        alphabet: Vec<char>,
        n_states: usize,
        initial: usize,
        accepting: BTreeSet<usize>,
        transitions: BTreeMap<(usize, char), usize>,
    ) -> Self {
        assert!(initial < n_states, "initial state out of range");
        for (&(s, c), &t) in &transitions {
            assert!(s < n_states && t < n_states, "transition state out of range");
            assert!(alphabet.contains(&c), "transition symbol {c:?} not in alphabet");
        }
        for &s in &accepting {
            assert!(s < n_states, "accepting state out of range");
        }
        Dfa { alphabet, n_states, initial, accepting, transitions }
    }

    /// A DFA accepting exactly the empty language over the given alphabet.
    #[must_use]
    pub fn empty(alphabet: Vec<char>) -> Self {
        Dfa {
            alphabet,
            n_states: 1,
            initial: 0,
            accepting: BTreeSet::new(),
            transitions: BTreeMap::new(),
        }
    }

    /// A DFA accepting exactly the given literal string.
    #[must_use]
    pub fn literal(alphabet: Vec<char>, word: &str) -> Self {
        let chars: Vec<char> = word.chars().collect();
        let mut alphabet = alphabet;
        for &c in &chars {
            if !alphabet.contains(&c) {
                alphabet.push(c);
            }
        }
        let n = chars.len() + 1;
        let mut transitions = BTreeMap::new();
        for (i, &c) in chars.iter().enumerate() {
            transitions.insert((i, c), i + 1);
        }
        let mut accepting = BTreeSet::new();
        accepting.insert(chars.len());
        Dfa { alphabet, n_states: n, initial: 0, accepting, transitions }
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// The initial state index.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The accepting state indices.
    #[must_use]
    pub fn accepting(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// The transition from `state` on `symbol`, if present.
    #[must_use]
    pub fn delta(&self, state: usize, symbol: char) -> Option<usize> {
        self.transitions.get(&(state, symbol)).copied()
    }

    /// Runs the DFA, returning the reached state or `None` if it gets stuck.
    #[must_use]
    pub fn run(&self, input: &str) -> Option<usize> {
        let mut state = self.initial;
        for c in input.chars() {
            state = self.delta(state, c)?;
        }
        Some(state)
    }

    /// Returns `true` if the DFA accepts `input`.
    #[must_use]
    pub fn accepts(&self, input: &str) -> bool {
        self.run(input).is_some_and(|s| self.accepting.contains(&s))
    }

    /// Lengths of every prefix of `input` (in characters, ascending) that the DFA
    /// accepts. Used by tokenizers to find candidate token matches at a position.
    #[must_use]
    pub fn matching_prefix_lengths(&self, input: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut state = self.initial;
        if self.accepting.contains(&state) {
            out.push(0);
        }
        for (i, c) in input.chars().enumerate() {
            match self.delta(state, c) {
                Some(next) => {
                    state = next;
                    if self.accepting.contains(&state) {
                        out.push(i + 1);
                    }
                }
                None => break,
            }
        }
        out
    }

    /// The length of the shortest non-empty accepted prefix of `input`, if any.
    #[must_use]
    pub fn shortest_match(&self, input: &str) -> Option<usize> {
        self.matching_prefix_lengths(input).into_iter().find(|&l| l > 0)
    }

    /// The length of the longest accepted prefix of `input`, if any (may be 0).
    #[must_use]
    pub fn longest_match(&self, input: &str) -> Option<usize> {
        self.matching_prefix_lengths(input).into_iter().max()
    }

    /// Enumerates accepted strings of length at most `max_len`, in shortlex order.
    #[must_use]
    pub fn enumerate(&self, max_len: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut frontier: Vec<(usize, String)> = vec![(self.initial, String::new())];
        if self.accepting.contains(&self.initial) {
            out.push(String::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (state, word) in &frontier {
                for &c in &self.alphabet {
                    if let Some(t) = self.delta(*state, c) {
                        let mut w = word.clone();
                        w.push(c);
                        if self.accepting.contains(&t) {
                            out.push(w.clone());
                        }
                        next.push((t, w));
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// Returns `true` if the accepted language is empty.
    #[must_use]
    pub fn is_empty_language(&self) -> bool {
        // BFS over reachable states looking for an accepting one.
        let mut seen = vec![false; self.n_states];
        let mut queue = VecDeque::from([self.initial]);
        seen[self.initial] = true;
        while let Some(s) = queue.pop_front() {
            if self.accepting.contains(&s) {
                return false;
            }
            for &c in &self.alphabet {
                if let Some(t) = self.delta(s, c) {
                    if !seen[t] {
                        seen[t] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        true
    }

    /// A shortest accepted string, if the language is non-empty.
    #[must_use]
    pub fn shortest_member(&self) -> Option<String> {
        let mut seen = vec![false; self.n_states];
        let mut queue = VecDeque::from([(self.initial, String::new())]);
        seen[self.initial] = true;
        while let Some((s, w)) = queue.pop_front() {
            if self.accepting.contains(&s) {
                return Some(w);
            }
            for &c in &self.alphabet {
                if let Some(t) = self.delta(s, c) {
                    if !seen[t] {
                        seen[t] = true;
                        let mut w2 = w.clone();
                        w2.push(c);
                        queue.push_back((t, w2));
                    }
                }
            }
        }
        None
    }

    /// Completes the DFA by adding an explicit dead state for missing transitions.
    #[must_use]
    pub fn completed(&self) -> Dfa {
        let dead = self.n_states;
        let complete = (0..self.n_states)
            .all(|s| self.alphabet.iter().all(|&c| self.transitions.contains_key(&(s, c))));
        if complete {
            return self.clone();
        }
        let mut transitions = self.transitions.clone();
        for s in 0..=self.n_states {
            for &c in &self.alphabet {
                transitions.entry((s, c)).or_insert(dead);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            n_states: self.n_states + 1,
            initial: self.initial,
            accepting: self.accepting.clone(),
            transitions,
        }
    }

    /// Moore-style minimization. The result is a complete minimal DFA for the same
    /// language (up to the same alphabet), with unreachable states removed.
    #[must_use]
    pub fn minimized(&self) -> Dfa {
        let complete = self.completed();
        // Reachable states only.
        let mut reachable = Vec::new();
        let mut seen = vec![false; complete.n_states];
        let mut queue = VecDeque::from([complete.initial]);
        seen[complete.initial] = true;
        while let Some(s) = queue.pop_front() {
            reachable.push(s);
            for &c in &complete.alphabet {
                if let Some(t) = complete.delta(s, c) {
                    if !seen[t] {
                        seen[t] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        // Initial partition: accepting vs non-accepting.
        let mut class: HashMap<usize, usize> =
            reachable.iter().map(|&s| (s, usize::from(complete.accepting.contains(&s)))).collect();
        loop {
            let mut signature: HashMap<usize, Vec<usize>> = HashMap::new();
            for &s in &reachable {
                let mut sig = vec![class[&s]];
                for &c in &complete.alphabet {
                    sig.push(class[&complete.delta(s, c).expect("complete DFA")]);
                }
                signature.insert(s, sig);
            }
            let mut sig_to_class: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut new_class: HashMap<usize, usize> = HashMap::new();
            for &s in &reachable {
                let sig = signature[&s].clone();
                let next_id = sig_to_class.len();
                let id = *sig_to_class.entry(sig).or_insert(next_id);
                new_class.insert(s, id);
            }
            if new_class == class {
                break;
            }
            class = new_class;
        }
        let n_classes = class.values().copied().max().map_or(1, |m| m + 1);
        let mut transitions = BTreeMap::new();
        let mut accepting = BTreeSet::new();
        for &s in &reachable {
            let cs = class[&s];
            if complete.accepting.contains(&s) {
                accepting.insert(cs);
            }
            for &c in &complete.alphabet {
                transitions.insert((cs, c), class[&complete.delta(s, c).expect("complete DFA")]);
            }
        }
        Dfa {
            alphabet: complete.alphabet,
            n_states: n_classes,
            initial: class[&complete.initial],
            accepting,
            transitions,
        }
    }

    /// Converts the DFA into a regular-expression string by state elimination.
    ///
    /// The produced syntax matches [`crate::regex::Regex::parse`]; it is meant for
    /// human-readable reports of learned token rules, not for efficiency.
    #[must_use]
    pub fn to_regex(&self) -> String {
        // Generalized NFA over regex strings. States: 0..n plus fresh init/final.
        let n = self.n_states;
        let init = n;
        let fin = n + 1;
        let mut edge: HashMap<(usize, usize), String> = HashMap::new();
        let add_edge = |edges: &mut HashMap<(usize, usize), String>,
                        a: usize,
                        b: usize,
                        re: String| {
            edges.entry((a, b)).and_modify(|existing| *existing = alt(existing, &re)).or_insert(re);
        };
        add_edge(&mut edge, init, self.initial, String::new());
        for &f in &self.accepting {
            add_edge(&mut edge, f, fin, String::new());
        }
        for (&(s, c), &t) in &self.transitions {
            add_edge(&mut edge, s, t, escape_char(c));
        }
        for removed in 0..n {
            let self_loop = edge.get(&(removed, removed)).cloned();
            let incoming: Vec<(usize, String)> = edge
                .iter()
                .filter(|(&(a, b), _)| b == removed && a != removed)
                .map(|(&(a, _), re)| (a, re.clone()))
                .collect();
            let outgoing: Vec<(usize, String)> = edge
                .iter()
                .filter(|(&(a, b), _)| a == removed && b != removed)
                .map(|(&(_, b), re)| (b, re.clone()))
                .collect();
            for (a, re_in) in &incoming {
                for (b, re_out) in &outgoing {
                    let middle = self_loop.as_deref().map(star).unwrap_or_default();
                    let combined = concat(&concat(re_in, &middle), re_out);
                    add_edge(&mut edge, *a, *b, combined);
                }
            }
            edge.retain(|&(a, b), _| a != removed && b != removed);
        }
        edge.get(&(init, fin)).cloned().unwrap_or_else(|| "∅".to_string())
    }
}

fn escape_char(c: char) -> String {
    if "()[]*+?|.\\".contains(c) {
        format!("\\{c}")
    } else {
        c.to_string()
    }
}

fn needs_group(re: &str) -> bool {
    // Anything containing a top-level alternation or more than one atom needs
    // grouping before a postfix operator. A cheap conservative test suffices here.
    re.chars().count() > 1 && !(re.starts_with('\\') && re.chars().count() == 2)
}

fn star(re: &str) -> String {
    if re.is_empty() {
        String::new()
    } else if needs_group(re) {
        format!("({re})*")
    } else {
        format!("{re}*")
    }
}

fn concat(a: &str, b: &str) -> String {
    let a_wrapped = if a.contains('|') { format!("({a})") } else { a.to_string() };
    let b_wrapped = if b.contains('|') { format!("({b})") } else { b.to_string() };
    format!("{a_wrapped}{b_wrapped}")
}

fn alt(a: &str, b: &str) -> String {
    if a == b {
        return a.to_string();
    }
    if a.is_empty() {
        return format!("({b})?");
    }
    if b.is_empty() {
        return format!("({a})?");
    }
    format!("{a}|{b}")
}

impl fmt::Display for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DFA: {} states, initial q{}, accepting {:?}",
            self.n_states, self.initial, self.accepting
        )?;
        for (&(s, c), &t) in &self.transitions {
            writeln!(f, "  q{s} --{c}--> q{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_as() -> Dfa {
        // Even number of 'a's over {a, b}.
        let mut tr = BTreeMap::new();
        tr.insert((0, 'a'), 1);
        tr.insert((1, 'a'), 0);
        tr.insert((0, 'b'), 0);
        tr.insert((1, 'b'), 1);
        Dfa::new(vec!['a', 'b'], 2, 0, BTreeSet::from([0]), tr)
    }

    #[test]
    fn run_and_accept() {
        let d = even_as();
        assert!(d.accepts(""));
        assert!(d.accepts("aa"));
        assert!(d.accepts("abab"));
        assert!(!d.accepts("a"));
        assert!(!d.accepts("baa b".trim()));
    }

    #[test]
    fn literal_dfa() {
        let d = Dfa::literal(vec![], "abc");
        assert!(d.accepts("abc"));
        assert!(!d.accepts("ab"));
        assert!(!d.accepts("abcd"));
        assert_eq!(d.shortest_member(), Some("abc".to_string()));
    }

    #[test]
    fn empty_language() {
        let d = Dfa::empty(vec!['a']);
        assert!(d.is_empty_language());
        assert_eq!(d.shortest_member(), None);
        assert!(!d.accepts(""));
        assert!(!even_as().is_empty_language());
    }

    #[test]
    fn prefix_matching() {
        let d = Dfa::literal(vec![], "ab");
        assert_eq!(d.matching_prefix_lengths("abab"), vec![2]);
        assert_eq!(d.shortest_match("abab"), Some(2));
        assert_eq!(d.longest_match("abab"), Some(2));
        assert_eq!(d.shortest_match("ba"), None);

        let e = even_as();
        // "" (len 0), "aa" (len 2), "aab"? even a's: positions 0, 2, 3...
        assert_eq!(e.matching_prefix_lengths("aab"), vec![0, 2, 3]);
        assert_eq!(e.longest_match("aab"), Some(3));
    }

    #[test]
    fn enumerate_small() {
        let d = even_as();
        let words = d.enumerate(2);
        assert!(words.contains(&String::new()));
        assert!(words.contains(&"aa".to_string()));
        assert!(words.contains(&"b".to_string()));
        assert!(!words.contains(&"a".to_string()));
    }

    #[test]
    fn minimization_collapses_equivalent_states() {
        // Build a redundant DFA for "even number of a's" with 4 states.
        let mut tr = BTreeMap::new();
        tr.insert((0, 'a'), 1);
        tr.insert((1, 'a'), 2);
        tr.insert((2, 'a'), 3);
        tr.insert((3, 'a'), 0);
        tr.insert((0, 'b'), 0);
        tr.insert((1, 'b'), 1);
        tr.insert((2, 'b'), 2);
        tr.insert((3, 'b'), 3);
        let d = Dfa::new(vec!['a', 'b'], 4, 0, BTreeSet::from([0, 2]), tr);
        let m = d.minimized();
        assert_eq!(m.state_count(), 2);
        for w in ["", "a", "aa", "ab", "ba", "aab", "abab"] {
            assert_eq!(d.accepts(w), m.accepts(w), "mismatch on {w:?}");
        }
    }

    #[test]
    fn minimization_drops_unreachable_states() {
        let mut tr = BTreeMap::new();
        tr.insert((0, 'a'), 0);
        tr.insert((1, 'a'), 1); // unreachable
        let d = Dfa::new(vec!['a'], 2, 0, BTreeSet::from([0]), tr);
        let m = d.minimized();
        assert!(m.state_count() <= 2); // dead state may be added by completion
        assert!(m.accepts("aaa"));
    }

    #[test]
    fn to_regex_roundtrips_through_parser() {
        use crate::regex::Regex;
        let d = even_as();
        let re_str = d.to_regex();
        let re = Regex::parse(&re_str).unwrap_or_else(|e| panic!("bad regex {re_str:?}: {e}"));
        for w in ["", "a", "aa", "ab", "ba", "bb", "aab", "aba", "abab", "aaaa"] {
            assert_eq!(d.accepts(w), re.is_match(w), "mismatch on {w:?} for {re_str:?}");
        }
    }

    #[test]
    fn completed_adds_dead_state() {
        let d = Dfa::literal(vec![], "ab");
        let c = d.completed();
        assert_eq!(c.state_count(), d.state_count() + 1);
        assert!(c.run("ba").is_some());
        assert!(!c.accepts("ba"));
        assert!(c.run("abab").is_some());
        assert!(!c.accepts("abab"));
        // Completing a complete DFA is a no-op.
        assert_eq!(even_as().completed(), even_as());
    }

    #[test]
    fn display_shows_transitions() {
        let text = even_as().to_string();
        assert!(text.contains("q0 --a--> q1"));
    }
}
