//! Finite-automata substrate for the V-Star reproduction.
//!
//! V-Star relies on classical regular-language machinery in two places:
//!
//! * **Angluin's L\*** (paper §3.4) is both the template for the VPA learner and the
//!   engine used to learn the lexical rules of call/return *tokens* (paper §5.2,
//!   Algorithm 4, line 6). [`lstar`] implements the classic observation-table
//!   algorithm against a membership oracle plus a pluggable equivalence check.
//! * **Regular expressions / DFAs** describe token lexical rules and are used by the
//!   GLADE-style baseline. [`regex`] is a small self-contained engine
//!   (parse → Thompson NFA → subset-construction DFA), and [`dfa`] provides
//!   deterministic automata with minimization and a DFA → regex conversion
//!   (state elimination) for readable learned rules.
//!
//! # Example
//!
//! ```
//! use vstar_automata::regex::Regex;
//! use vstar_automata::lstar::{learn_dfa, LStarConfig};
//!
//! let re = Regex::parse("ab*c").unwrap();
//! assert!(re.is_match("abbbc"));
//!
//! // Learn the same language with L*, simulating equivalence queries by testing
//! // all strings up to length 6.
//! let alphabet = vec!['a', 'b', 'c'];
//! let oracle = |s: &str| re.is_match(s);
//! let dfa = learn_dfa(&alphabet, &oracle, &LStarConfig::bounded_equivalence(6));
//! assert!(dfa.accepts("ac"));
//! assert!(!dfa.accepts("abb"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dfa;
pub mod lstar;
pub mod nfa;
pub mod regex;

pub use cache::QueryCache;
pub use dfa::Dfa;
pub use lstar::{learn_dfa, LStar, LStarConfig, LStarStats};
pub use nfa::Nfa;
pub use regex::Regex;
