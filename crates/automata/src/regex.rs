//! A small self-contained regular-expression engine.
//!
//! Supported syntax: literal characters, `\`-escapes, the wildcard `.`, character
//! classes `[a-z0-9]` / `[^…]`, grouping `(…)`, alternation `|`, and the postfix
//! operators `*`, `+`, `?`. The engine compiles to a Thompson NFA ([`crate::nfa`])
//! and matches by subset simulation, so matching is linear in the input for a fixed
//! pattern and never backtracks.
//!
//! This is used for oracle token definitions, for rendering learned token rules and
//! by the GLADE-style baseline's generalisation steps.

use std::fmt;

use crate::dfa::Dfa;
use crate::nfa::{CharClass, Nfa};

/// Abstract syntax of a regular expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ast {
    /// The empty string ε.
    Empty,
    /// A character class (single characters are one-element classes).
    Class(CharClass),
    /// Concatenation of the children in order.
    Concat(Vec<Ast>),
    /// Alternation (union) of the children.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// One or more repetitions.
    Plus(Box<Ast>),
    /// Zero or one occurrence.
    Opt(Box<Ast>),
}

impl Ast {
    /// A literal string as a concatenation of single-character classes.
    #[must_use]
    pub fn literal(s: &str) -> Ast {
        let parts: Vec<Ast> = s.chars().map(|c| Ast::Class(CharClass::single(c))).collect();
        match parts.len() {
            0 => Ast::Empty,
            1 => parts.into_iter().next().expect("one element"),
            _ => Ast::Concat(parts),
        }
    }
}

/// Error produced when parsing a regular expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte position of the error in the pattern.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

/// A compiled regular expression.
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    nfa: Nfa,
}

impl Regex {
    /// Parses and compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed patterns (unbalanced parentheses,
    /// dangling operators, unterminated classes or escapes).
    pub fn parse(pattern: &str) -> Result<Self, ParseRegexError> {
        let ast = Parser::new(pattern).parse()?;
        Ok(Regex::from_ast_named(ast, pattern.to_string()))
    }

    /// Compiles an already-built [`Ast`].
    #[must_use]
    pub fn from_ast(ast: Ast) -> Self {
        let pattern = render(&ast);
        Regex::from_ast_named(ast, pattern)
    }

    fn from_ast_named(ast: Ast, pattern: String) -> Self {
        let nfa = compile(&ast);
        Regex { pattern, ast, nfa }
    }

    /// The original pattern (or a rendering of the AST).
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The abstract syntax tree.
    #[must_use]
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Returns `true` if the whole input matches the pattern.
    #[must_use]
    pub fn is_match(&self, input: &str) -> bool {
        self.nfa.accepts(input)
    }

    /// Lengths of all prefixes of `input` matching the pattern.
    #[must_use]
    pub fn matching_prefix_lengths(&self, input: &str) -> Vec<usize> {
        self.nfa.matching_prefix_lengths(input)
    }

    /// Converts to a DFA over a concrete alphabet.
    #[must_use]
    pub fn to_dfa(&self, alphabet: &[char]) -> Dfa {
        self.nfa.to_dfa(alphabet)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)
    }
}

/// Renders an AST back to pattern syntax (parse-compatible).
#[must_use]
pub fn render(ast: &Ast) -> String {
    fn class_to_string(c: &CharClass) -> String {
        if c.any {
            return ".".to_string();
        }
        if !c.negated && c.ranges.len() == 1 && c.ranges[0].0 == c.ranges[0].1 {
            let ch = c.ranges[0].0;
            return if "()[]*+?|.\\".contains(ch) { format!("\\{ch}") } else { ch.to_string() };
        }
        let mut s = String::from("[");
        if c.negated {
            s.push('^');
        }
        for &(lo, hi) in &c.ranges {
            if lo == hi {
                if "]\\^-".contains(lo) {
                    s.push('\\');
                }
                s.push(lo);
            } else {
                s.push(lo);
                s.push('-');
                s.push(hi);
            }
        }
        s.push(']');
        s
    }
    fn go(ast: &Ast, parent_is_postfix: bool) -> String {
        match ast {
            Ast::Empty => String::new(),
            Ast::Class(c) => class_to_string(c),
            Ast::Concat(parts) => {
                let body: String = parts
                    .iter()
                    .map(|p| go(p, false))
                    .map(|s| {
                        // Alternations inside a concatenation need grouping.
                        if s.contains('|') {
                            format!("({s})")
                        } else {
                            s
                        }
                    })
                    .collect();
                if parent_is_postfix {
                    format!("({body})")
                } else {
                    body
                }
            }
            Ast::Alt(parts) => {
                let body = parts.iter().map(|p| go(p, false)).collect::<Vec<_>>().join("|");
                if parent_is_postfix {
                    format!("({body})")
                } else {
                    body
                }
            }
            Ast::Star(inner) => format!("{}*", group_atom(inner)),
            Ast::Plus(inner) => format!("{}+", group_atom(inner)),
            Ast::Opt(inner) => format!("{}?", group_atom(inner)),
        }
    }
    fn group_atom(inner: &Ast) -> String {
        match inner {
            Ast::Class(_) | Ast::Empty => go(inner, false),
            _ => go(inner, true),
        }
    }
    go(ast, false)
}

fn compile(ast: &Ast) -> Nfa {
    let mut nfa = Nfa::with_states(0);
    let start = nfa.add_state();
    let accept = nfa.add_state();
    build(ast, &mut nfa, start, accept);
    nfa.start = start;
    nfa.accept = accept;
    nfa
}

fn build(ast: &Ast, nfa: &mut Nfa, from: usize, to: usize) {
    match ast {
        Ast::Empty => nfa.add_epsilon(from, to),
        Ast::Class(c) => nfa.add_class(from, c.clone(), to),
        Ast::Concat(parts) => {
            if parts.is_empty() {
                nfa.add_epsilon(from, to);
                return;
            }
            let mut current = from;
            for (i, part) in parts.iter().enumerate() {
                let next = if i + 1 == parts.len() { to } else { nfa.add_state() };
                build(part, nfa, current, next);
                current = next;
            }
        }
        Ast::Alt(parts) => {
            if parts.is_empty() {
                return; // no path: matches nothing
            }
            for part in parts {
                let s = nfa.add_state();
                let e = nfa.add_state();
                nfa.add_epsilon(from, s);
                build(part, nfa, s, e);
                nfa.add_epsilon(e, to);
            }
        }
        Ast::Star(inner) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(from, s);
            nfa.add_epsilon(from, to);
            build(inner, nfa, s, e);
            nfa.add_epsilon(e, s);
            nfa.add_epsilon(e, to);
        }
        Ast::Plus(inner) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(from, s);
            build(inner, nfa, s, e);
            nfa.add_epsilon(e, s);
            nfa.add_epsilon(e, to);
        }
        Ast::Opt(inner) => {
            nfa.add_epsilon(from, to);
            build(inner, nfa, from, to);
        }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser { chars: pattern.chars().collect(), pos: 0, pattern }
    }

    fn error(&self, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError { position: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse(mut self) -> Result<Ast, ParseRegexError> {
        let ast = self.parse_alt()?;
        if self.pos != self.chars.len() {
            return Err(self.error(format!("unexpected character {:?}", self.peek())));
        }
        let _ = self.pattern;
        Ok(ast)
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one part") } else { Ast::Alt(parts) })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_postfix()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_postfix(&mut self) -> Result<Ast, ParseRegexError> {
        let mut atom = self.parse_atom()?;
        while let Some(op) = self.peek() {
            match op {
                '*' => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                '+' => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                '?' => {
                    self.bump();
                    atom = Ast::Opt(Box::new(atom));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseRegexError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Class(CharClass::any())),
            Some('\\') => match self.bump() {
                Some(c) => Ok(Ast::Class(CharClass::single(c))),
                None => Err(self.error("dangling escape")),
            },
            Some(c) if c == '*' || c == '+' || c == '?' => {
                Err(self.error(format!("dangling operator {c:?}")))
            }
            Some(')') => Err(self.error("unexpected ')'")),
            Some(c) => Ok(Ast::Class(CharClass::single(c))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseRegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(self.error("unterminated character class")),
                Some(']') => break,
                Some('\\') => self.bump().ok_or_else(|| self.error("dangling escape in class"))?,
                Some(c) => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some('\\') => {
                        self.bump().ok_or_else(|| self.error("dangling escape in class"))?
                    }
                    Some(h) => h,
                    None => return Err(self.error("unterminated range")),
                };
                if hi < c {
                    return Err(self.error("inverted range"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            return Err(self.error("empty character class"));
        }
        Ok(Ast::Class(CharClass { any: false, negated, ranges }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Regex::parse(pattern).unwrap().is_match(input)
    }

    #[test]
    fn literals_and_concat() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "ab"));
        assert!(!m("abc", "abcd"));
        assert!(m("", ""));
        assert!(!m("", "a"));
    }

    #[test]
    fn alternation() {
        assert!(m("cat|dog", "cat"));
        assert!(m("cat|dog", "dog"));
        assert!(!m("cat|dog", "cow"));
        assert!(m("a|b|c", "b"));
        assert!(m("a|", "")); // empty right alternative
    }

    #[test]
    fn postfix_operators() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab+c", "abc"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m("(ab)*", "ababab"));
        assert!(!m("(ab)*", "aba"));
        assert!(m("(a|b)+", "abba"));
    }

    #[test]
    fn classes_and_wildcard() {
        assert!(m("[a-z]+", "hello"));
        assert!(!m("[a-z]+", "Hello"));
        assert!(m("[a-z0-9_]+", "snake_case_2"));
        assert!(m("[^0-9]+", "abc!"));
        assert!(!m("[^0-9]+", "ab3"));
        assert!(m("a.c", "axc"));
        assert!(m(".*", "anything at all"));
        assert!(m("[-+]?[0-9]+", "+42"));
    }

    #[test]
    fn escapes() {
        assert!(m("\\(\\)", "()"));
        assert!(m("a\\*b", "a*b"));
        assert!(m("\\[x\\]", "[x]"));
        assert!(m("[\\]]+", "]]"));
    }

    #[test]
    fn json_number_like() {
        let re = Regex::parse("-?(0|[1-9][0-9]*)(\\.[0-9]+)?").unwrap();
        for ok in ["0", "-7", "10", "3.14", "-12.5"] {
            assert!(re.is_match(ok), "{ok}");
        }
        for bad in ["01", "+-3", "", ".5", "3."] {
            assert!(!re.is_match(bad), "{bad}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(ab").is_err());
        assert!(Regex::parse("ab)").is_err());
        assert!(Regex::parse("*a").is_err());
        assert!(Regex::parse("[a-").is_err());
        assert!(Regex::parse("[]").is_err());
        assert!(Regex::parse("a\\").is_err());
        let err = Regex::parse("(a").unwrap_err();
        assert!(err.to_string().contains("regex parse error"));
    }

    #[test]
    fn ast_literal_and_render_roundtrip() {
        let patterns = ["abc", "a(b|c)*d", "[a-z]+", "x?y+z*", "a\\*b", "(ab|cd)?e"];
        for p in patterns {
            let re = Regex::parse(p).unwrap();
            let rendered = render(re.ast());
            let re2 = Regex::parse(&rendered)
                .unwrap_or_else(|e| panic!("re-render of {p:?} -> {rendered:?} failed: {e}"));
            for input in ["", "a", "ab", "abc", "abcd", "xyz", "xz", "e", "cde", "a*b", "y"] {
                assert_eq!(
                    re.is_match(input),
                    re2.is_match(input),
                    "{p:?} vs {rendered:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn from_ast_matches_like_parse() {
        let ast = Ast::Concat(vec![Ast::literal("ab"), Ast::Star(Box::new(Ast::literal("c")))]);
        let re = Regex::from_ast(ast);
        assert!(re.is_match("ab"));
        assert!(re.is_match("abccc"));
        assert!(!re.is_match("abd"));
        assert!(!re.pattern().is_empty());
    }

    #[test]
    fn prefix_lengths() {
        let re = Regex::parse("(ab)+").unwrap();
        assert_eq!(re.matching_prefix_lengths("ababab"), vec![2, 4, 6]);
        assert_eq!(re.matching_prefix_lengths("xx"), Vec::<usize>::new());
    }

    #[test]
    fn to_dfa_agrees_with_nfa() {
        let re = Regex::parse("(a|bb)*c").unwrap();
        let dfa = re.to_dfa(&['a', 'b', 'c']);
        for w in ["c", "ac", "bbc", "abbac", "bc", "", "abbab"] {
            assert_eq!(re.is_match(w), dfa.accepts(w), "mismatch on {w:?}");
        }
    }
}
