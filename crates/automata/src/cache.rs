//! Shared membership-query cache with unique/total counters.
//!
//! Three components of the reproduction answer membership queries through a
//! cache that counts *unique* queries (the paper's "#Queries" metric, §6:
//! "Since a particular string might be queried multiple times, we cache the
//! result after the first query, and only count unique queries"): the MAT
//! wrapper in `vstar::mat`, the L\* observation table in [`crate::lstar`], and
//! the black-box oracle wrapper in `vstar_oracles`. [`QueryCache`] is the one
//! implementation behind all three; each call site keeps its own instance, so
//! per-site unique/total counters stay intact.

use std::collections::HashMap;

/// A caching membership-query store counting unique and total queries.
///
/// [`QueryCache::query`] is the single lookup/record path shared by every
/// call site: the caller takes one borrow, the hot hit path is one
/// allocation-free hash probe, and only the miss path — whose cost is
/// dominated by the oracle invocation itself — touches the table a second
/// time to record the fresh answer.
#[derive(Default)]
pub struct QueryCache {
    cache: HashMap<String, bool>,
    unique_queries: usize,
    total_queries: usize,
}

impl QueryCache {
    /// An empty cache with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// Answers a membership query: counts a total query, returns the cached
    /// answer on a hit, and otherwise computes the answer with `oracle`,
    /// records it, and counts a unique query.
    ///
    /// The oracle runs while the cache is borrowed, so it must not
    /// (transitively) query the same cache.
    pub fn query(&mut self, input: &str, oracle: impl FnOnce(&str) -> bool) -> bool {
        self.total_queries += 1;
        // Hits (the overwhelmingly common case — that is why the cache exists)
        // stay allocation-free; the owned key is only built on a miss.
        if let Some(&v) = self.cache.get(input) {
            return v;
        }
        let v = oracle(input);
        self.unique_queries += 1;
        self.cache.insert(input.to_owned(), v);
        v
    }

    /// Number of unique (cache-missing) membership queries so far.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.unique_queries
    }

    /// Number of membership queries including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.total_queries
    }

    /// Number of cached answers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Clears the cache and both counters.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.unique_queries = 0;
        self.total_queries = 0;
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("unique_queries", &self.unique_queries)
            .field("total_queries", &self.total_queries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unique_and_total() {
        let calls = std::cell::Cell::new(0usize);
        let mut cache = QueryCache::new();
        let oracle = |s: &str| {
            calls.set(calls.get() + 1);
            s.len() < 3
        };
        assert!(cache.query("ab", oracle));
        assert!(cache.query("ab", oracle));
        assert!(!cache.query("abcd", oracle));
        assert_eq!(cache.unique_queries(), 2);
        assert_eq!(cache.total_queries(), 3);
        assert_eq!(calls.get(), 2, "hits must not call the oracle");
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut cache = QueryCache::new();
        let _ = cache.query("x", |_| true);
        cache.reset();
        assert_eq!(cache.unique_queries(), 0);
        assert_eq!(cache.total_queries(), 0);
        assert!(cache.is_empty());
        // A re-queried string is a fresh unique query after reset.
        let _ = cache.query("x", |_| false);
        assert_eq!(cache.unique_queries(), 1);
        assert!(!cache.query("x", |_| true), "cached answer wins after reset");
    }

    #[test]
    fn debug_shows_counters() {
        let cache = QueryCache::new();
        assert!(format!("{cache:?}").contains("unique_queries"));
    }
}
