//! Shared membership-query cache with unique/total counters.
//!
//! Three components of the reproduction answer membership queries through a
//! cache that counts *unique* queries (the paper's "#Queries" metric, §6:
//! "Since a particular string might be queried multiple times, we cache the
//! result after the first query, and only count unique queries"): the MAT
//! wrapper in `vstar::mat`, the L\* observation table in [`crate::lstar`], and
//! the black-box oracle wrapper in `vstar_oracles`. [`QueryCache`] is the one
//! implementation behind all three; each call site keeps its own instance, so
//! per-site unique/total counters stay intact.

use std::collections::HashMap;

/// Pre-built telemetry counter names of one labelled cache site, so the hot
/// query path never formats strings.
struct SiteCounters {
    hit: String,
    miss: String,
}

/// A caching membership-query store counting unique and total queries.
///
/// [`QueryCache::query`] is the single lookup/record path shared by every
/// call site: the caller takes one borrow, the hot hit path is one
/// allocation-free hash probe, and only the miss path — whose cost is
/// dominated by the oracle invocation itself — touches the table a second
/// time to record the fresh answer.
///
/// A cache built with [`QueryCache::for_site`] additionally reports every
/// lookup to `vstar_telemetry` as `query.<site>.hit` / `query.<site>.miss`
/// counters. The site label is what keeps *stacked* caches honest: when an
/// L\* table caches over a closure that itself queries a `Mat` (which caches
/// over the real oracle), each layer increments only its own counters, so a
/// hit anywhere is never double-counted as an oracle query — the innermost
/// labelled miss count (`query.oracle.miss` or `query.mat.miss`) is the
/// ground truth for "how often did the black box actually run".
#[derive(Default)]
pub struct QueryCache {
    cache: HashMap<String, bool>,
    unique_queries: usize,
    total_queries: usize,
    site: Option<SiteCounters>,
}

impl QueryCache {
    /// An empty cache with zeroed counters and no telemetry site label.
    #[must_use]
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// An empty cache that reports its lookups to telemetry as
    /// `query.<site>.hit` / `query.<site>.miss`.
    #[must_use]
    pub fn for_site(site: &str) -> Self {
        QueryCache {
            site: Some(SiteCounters {
                hit: format!("query.{site}.hit"),
                miss: format!("query.{site}.miss"),
            }),
            ..QueryCache::default()
        }
    }

    /// Answers a membership query: counts a total query, returns the cached
    /// answer on a hit, and otherwise computes the answer with `oracle`,
    /// records it, and counts a unique query.
    ///
    /// The oracle runs while the cache is borrowed, so it must not
    /// (transitively) query the same cache.
    pub fn query(&mut self, input: &str, oracle: impl FnOnce(&str) -> bool) -> bool {
        self.total_queries += 1;
        // Hits (the overwhelmingly common case — that is why the cache exists)
        // stay allocation-free; the owned key is only built on a miss.
        if let Some(&v) = self.cache.get(input) {
            if let Some(site) = &self.site {
                vstar_telemetry::counter(&site.hit, 1);
            }
            return v;
        }
        if let Some(site) = &self.site {
            // Counted *before* the oracle runs so that queries the oracle
            // issues transitively (stacked caches) nest inside this one in
            // journal order; the count itself is unaffected by ordering.
            vstar_telemetry::counter(&site.miss, 1);
        }
        let v = oracle(input);
        self.unique_queries += 1;
        self.cache.insert(input.to_owned(), v);
        v
    }

    /// Records a known answer without consulting any oracle and without
    /// counting a query: a later [`QueryCache::query`] for `input` is a hit.
    /// An already-cached answer is left untouched (the first recorded answer
    /// wins, matching the policy of `query`).
    pub fn preload(&mut self, input: &str, answer: bool) {
        if !self.cache.contains_key(input) {
            self.cache.insert(input.to_owned(), answer);
        }
    }

    /// Number of unique (cache-missing) membership queries so far.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.unique_queries
    }

    /// Number of membership queries including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.total_queries
    }

    /// Number of cache hits so far (total minus unique queries).
    #[must_use]
    pub fn hits(&self) -> usize {
        self.total_queries - self.unique_queries
    }

    /// Number of cached answers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Clears the cache and both counters.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.unique_queries = 0;
        self.total_queries = 0;
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("unique_queries", &self.unique_queries)
            .field("total_queries", &self.total_queries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unique_and_total() {
        let calls = std::cell::Cell::new(0usize);
        let mut cache = QueryCache::new();
        let oracle = |s: &str| {
            calls.set(calls.get() + 1);
            s.len() < 3
        };
        assert!(cache.query("ab", oracle));
        assert!(cache.query("ab", oracle));
        assert!(!cache.query("abcd", oracle));
        assert_eq!(cache.unique_queries(), 2);
        assert_eq!(cache.total_queries(), 3);
        assert_eq!(calls.get(), 2, "hits must not call the oracle");
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut cache = QueryCache::new();
        let _ = cache.query("x", |_| true);
        cache.reset();
        assert_eq!(cache.unique_queries(), 0);
        assert_eq!(cache.total_queries(), 0);
        assert!(cache.is_empty());
        // A re-queried string is a fresh unique query after reset.
        let _ = cache.query("x", |_| false);
        assert_eq!(cache.unique_queries(), 1);
        assert!(!cache.query("x", |_| true), "cached answer wins after reset");
    }

    #[test]
    fn preload_makes_later_queries_hits_and_first_answer_wins() {
        let mut cache = QueryCache::new();
        cache.preload("w", true);
        assert_eq!(cache.unique_queries(), 0, "preloading is not a query");
        assert!(cache.query("w", |_| panic!("preloaded answer must win")));
        assert_eq!(cache.unique_queries(), 0);
        assert_eq!(cache.hits(), 1);
        // An already-answered string is not overwritten.
        let _ = cache.query("x", |_| false);
        cache.preload("x", true);
        assert!(!cache.query("x", |_| true));
    }

    #[test]
    fn debug_shows_counters() {
        let cache = QueryCache::new();
        assert!(format!("{cache:?}").contains("unique_queries"));
    }

    #[test]
    fn hits_is_total_minus_unique() {
        let mut cache = QueryCache::new();
        let _ = cache.query("a", |_| true);
        let _ = cache.query("a", |_| true);
        let _ = cache.query("a", |_| true);
        let _ = cache.query("b", |_| false);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn site_labelled_cache_reports_hits_and_misses_to_telemetry() {
        let guard = vstar_telemetry::install();
        let mut cache = QueryCache::for_site("mat");
        let _ = cache.query("a", |_| true);
        let _ = cache.query("a", |_| true);
        let _ = cache.query("b", |_| false);
        // The legacy counters and the telemetry counters are two views of the
        // same single lookup path, so they must agree exactly.
        assert_eq!(vstar_telemetry::counter_total("query.mat.miss"), cache.unique_queries() as u64);
        assert_eq!(vstar_telemetry::counter_total("query.mat.hit"), cache.hits() as u64);
        let report = guard.finish();
        assert_eq!(report.facts.counter("query.mat.miss"), 2);
        assert_eq!(report.facts.counter("query.mat.hit"), 1);
    }

    #[test]
    fn unlabelled_cache_stays_silent() {
        let guard = vstar_telemetry::install();
        let mut cache = QueryCache::new();
        let _ = cache.query("a", |_| true);
        let report = guard.finish();
        assert!(report.facts.counters.is_empty(), "{:?}", report.facts.counters);
    }

    #[test]
    fn stacked_caches_never_double_count_a_hit_as_an_oracle_query() {
        // Regression test for the shared entry-style lookup: an L*-layer
        // cache stacked over a Mat-layer cache (the token-inference shape,
        // where LStar's membership closure delegates to `Mat::member`). A
        // string the inner layer has already answered must surface as an
        // inner *hit* even when the outer layer misses — only genuinely
        // fresh strings may increment the inner miss counter, which is the
        // "real oracle invocations" ground truth.
        let guard = vstar_telemetry::install();
        let raw_calls = std::cell::Cell::new(0usize);
        let mut inner = QueryCache::for_site("mat");
        let mut outer = QueryCache::for_site("lstar");

        // Warm the inner layer directly (as a previous per-token learner
        // sharing the same Mat would).
        let _ = inner.query("shared", |_| {
            raw_calls.set(raw_calls.get() + 1);
            true
        });
        // The outer layer now sees "shared" (outer miss, inner hit) and
        // "fresh" (miss at both layers).
        for input in ["shared", "fresh", "shared"] {
            let _ = outer.query(input, |s| {
                inner.query(s, |_| {
                    raw_calls.set(raw_calls.get() + 1);
                    s.len() > 4
                })
            });
        }
        let report = guard.finish();
        assert_eq!(raw_calls.get(), 2, "the black box ran once per unique string");
        assert_eq!(
            report.facts.counter("query.mat.miss"),
            raw_calls.get() as u64,
            "inner misses are exactly the oracle invocations"
        );
        assert_eq!(report.facts.counter("query.mat.hit"), 1, "the warm string is an inner hit");
        assert_eq!(report.facts.counter("query.lstar.miss"), 2);
        assert_eq!(report.facts.counter("query.lstar.hit"), 1);
        // Per-site legacy counters agree with their telemetry views.
        assert_eq!(inner.unique_queries(), 2);
        assert_eq!(outer.unique_queries(), 2);
        assert_eq!(outer.total_queries(), 3);
    }
}
