//! Parse failures, with the input position that caused them.

use std::fmt;

/// Why an input is not derivable by the grammar.
///
/// Positions are 0-based indices into the tagged input (character positions for
/// raw-string parsing).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// No derivation of the prefix can consume the symbol at `position`.
    Stuck {
        /// Index of the unconsumable symbol.
        position: usize,
    },
    /// The return symbol at `position` has no open call.
    UnmatchedReturn {
        /// Index of the unmatched return symbol.
        position: usize,
    },
    /// The input ended while the call at `position` was still open.
    UnmatchedCall {
        /// Index of the innermost unclosed call symbol.
        position: usize,
    },
    /// Every symbol was consumed, but no derivation is complete (the input is a
    /// proper prefix of one or more members).
    Incomplete,
}

impl ParseError {
    /// The input position the error points at, if it has one.
    #[must_use]
    pub fn position(&self) -> Option<usize> {
        match *self {
            ParseError::Stuck { position }
            | ParseError::UnmatchedReturn { position }
            | ParseError::UnmatchedCall { position } => Some(position),
            ParseError::Incomplete => None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParseError::Stuck { position } => {
                write!(f, "no derivation can consume the symbol at position {position}")
            }
            ParseError::UnmatchedReturn { position } => {
                write!(f, "return symbol at position {position} has no open call")
            }
            ParseError::UnmatchedCall { position } => {
                write!(f, "input ended with the call at position {position} still open")
            }
            ParseError::Incomplete => {
                write!(f, "input ended before any derivation was complete")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_position() {
        assert_eq!(ParseError::Stuck { position: 3 }.position(), Some(3));
        assert_eq!(ParseError::Incomplete.position(), None);
        assert!(ParseError::UnmatchedReturn { position: 0 }.to_string().contains("position 0"));
        assert!(ParseError::UnmatchedCall { position: 2 }.to_string().contains("still open"));
        assert!(ParseError::Incomplete.to_string().contains("before any derivation"));
    }
}
