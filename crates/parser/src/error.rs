//! Parse failures, with the input position that caused them.
//!
//! A [`ParseError`] always locates the failure in the *word* the grammar read
//! (the converted word in token mode). Raw-string entry points additionally
//! attach the byte span of the offending fragment in the original raw input —
//! see [`ParseError::raw_span`] — so callers never have to map converted-word
//! indices back through the tokenizer themselves.

use std::fmt;

/// Why an input is not derivable by the grammar.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ParseErrorKind {
    /// No derivation of the prefix can consume the symbol at the position.
    Stuck,
    /// The return symbol at the position has no open call.
    UnmatchedReturn,
    /// The input ended while the call at the position was still open.
    UnmatchedCall,
    /// Every symbol was consumed, but no derivation is complete (the input is
    /// a proper prefix of one or more members).
    Incomplete,
}

/// A parse failure: what went wrong ([`ParseErrorKind`]), where in the word
/// the grammar read ([`ParseError::position`]), and — when the input was a raw
/// string — where in the raw input ([`ParseError::raw_span`]).
///
/// Two errors compare equal only when all of their location data agrees, so
/// tests that pattern-match exact failures keep working across the word-level
/// and raw-string entry points (the word-level constructors leave the raw span
/// empty).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    kind: ParseErrorKind,
    /// 0-based index into the word the grammar read (symbol positions; the
    /// converted word in token mode).
    position: Option<usize>,
    /// Byte span `[start, end)` in the raw input, when known.
    raw_span: Option<(usize, usize)>,
    /// The offending raw fragment (possibly truncated), when known.
    fragment: Option<String>,
}

impl ParseError {
    /// A [`ParseErrorKind::Stuck`] error at a word position.
    #[must_use]
    pub fn stuck(position: usize) -> Self {
        ParseError {
            kind: ParseErrorKind::Stuck,
            position: Some(position),
            raw_span: None,
            fragment: None,
        }
    }

    /// A [`ParseErrorKind::UnmatchedReturn`] error at a word position.
    #[must_use]
    pub fn unmatched_return(position: usize) -> Self {
        ParseError {
            kind: ParseErrorKind::UnmatchedReturn,
            position: Some(position),
            raw_span: None,
            fragment: None,
        }
    }

    /// A [`ParseErrorKind::UnmatchedCall`] error at a word position.
    #[must_use]
    pub fn unmatched_call(position: usize) -> Self {
        ParseError {
            kind: ParseErrorKind::UnmatchedCall,
            position: Some(position),
            raw_span: None,
            fragment: None,
        }
    }

    /// A [`ParseErrorKind::Incomplete`] error (the end of input, no position).
    #[must_use]
    pub fn incomplete() -> Self {
        ParseError {
            kind: ParseErrorKind::Incomplete,
            position: None,
            raw_span: None,
            fragment: None,
        }
    }

    /// What went wrong.
    #[must_use]
    pub fn kind(&self) -> ParseErrorKind {
        self.kind
    }

    /// The position the error points at in the word the grammar read, if it
    /// has one (0-based symbol index; the converted word in token mode).
    #[must_use]
    pub fn position(&self) -> Option<usize> {
        self.position
    }

    /// The byte span `[start, end)` of the offending fragment in the raw
    /// input, when the error came from a raw-string entry point.
    #[must_use]
    pub fn raw_span(&self) -> Option<(usize, usize)> {
        self.raw_span
    }

    /// The offending raw fragment (truncated to a short snippet), when known.
    #[must_use]
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Attaches a raw-input byte span and its fragment (long fragments are
    /// truncated on a char boundary to keep `Display` readable).
    #[must_use]
    pub fn with_raw_span(mut self, start: usize, end: usize, fragment: &str) -> Self {
        const MAX_FRAGMENT_CHARS: usize = 24;
        let truncated: String = fragment.chars().take(MAX_FRAGMENT_CHARS).collect();
        let suffix = if truncated.len() < fragment.len() { "…" } else { "" };
        self.raw_span = Some((start, end));
        self.fragment = Some(format!("{truncated}{suffix}"));
        self
    }

    /// Attaches the raw context for the raw character at `raw_char_index` of
    /// `raw`: the byte span of that character (or the empty end-of-input span)
    /// and a fragment starting there.
    #[must_use]
    pub fn with_raw_char_context(self, raw: &str, raw_char_index: usize) -> Self {
        let start = raw.char_indices().nth(raw_char_index).map_or(raw.len(), |(byte, _)| byte);
        let end = raw[start..].chars().next().map_or(start, |c| start + c.len_utf8());
        self.with_raw_span(start, end, &raw[start..])
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Stuck => {
                let p = self.position.expect("stuck errors carry a position");
                write!(f, "no derivation can consume the symbol at position {p}")?;
            }
            ParseErrorKind::UnmatchedReturn => {
                let p = self.position.expect("unmatched-return errors carry a position");
                write!(f, "return symbol at position {p} has no open call")?;
            }
            ParseErrorKind::UnmatchedCall => {
                let p = self.position.expect("unmatched-call errors carry a position");
                write!(f, "input ended with the call at position {p} still open")?;
            }
            ParseErrorKind::Incomplete => {
                write!(f, "input ended before any derivation was complete")?;
            }
        }
        if let Some((start, end)) = self.raw_span {
            write!(f, " (raw input bytes {start}..{end}")?;
            if let Some(fragment) = &self.fragment {
                write!(f, ", near {fragment:?}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_position() {
        assert_eq!(ParseError::stuck(3).position(), Some(3));
        assert_eq!(ParseError::stuck(3).kind(), ParseErrorKind::Stuck);
        assert_eq!(ParseError::incomplete().position(), None);
        assert!(ParseError::unmatched_return(0).to_string().contains("position 0"));
        assert!(ParseError::unmatched_call(2).to_string().contains("still open"));
        assert!(ParseError::incomplete().to_string().contains("before any derivation"));
    }

    #[test]
    fn raw_span_appears_in_display_and_accessors() {
        let e = ParseError::stuck(4).with_raw_span(7, 10, "<p>trailing");
        assert_eq!(e.raw_span(), Some((7, 10)));
        assert_eq!(e.fragment(), Some("<p>trailing"));
        let text = e.to_string();
        assert!(text.contains("position 4"), "{text}");
        assert!(text.contains("bytes 7..10"), "{text}");
        assert!(text.contains("<p>trailing"), "{text}");
        // Errors with and without raw context are distinguishable.
        assert_ne!(e, ParseError::stuck(4));
    }

    #[test]
    fn raw_char_context_maps_char_index_to_byte_span() {
        // Multi-byte chars before the failure shift the byte span.
        let e = ParseError::stuck(2).with_raw_char_context("éé!rest", 2);
        assert_eq!(e.raw_span(), Some((4, 5)));
        assert_eq!(e.fragment(), Some("!rest"));
        // Index at end of input yields the empty end span.
        let e = ParseError::incomplete().with_raw_char_context("ab", 2);
        assert_eq!(e.raw_span(), Some((2, 2)));
        assert_eq!(e.fragment(), Some(""));
    }

    #[test]
    fn long_fragments_truncate() {
        let long = "x".repeat(100);
        let e = ParseError::stuck(0).with_raw_span(0, 1, &long);
        let fragment = e.fragment().unwrap();
        assert!(fragment.chars().count() <= 25);
        assert!(fragment.ends_with('…'));
    }
}
