//! Parse trees for well-matched VPG derivations.
//!
//! A derivation of a well-matched VPG (Definition 3.1) decomposes into *nesting
//! levels*: within one level the rules `L → c L₁` and `L → ‹a L₁ b› L₂` chain
//! left to right until an ε-rule closes the level, and every matching rule opens
//! one nested level for its `‹a … b›` body. [`ParseTree`] stores exactly this
//! shape — one `Vec` of [`ParseStep`]s per level with nested levels inside
//! [`ParseStep::Nest`] — so tree depth equals the *nesting depth* of the input,
//! not its length. A thousand plain characters are a thousand vector entries,
//! not a thousand boxed tree nodes, and the provided traversals
//! ([`ParseTree::write_yield`], [`ParseTree::len`], [`ParseTree::depth`],
//! [`ParseTree::rule_applications`], [`ParseTree::validate`]) as well as drop
//! use explicit worklists, so they are linear and stack-safe even on
//! adversarially deep nesting. (The *derived* `Clone`/`PartialEq`/`Debug`
//! impls still recurse once per nesting level.)

use std::fmt;

use vstar_vpl::{NonterminalId, RuleRhs, Vpg};

/// One rule application inside a nesting level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseStep {
    /// `lhs → plain next`, where `next` is the `lhs` of the following step (or
    /// the level's closer).
    Plain {
        /// The nonterminal the linear rule was applied to.
        lhs: NonterminalId,
        /// The plain terminal consumed.
        plain: char,
    },
    /// `lhs → ‹call inner.root() ret› next`, with the nested level made explicit.
    Nest {
        /// The nonterminal the matching rule was applied to.
        lhs: NonterminalId,
        /// The call terminal opening the nested level.
        call: char,
        /// The derivation of the nested body.
        inner: ParseTree,
        /// The return terminal closing the nested level.
        ret: char,
    },
}

/// The derivation of one nesting level (and, at the top, of a whole string).
///
/// `root` is the nonterminal the level starts from; each step consumes one
/// terminal (plus a nested level for matching steps) and hands over to the next
/// step's left-hand side; `closer` is the nonterminal whose ε-rule ends the
/// level. [`ParseTree::validate`] checks all of this against a grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTree {
    root: NonterminalId,
    steps: Vec<ParseStep>,
    closer: NonterminalId,
}

impl ParseTree {
    /// Assembles a level. `root` must equal the first step's `lhs` (or `closer`
    /// for an empty level); this is checked by [`ParseTree::validate`], not here.
    #[must_use]
    pub fn new(root: NonterminalId, steps: Vec<ParseStep>, closer: NonterminalId) -> Self {
        ParseTree { root, steps, closer }
    }

    /// The derivation `root → ε`.
    #[must_use]
    pub fn empty(nt: NonterminalId) -> Self {
        ParseTree { root: nt, steps: Vec::new(), closer: nt }
    }

    /// The nonterminal this level derives from.
    #[must_use]
    pub fn root(&self) -> NonterminalId {
        self.root
    }

    /// The rule applications of this level, in input order.
    #[must_use]
    pub fn steps(&self) -> &[ParseStep] {
        &self.steps
    }

    /// The nonterminal whose ε-rule closes this level.
    #[must_use]
    pub fn closer(&self) -> NonterminalId {
        self.closer
    }

    /// Number of terminals derived by this level, nested levels included.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        let mut stack: Vec<&ParseTree> = vec![self];
        while let Some(t) = stack.pop() {
            for step in &t.steps {
                match step {
                    ParseStep::Plain { .. } => total += 1,
                    ParseStep::Nest { inner, .. } => {
                        total += 2;
                        stack.push(inner);
                    }
                }
            }
        }
        total
    }

    /// Returns `true` if the tree derives the empty string.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Maximum call/return nesting depth of the derived string (0 without calls).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut stack: Vec<(&ParseTree, usize)> = vec![(self, 0)];
        while let Some((t, d)) = stack.pop() {
            for step in &t.steps {
                if let ParseStep::Nest { inner, .. } = step {
                    max = max.max(d + 1);
                    stack.push((inner, d + 1));
                }
            }
        }
        max
    }

    /// Total number of rule applications, the closing ε-rules included.
    #[must_use]
    pub fn rule_applications(&self) -> usize {
        let mut total = 0usize;
        let mut stack: Vec<&ParseTree> = vec![self];
        while let Some(t) = stack.pop() {
            total += 1 + t.steps.len();
            for step in &t.steps {
                if let ParseStep::Nest { inner, .. } = step {
                    stack.push(inner);
                }
            }
        }
        total
    }

    /// Calls `f` on every rule application of the tree, the closing ε-rules
    /// included: `(lhs, rhs)` exactly as the rule would appear in a [`Vpg`].
    /// Visit order is deterministic (preorder over levels) but otherwise
    /// unspecified. Combined with [`Vpg::rule_id`] this yields the tree's
    /// rule-coverage footprint.
    pub fn visit_rules(&self, mut f: impl FnMut(NonterminalId, RuleRhs)) {
        let mut stack: Vec<&ParseTree> = vec![self];
        while let Some(t) = stack.pop() {
            for (i, step) in t.steps.iter().enumerate() {
                let next = match t.steps.get(i + 1) {
                    Some(ParseStep::Plain { lhs, .. } | ParseStep::Nest { lhs, .. }) => *lhs,
                    None => t.closer,
                };
                match step {
                    ParseStep::Plain { lhs, plain } => {
                        f(*lhs, RuleRhs::Linear { plain: *plain, next });
                    }
                    ParseStep::Nest { lhs, call, inner, ret } => {
                        stack.push(inner);
                        f(*lhs, RuleRhs::Match { call: *call, inner: inner.root, ret: *ret, next });
                    }
                }
            }
            f(t.closer, RuleRhs::Empty);
        }
    }

    /// Number of [`ParseStep::Nest`] steps in the whole tree (candidate
    /// mutation points for subtree-level fuzzing).
    #[must_use]
    pub fn nest_count(&self) -> usize {
        let mut count = 0usize;
        let mut stack: Vec<&ParseTree> = vec![self];
        while let Some(t) = stack.pop() {
            for step in &t.steps {
                if let ParseStep::Nest { inner, .. } = step {
                    count += 1;
                    stack.push(inner);
                }
            }
        }
        count
    }

    /// Summaries of every nested level, in document (preorder) order. Each
    /// summary carries the nest's [`NestPath`] — the address understood by
    /// [`ParseTree::level_at`] and [`ParseTree::replace_level`] — along with
    /// its body nonterminal, its depth, and the span `[start, start + len)` the
    /// whole `‹call … ret›` group occupies in the tree's yield.
    ///
    /// Paths are stable under replacement at *non-prefix* paths, which is what
    /// lets a mutator address several nests of one tree and rewrite them
    /// independently.
    #[must_use]
    pub fn nest_summaries(&self) -> Vec<NestSummary> {
        let mut out = Vec::new();
        // (level, next step index, yield offset at that step, path of the level)
        let mut stack: Vec<(&ParseTree, usize, usize, NestPath)> = vec![(self, 0, 0, Vec::new())];
        while let Some((t, idx, offset, path)) = stack.pop() {
            if let Some(step) = t.steps.get(idx) {
                match step {
                    ParseStep::Plain { .. } => stack.push((t, idx + 1, offset + 1, path)),
                    ParseStep::Nest { inner, .. } => {
                        let len = inner.len() + 2;
                        let mut child_path = path.clone();
                        child_path.push(idx);
                        out.push(NestSummary {
                            path: child_path.clone(),
                            inner_root: inner.root,
                            start: offset,
                            len,
                            depth: path.len(),
                        });
                        stack.push((t, idx + 1, offset + len, path));
                        stack.push((inner, 0, offset + 1, child_path));
                    }
                }
            }
        }
        out
    }

    /// The nesting level addressed by `path`: the tree itself for the empty
    /// path, otherwise the body reached by descending into the `path[k]`-th
    /// step of each successive level. Returns `None` when a component is out of
    /// range or addresses a [`ParseStep::Plain`] step.
    #[must_use]
    pub fn level_at(&self, path: &[usize]) -> Option<&ParseTree> {
        let mut cur = self;
        for &k in path {
            match cur.steps.get(k)? {
                ParseStep::Nest { inner, .. } => cur = inner,
                ParseStep::Plain { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Replaces the level addressed by `path` (see [`ParseTree::level_at`])
    /// with `replacement` and returns the previous level. The replacement must
    /// derive from the same nonterminal as the current level — that keeps the
    /// enclosing matching rule (or the tree's own root) well formed, so a valid
    /// tree stays valid whenever the replacement itself is valid.
    ///
    /// # Errors
    ///
    /// Returns `Err(replacement)` unchanged when the path does not address a
    /// level or the roots differ; the tree is not modified.
    pub fn replace_level(
        &mut self,
        path: &[usize],
        replacement: ParseTree,
    ) -> Result<ParseTree, ParseTree> {
        let mut cur = self;
        for &k in path {
            match cur.steps.get_mut(k) {
                Some(ParseStep::Nest { inner, .. }) => cur = inner,
                _ => return Err(replacement),
            }
        }
        if cur.root != replacement.root {
            return Err(replacement);
        }
        Ok(std::mem::replace(cur, replacement))
    }

    /// Appends the derived string to `out`.
    pub fn write_yield(&self, out: &mut String) {
        enum Task<'a> {
            Level(&'a ParseTree, usize),
            Ret(char),
        }
        let mut stack: Vec<Task<'_>> = vec![Task::Level(self, 0)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Ret(c) => out.push(c),
                Task::Level(t, idx) => {
                    if let Some(step) = t.steps.get(idx) {
                        match step {
                            ParseStep::Plain { plain, .. } => {
                                out.push(*plain);
                                stack.push(Task::Level(t, idx + 1));
                            }
                            ParseStep::Nest { call, inner, ret, .. } => {
                                out.push(*call);
                                stack.push(Task::Level(t, idx + 1));
                                stack.push(Task::Ret(*ret));
                                stack.push(Task::Level(inner, 0));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The derived string (the tree's yield).
    #[must_use]
    pub fn yielded(&self) -> String {
        let mut out = String::with_capacity(self.len());
        self.write_yield(&mut out);
        out
    }

    /// Checks that every step of the tree is licensed by a rule of `vpg`: the
    /// level starts at `root`, each step's rule (with the *next* step's `lhs` as
    /// its continuation) is an alternative of its `lhs`, nested levels validate
    /// too, and every closer has an ε-rule. Nonterminals outside `vpg` make the
    /// tree invalid rather than panicking.
    #[must_use]
    pub fn validate(&self, vpg: &Vpg) -> bool {
        let known = |nt: NonterminalId| nt.0 < vpg.nonterminal_count();
        let mut stack: Vec<&ParseTree> = vec![self];
        while let Some(t) = stack.pop() {
            if !known(t.root) || !known(t.closer) {
                return false;
            }
            let mut cur = t.root;
            for (i, step) in t.steps.iter().enumerate() {
                let next = match t.steps.get(i + 1) {
                    Some(ParseStep::Plain { lhs, .. } | ParseStep::Nest { lhs, .. }) => *lhs,
                    None => t.closer,
                };
                let (lhs, rule) = match step {
                    ParseStep::Plain { lhs, plain } => {
                        (*lhs, RuleRhs::Linear { plain: *plain, next })
                    }
                    ParseStep::Nest { lhs, call, inner, ret } => {
                        stack.push(inner);
                        (*lhs, RuleRhs::Match { call: *call, inner: inner.root, ret: *ret, next })
                    }
                };
                if lhs != cur || !known(lhs) || !known(next) || !known(cur) {
                    return false;
                }
                if !vpg.alternatives(lhs).contains(&rule) {
                    return false;
                }
                cur = next;
            }
            if cur != t.closer || !vpg.has_empty_rule(t.closer) {
                return false;
            }
        }
        true
    }

    /// A display adapter resolving nonterminal names through `vpg`.
    #[must_use]
    pub fn display<'a>(&'a self, vpg: &'a Vpg) -> TreeDisplay<'a> {
        TreeDisplay { tree: self, vpg }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, vpg: &Vpg, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        writeln!(f, "{pad}{}", vpg.name(self.root))?;
        for step in &self.steps {
            match step {
                ParseStep::Plain { plain, .. } => writeln!(f, "{pad}  {plain:?}")?,
                ParseStep::Nest { call, inner, ret, .. } => {
                    writeln!(f, "{pad}  ‹{call} … {ret}›")?;
                    inner.fmt_indented(f, vpg, indent + 2)?;
                }
            }
        }
        writeln!(f, "{pad}  ε ({})", vpg.name(self.closer))
    }
}

/// Iterative drop: the derived drop glue would recurse once per nesting level
/// and overflow the stack on adversarially deep inputs (the exact shape a
/// fuzzing workload produces), so nested levels are drained onto a worklist
/// and dropped flat.
impl Drop for ParseTree {
    fn drop(&mut self) {
        let mut garbage: Vec<ParseStep> = std::mem::take(&mut self.steps);
        let mut i = 0;
        while i < garbage.len() {
            let stolen = match &mut garbage[i] {
                ParseStep::Nest { inner, .. } => std::mem::take(&mut inner.steps),
                ParseStep::Plain { .. } => Vec::new(),
            };
            garbage.extend(stolen);
            i += 1;
        }
    }
}

/// Address of a nesting level inside a [`ParseTree`]: the step index of the
/// [`ParseStep::Nest`] to descend into at each level, outermost first. The
/// empty path addresses the tree's own top level.
pub type NestPath = Vec<usize>;

/// Location and shape of one `‹call … ret›` group inside a [`ParseTree`] (from
/// [`ParseTree::nest_summaries`]): the mutation points of subtree-level
/// fuzzing, with enough geometry to map a nest back to a span of the yield.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NestSummary {
    /// Address of the nest's body for [`ParseTree::level_at`] /
    /// [`ParseTree::replace_level`].
    pub path: NestPath,
    /// The nonterminal the nested body derives from.
    pub inner_root: NonterminalId,
    /// Offset of the call character in the tree's yield.
    pub start: usize,
    /// Length of the whole group in the yield, call and return included.
    pub len: usize,
    /// Nesting depth of the group (0 for top-level nests).
    pub depth: usize,
}

/// Indented rendering of a [`ParseTree`] with nonterminal names (from
/// [`ParseTree::display`]).
#[derive(Clone, Copy, Debug)]
pub struct TreeDisplay<'a> {
    tree: &'a ParseTree,
    vpg: &'a Vpg,
}

impl fmt::Display for TreeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.tree.fmt_indented(f, self.vpg, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;

    /// Hand-builds the derivation of "aghbcd" in the Figure-1 grammar:
    /// `L → ‹a A b› L`, `A → ‹g L h› E`, inner `L → ε`, `E → ε`,
    /// outer continues `L → c B`, `B → d L`, `L → ε`.
    fn aghbcd_tree() -> ParseTree {
        let (l, a, b, e) = (NonterminalId(0), NonterminalId(1), NonterminalId(2), NonterminalId(3));
        let inner_a = ParseTree::new(
            a,
            vec![ParseStep::Nest { lhs: a, call: 'g', inner: ParseTree::empty(l), ret: 'h' }],
            e,
        );
        ParseTree::new(
            l,
            vec![
                ParseStep::Nest { lhs: l, call: 'a', inner: inner_a, ret: 'b' },
                ParseStep::Plain { lhs: l, plain: 'c' },
                ParseStep::Plain { lhs: b, plain: 'd' },
            ],
            l,
        )
    }

    #[test]
    fn yield_len_depth() {
        let t = aghbcd_tree();
        assert_eq!(t.yielded(), "aghbcd");
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.depth(), 2);
        // ε-closers: outer L, inner A-level's E, innermost L. Steps: 3 outer + 1
        // inner nest. Applications: 4 steps + 3 closers.
        assert_eq!(t.rule_applications(), 7);
        assert!(ParseTree::empty(NonterminalId(0)).is_empty());
    }

    #[test]
    fn validate_against_figure1() {
        let g = figure1_grammar();
        let t = aghbcd_tree();
        assert!(t.validate(&g));
        assert!(g.accepts(&t.yielded()));
        // Corrupting the tree breaks validation.
        let bad = ParseTree::new(
            NonterminalId(0),
            vec![ParseStep::Plain { lhs: NonterminalId(0), plain: 'd' }],
            NonterminalId(0),
        );
        assert!(!bad.validate(&g));
        // A closer without an ε-rule is invalid.
        let bad_closer = ParseTree::empty(NonterminalId(1));
        assert!(!bad_closer.validate(&g));
    }

    #[test]
    fn visit_rules_matches_validate_and_rule_ids() {
        let g = figure1_grammar();
        let t = aghbcd_tree();
        let mut count = 0usize;
        t.visit_rules(|lhs, rhs| {
            count += 1;
            assert!(g.rule_id(lhs, &rhs).is_some(), "visited rule {lhs} → {rhs:?} not in grammar");
        });
        assert_eq!(count, t.rule_applications());
    }

    #[test]
    fn nest_navigation_and_replacement() {
        let t = aghbcd_tree();
        assert_eq!(t.nest_count(), 2);
        let summaries = t.nest_summaries();
        assert_eq!(summaries.len(), 2);
        // Document order: the outer ‹a … b› group first, then the inner
        // ‹g … h› group one level down.
        assert_eq!(summaries[0].path, vec![0]);
        assert_eq!(summaries[0].depth, 0);
        assert_eq!((summaries[0].start, summaries[0].len), (0, 4)); // "aghb"
        assert_eq!(summaries[1].path, vec![0, 0]);
        assert_eq!(summaries[1].depth, 1);
        assert_eq!((summaries[1].start, summaries[1].len), (1, 2)); // "gh"
        let yielded = t.yielded();
        for s in &summaries {
            // Each summary's span is a substring of the yield.
            assert!(s.start + s.len <= yielded.len());
            assert_eq!(t.level_at(&s.path).unwrap().root(), s.inner_root);
        }
        // The empty path addresses the whole tree; bad paths address nothing.
        assert_eq!(t.level_at(&[]).unwrap(), &t);
        assert!(t.level_at(&[1]).is_none()); // steps[1] is Plain
        assert!(t.level_at(&[9]).is_none());

        // Replacing the inner ‹g L h› body with a bigger L-derivation keeps the
        // tree valid and changes the yield accordingly.
        let g = figure1_grammar();
        let (l, b) = (NonterminalId(0), NonterminalId(2));
        let bigger = ParseTree::new(
            l,
            vec![ParseStep::Plain { lhs: l, plain: 'c' }, ParseStep::Plain { lhs: b, plain: 'd' }],
            l,
        );
        let mut t2 = t.clone();
        let old = t2.replace_level(&[0, 0], bigger).expect("same-root replacement succeeds");
        assert!(old.is_empty());
        assert!(t2.validate(&g));
        assert_eq!(t2.yielded(), "agcdhbcd");

        // Root mismatch and bad paths are rejected without change.
        let wrong_root = ParseTree::empty(NonterminalId(3));
        let mut t3 = t.clone();
        assert!(t3.replace_level(&[0, 0], wrong_root).is_err());
        assert_eq!(t3, t);
        assert!(t3.replace_level(&[9], ParseTree::empty(l)).is_err());
    }

    #[test]
    fn display_names_nonterminals() {
        let g = figure1_grammar();
        let t = aghbcd_tree();
        let text = t.display(&g).to_string();
        assert!(text.contains('L'));
        assert!(text.contains("‹a … b›"));
        assert!(text.contains("ε (E)"));
    }
}
