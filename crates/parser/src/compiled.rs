//! Owned, oracle-free compiled grammar artifacts for serving.
//!
//! [`crate::VpgParser`] and [`crate::LearnedParser`] borrow the grammar and —
//! in token mode — drag a live [`Mat`](vstar::Mat) membership oracle through
//! tokenization, so a learned grammar cannot be saved, shipped or served from
//! threads without the whole learning stack alive. [`CompiledGrammar`] is the
//! execution-side artifact that removes both constraints:
//!
//! * **The derivative automaton is precompiled.** Following the derivative
//!   parser generator of Jia, Kumar & Tan (OOPSLA 2021), the item sets the
//!   recognizer would rebuild at every position are interned once at compile
//!   time and the `(item set, tagged symbol) → item set` transition function
//!   is materialized into dense lookup tables (return transitions are keyed by
//!   the interned stack symbol pushed at the matching call). The hot path of
//!   [`CompiledGrammar::recognize_word`] is a table index per symbol plus a
//!   `Vec<u32>` push/pop — no per-position allocation, no rule scans.
//! * **Tokenization needs no oracle.** The learning-time `conv_τ` decides
//!   whether a call/return token occurrence is real with k-Repetition
//!   membership queries (paper Algorithm 5): an occurrence that can be
//!   repeated in place without leaving the language is plain text, not a
//!   token. At compile time that decision procedure is *materialized into the
//!   transition tables*: the serving scan runs Algorithm 5's left-to-right
//!   scan, but where the oracle answered a membership query it explores both
//!   readings and lets the automaton decide — an occurrence may be read as a
//!   **token** (the branch dies if the grammar has no use for one here), and
//!   it may be read as **plain text** only when the automaton *loops* on it,
//!   `q ──occ──▶ q₁ ──occ──▶ q₁`, the word-level analog of "`occᵏ` stays
//!   valid for every `k`", i.e. of the k-Repetition membership check. The
//!   input is a member iff some reading drives the automaton to acceptance.
//!   The paper's §5.1 example (`{"{":true}` — a call-token `{` inside a
//!   string literal) tokenizes correctly without a single query, because the
//!   learned string-content rules loop on `{`.
//!
//! `CompiledGrammar` is `Send + Sync + Clone + 'static`, serializes to a
//! versioned on-disk format ([`CompiledGrammar::save`] /
//! [`CompiledGrammar::load`], see [`crate::artifact`]) and serves batches
//! across scoped threads ([`CompiledGrammar::parse_batch`], see
//! [`crate::serve`]). Compile once with [`CompileLearned::compile`], serve
//! forever.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use serde::Serialize;

use vstar::tokenizer::{call_marker, return_marker, TokenKind, TokenMatcher};
use vstar::{LearnedLanguage, PartialTokenizer, TokenDiscovery, VStarResult};
use vstar_vpl::{NonterminalId, TaggedChar, Vpg};

use crate::error::ParseError;
use crate::recognizer::RuleTables;
use crate::tree::ParseTree;

/// Sentinel for "no transition" in the dense tables: reading this state (or a
/// dead table entry) rejects.
const DEAD: u32 = u32::MAX;

/// Symbol-kind tag stored in the top two bits of a classified symbol code.
const KIND_PLAIN: u32 = 0;
/// See [`KIND_PLAIN`].
const KIND_CALL: u32 = 1;
/// See [`KIND_PLAIN`].
const KIND_RETURN: u32 = 2;
/// A character the grammar has no rule for; reading it rejects.
const SYM_UNKNOWN: u32 = u32::MAX;

/// Why compiling a grammar into a [`CompiledGrammar`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The reachable item-set automaton exceeded the state budget
    /// ([`CompileOptions::max_states`]). The derivative automaton of a
    /// learned VPG is small in practice; hitting this limit means the grammar
    /// is adversarially ambiguous.
    AutomatonTooLarge {
        /// States interned before giving up.
        states: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::AutomatonTooLarge { states, limit } => write!(
                f,
                "derivative automaton exceeded the state budget ({states} states, limit {limit})"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Knobs for [`CompiledGrammar`] compilation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Upper bound on interned item-set states (and on dense-table size);
    /// compilation fails with [`CompileError::AutomatonTooLarge`] beyond it.
    pub max_states: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { max_states: 16_384 }
    }
}

/// The precompiled derivative automaton: interned item-set states and dense
/// `(state, symbol) → state` transition tables.
#[derive(Clone, Debug)]
struct Automaton {
    /// Plain/call/return characters of the grammar, each sorted; a symbol id
    /// is an index into its kind's list.
    plain_chars: Vec<char>,
    call_chars: Vec<char>,
    ret_chars: Vec<char>,
    /// `char → (kind << 30) | id` for ASCII, with a spill map for the rest
    /// (the artificial token markers live in the private use area).
    ascii: Vec<u32>,
    other: HashMap<char, u32>,
    /// Number of interned stack symbols (one per reachable `(state, call)`).
    n_syms: usize,
    start: u32,
    accepting: Vec<bool>,
    /// `[state * n_plain + plain_id] → state` (or [`DEAD`]).
    plain_trans: Vec<u32>,
    /// `[state * n_call + call_id] → (body state, stack symbol)`.
    call_trans: Vec<(u32, u32)>,
    /// `[(state * n_syms + sym) * n_ret + ret_id] → state`.
    ret_trans: Vec<u32>,
}

impl Automaton {
    #[inline]
    fn classify(&self, ch: char) -> u32 {
        let v = ch as u32;
        if v < 128 {
            self.ascii[v as usize]
        } else {
            self.other.get(&ch).copied().unwrap_or(SYM_UNKNOWN)
        }
    }

    #[inline]
    fn plain_step(&self, state: u32, plain_id: u32) -> u32 {
        self.plain_trans[state as usize * self.plain_chars.len() + plain_id as usize]
    }

    #[inline]
    fn call_step(&self, state: u32, call_id: u32) -> (u32, u32) {
        self.call_trans[state as usize * self.call_chars.len() + call_id as usize]
    }

    #[inline]
    fn ret_step(&self, state: u32, sym: u32, ret_id: u32) -> u32 {
        self.ret_trans
            [(state as usize * self.n_syms + sym as usize) * self.ret_chars.len() + ret_id as usize]
    }

    /// Advances one word symbol; returns `false` when the run dies.
    #[inline]
    fn step(&self, state: &mut u32, stack: &mut Vec<u32>, ch: char) -> bool {
        let code = self.classify(ch);
        let id = code & 0x3FFF_FFFF;
        match code >> 30 {
            KIND_PLAIN => {
                *state = self.plain_step(*state, id);
                *state != DEAD
            }
            KIND_CALL => {
                let (body, sym) = self.call_step(*state, id);
                if body == DEAD {
                    return false;
                }
                stack.push(sym);
                *state = body;
                true
            }
            KIND_RETURN => {
                let Some(sym) = stack.pop() else {
                    return false;
                };
                *state = self.ret_step(*state, sym, id);
                *state != DEAD
            }
            _ => false,
        }
    }
}

/// Builds the automaton by saturating the reachable `(state, stack top)`
/// configurations (the classic pre*-style closure for pushdown systems):
/// plain and call rows are computed per discovered state; return transitions
/// are computed exactly for the `(body state, stack symbol)` combinations that
/// can actually co-occur at a return.
struct Builder<'t> {
    tables: &'t RuleTables,
    plain_chars: Vec<char>,
    call_chars: Vec<char>,
    ret_chars: Vec<char>,
    states: Vec<Vec<(NonterminalId, NonterminalId)>>,
    state_ix: HashMap<Vec<(NonterminalId, NonterminalId)>, u32>,
    plain_rows: Vec<Vec<u32>>,
    call_rows: Vec<Vec<(u32, u32)>>,
    rows_done: Vec<bool>,
    /// Stack symbols: the `(origin state, call id)` pushed at a call.
    syms: Vec<(u32, u32)>,
    sym_ix: HashMap<(u32, u32), u32>,
    ret_map: HashMap<(u32, u32, u32), u32>,
    max_states: usize,
}

impl<'t> Builder<'t> {
    fn new(tables: &'t RuleTables, vpg: &Vpg, max_states: usize) -> Self {
        let mut plain = BTreeSet::new();
        let mut call = BTreeSet::new();
        let mut ret = BTreeSet::new();
        for nt in 0..vpg.nonterminal_count() {
            let nt = NonterminalId(nt);
            for &(c, _) in tables.linear_alts(nt) {
                plain.insert(c);
            }
            for &(c, _, r, _) in tables.matching_alts(nt) {
                call.insert(c);
                ret.insert(r);
            }
        }
        Builder {
            tables,
            plain_chars: plain.into_iter().collect(),
            call_chars: call.into_iter().collect(),
            ret_chars: ret.into_iter().collect(),
            states: Vec::new(),
            state_ix: HashMap::new(),
            plain_rows: Vec::new(),
            call_rows: Vec::new(),
            rows_done: Vec::new(),
            syms: Vec::new(),
            sym_ix: HashMap::new(),
            ret_map: HashMap::new(),
            max_states,
        }
    }

    fn intern_state(
        &mut self,
        mut items: Vec<(NonterminalId, NonterminalId)>,
    ) -> Result<u32, CompileError> {
        items.sort_unstable();
        items.dedup();
        if let Some(&ix) = self.state_ix.get(&items) {
            return Ok(ix);
        }
        if self.states.len() >= self.max_states {
            return Err(CompileError::AutomatonTooLarge {
                states: self.states.len(),
                limit: self.max_states,
            });
        }
        let ix = self.states.len() as u32;
        self.state_ix.insert(items.clone(), ix);
        self.states.push(items);
        self.plain_rows.push(Vec::new());
        self.call_rows.push(Vec::new());
        self.rows_done.push(false);
        Ok(ix)
    }

    fn intern_sym(&mut self, origin: u32, call_id: u32) -> u32 {
        if let Some(&ix) = self.sym_ix.get(&(origin, call_id)) {
            return ix;
        }
        let ix = self.syms.len() as u32;
        self.sym_ix.insert((origin, call_id), ix);
        self.syms.push((origin, call_id));
        ix
    }

    /// Computes the plain and call rows of `s` on first use.
    fn ensure_rows(&mut self, s: u32) -> Result<(), CompileError> {
        if self.rows_done[s as usize] {
            return Ok(());
        }
        self.rows_done[s as usize] = true;
        let items = self.states[s as usize].clone();
        let mut plain_row = Vec::with_capacity(self.plain_chars.len());
        for i in 0..self.plain_chars.len() {
            let ch = self.plain_chars[i];
            let mut next = Vec::new();
            for &(o, l) in &items {
                for &(c, n) in self.tables.linear_alts(l) {
                    if c == ch {
                        next.push((o, n));
                    }
                }
            }
            plain_row.push(if next.is_empty() { DEAD } else { self.intern_state(next)? });
        }
        let mut call_row = Vec::with_capacity(self.call_chars.len());
        for i in 0..self.call_chars.len() {
            let ch = self.call_chars[i];
            let mut body = Vec::new();
            for &(_, l) in &items {
                for &(c, inner, _, _) in self.tables.matching_alts(l) {
                    if c == ch {
                        body.push((inner, inner));
                    }
                }
            }
            call_row.push(if body.is_empty() {
                (DEAD, 0)
            } else {
                let b = self.intern_state(body)?;
                let sym = self.intern_sym(s, i as u32);
                (b, sym)
            });
        }
        self.plain_rows[s as usize] = plain_row;
        self.call_rows[s as usize] = call_row;
        Ok(())
    }

    /// The state after closing a level: `body` finished in state `s`, the
    /// matching call pushed stack symbol `sym`, and `ret_id` is read.
    fn ret_target(&mut self, s: u32, sym: u32, ret_id: u32) -> Result<u32, CompileError> {
        if let Some(&t) = self.ret_map.get(&(s, sym, ret_id)) {
            return Ok(t);
        }
        let (origin, call_id) = self.syms[sym as usize];
        let call_ch = self.call_chars[call_id as usize];
        let ret_ch = self.ret_chars[ret_id as usize];
        let completed: HashSet<NonterminalId> = self.states[s as usize]
            .iter()
            .filter(|&&(_, m)| self.tables.nullable(m))
            .map(|&(o, _)| o)
            .collect();
        let mut next = Vec::new();
        for &(o, l) in &self.states[origin as usize] {
            for &(c, inner, r, n) in self.tables.matching_alts(l) {
                if c == call_ch && r == ret_ch && completed.contains(&inner) {
                    next.push((o, n));
                }
            }
        }
        let target = if next.is_empty() { DEAD } else { self.intern_state(next)? };
        self.ret_map.insert((s, sym, ret_id), target);
        Ok(target)
    }

    fn build(mut self) -> Result<Automaton, CompileError> {
        let start = self.intern_state(vec![(self.tables.start(), self.tables.start())])?;

        // Saturate reachable (state, top) pairs; `top` encodes the stack top
        // as 0 = bottom-of-stack, sym + 1 otherwise.
        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        let mut work: Vec<(u32, u32)> = Vec::new();
        let mut belows: Vec<HashSet<u32>> = Vec::new();
        let mut after_ret: Vec<HashSet<u32>> = Vec::new();
        let push = |pairs: &mut HashSet<(u32, u32)>, work: &mut Vec<(u32, u32)>, p: (u32, u32)| {
            if pairs.insert(p) {
                work.push(p);
            }
        };
        push(&mut pairs, &mut work, (start, 0));
        while let Some((s, top)) = work.pop() {
            self.ensure_rows(s)?;
            for p in 0..self.plain_chars.len() {
                let s2 = self.plain_rows[s as usize][p];
                if s2 != DEAD {
                    push(&mut pairs, &mut work, (s2, top));
                }
            }
            for c in 0..self.call_chars.len() {
                let (body, sym) = self.call_rows[s as usize][c];
                if body == DEAD {
                    continue;
                }
                push(&mut pairs, &mut work, (body, sym + 1));
                while belows.len() <= sym as usize {
                    belows.push(HashSet::new());
                    after_ret.push(HashSet::new());
                }
                if belows[sym as usize].insert(top) {
                    let targets: Vec<u32> = after_ret[sym as usize].iter().copied().collect();
                    for t in targets {
                        push(&mut pairs, &mut work, (t, top));
                    }
                }
            }
            if top > 0 {
                let sym = top - 1;
                for r in 0..self.ret_chars.len() {
                    let target = self.ret_target(s, sym, r as u32)?;
                    if target == DEAD {
                        continue;
                    }
                    while after_ret.len() <= sym as usize {
                        belows.push(HashSet::new());
                        after_ret.push(HashSet::new());
                    }
                    if after_ret[sym as usize].insert(target) {
                        let tops: Vec<u32> = belows[sym as usize].iter().copied().collect();
                        for t in tops {
                            push(&mut pairs, &mut work, (target, t));
                        }
                    }
                }
            }
        }

        // Every interned state needs complete rows (states can be interned as
        // targets without ever being popped in a live pair — their rows then
        // stay default; complete them so dense indexing is safe).
        for s in 0..self.states.len() as u32 {
            self.ensure_rows(s)?;
        }

        let n_states = self.states.len();
        let n_plain = self.plain_chars.len();
        let n_call = self.call_chars.len();
        let n_ret = self.ret_chars.len();
        let n_syms = self.syms.len();
        // The dense return table must stay addressable; the state budget keeps
        // n_states bounded, this keeps the product bounded.
        let ret_len = n_states * n_syms.max(1) * n_ret.max(1);
        if ret_len > (1 << 26) {
            return Err(CompileError::AutomatonTooLarge {
                states: n_states,
                limit: self.max_states,
            });
        }

        let mut plain_trans = vec![DEAD; n_states * n_plain];
        let mut call_trans = vec![(DEAD, 0u32); n_states * n_call];
        for s in 0..n_states {
            plain_trans[s * n_plain..(s + 1) * n_plain].copy_from_slice(&self.plain_rows[s]);
            call_trans[s * n_call..(s + 1) * n_call].copy_from_slice(&self.call_rows[s]);
        }
        let mut ret_trans = vec![DEAD; n_states * n_syms * n_ret];
        for (&(s, sym, r), &target) in &self.ret_map {
            if target != DEAD {
                ret_trans[(s as usize * n_syms + sym as usize) * n_ret + r as usize] = target;
            }
        }
        let accepting: Vec<bool> = self
            .states
            .iter()
            .map(|items| items.iter().any(|&(_, m)| self.tables.nullable(m)))
            .collect();

        let mut ascii = vec![SYM_UNKNOWN; 128];
        let mut other = HashMap::new();
        let mut classify = |ch: char, code: u32| {
            let v = ch as u32;
            if v < 128 {
                ascii[v as usize] = code;
            } else {
                other.insert(ch, code);
            }
        };
        for (i, &c) in self.plain_chars.iter().enumerate() {
            classify(c, (KIND_PLAIN << 30) | i as u32);
        }
        for (i, &c) in self.call_chars.iter().enumerate() {
            classify(c, (KIND_CALL << 30) | i as u32);
        }
        for (i, &c) in self.ret_chars.iter().enumerate() {
            classify(c, (KIND_RETURN << 30) | i as u32);
        }

        Ok(Automaton {
            plain_chars: self.plain_chars,
            call_chars: self.call_chars,
            ret_chars: self.ret_chars,
            ascii,
            other,
            n_syms,
            start,
            accepting,
            plain_trans,
            call_trans,
            ret_trans,
        })
    }
}

/// One candidate token occurrence at an input position, shared by every
/// tokenization branch (the first/shortest match rule of the learning-time
/// scanner depends only on the input).
#[derive(Copy, Clone, Debug)]
struct Candidate {
    pair: usize,
    kind: TokenKind,
    len: usize,
}

/// A compiled, owned, oracle-free serving artifact for one learned grammar.
///
/// See the [module docs](self) for the design. Obtain one with
/// [`CompileLearned::compile`] on a [`LearnedLanguage`] (or
/// [`CompiledGrammar::from_vpg`] for a standalone grammar), then call
/// [`recognize`](CompiledGrammar::recognize) /
/// [`parse`](CompiledGrammar::parse) /
/// [`parse_batch`](CompiledGrammar::parse_batch) — none of which need a
/// membership oracle or borrow the learning stack — or persist it with
/// [`save`](CompiledGrammar::save) and serve it later with
/// [`load`](CompiledGrammar::load).
///
/// # Example
///
/// ```
/// use vstar_parser::CompiledGrammar;
/// use vstar_vpl::grammar::figure1_grammar;
///
/// let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
/// assert!(compiled.recognize("agcdcdhbcd"));
/// let tree = compiled.parse("agcdcdhbcd").unwrap();
/// assert_eq!(tree.yielded(), "agcdcdhbcd");
/// // The artifact is fully owned: ship it to another thread, clone it, keep
/// // it for 'static.
/// std::thread::spawn(move || assert!(compiled.recognize("cd"))).join().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct CompiledGrammar {
    vpg: Vpg,
    tables: RuleTables,
    auto: Automaton,
    tokenizer: PartialTokenizer,
    mode: TokenDiscovery,
}

/// Compile-time proof that the artifact is freely shareable across threads.
const _: () = {
    const fn assert_serving_artifact<T: Send + Sync + Clone + 'static>() {}
    assert_serving_artifact::<CompiledGrammar>();
};

/// Read-only access to a [`CompiledGrammar`]'s dense transition tables.
///
/// The automaton representation stays private; this view hands static
/// analyses (the `vstar-analyze` compiled-layer lints) exactly the table
/// geometry and cell contents they need to audit bounds, reachability and
/// stack-symbol liveness. All slices use the layout documented on the
/// accessors; [`TableView::DEAD`] marks the absent transition.
#[derive(Clone, Copy, Debug)]
pub struct TableView<'a> {
    auto: &'a Automaton,
}

impl TableView<'_> {
    /// The sentinel state id meaning "no transition" in every table.
    pub const DEAD: u32 = DEAD;

    /// Number of interned item-set states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.auto.accepting.len()
    }

    /// Number of interned stack symbols.
    #[must_use]
    pub fn stack_symbol_count(&self) -> usize {
        self.auto.n_syms
    }

    /// The start state.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.auto.start
    }

    /// Per-state acceptance flags (`accepting()[state]`).
    #[must_use]
    pub fn accepting(&self) -> &[bool] {
        &self.auto.accepting
    }

    /// The plain characters, sorted; a plain id is an index into this slice.
    #[must_use]
    pub fn plain_chars(&self) -> &[char] {
        &self.auto.plain_chars
    }

    /// The call characters, sorted.
    #[must_use]
    pub fn call_chars(&self) -> &[char] {
        &self.auto.call_chars
    }

    /// The return characters, sorted.
    #[must_use]
    pub fn ret_chars(&self) -> &[char] {
        &self.auto.ret_chars
    }

    /// The plain table: `[state * plain_chars().len() + plain_id] → state`
    /// (or [`TableView::DEAD`]).
    #[must_use]
    pub fn plain_table(&self) -> &[u32] {
        &self.auto.plain_trans
    }

    /// The call table: `[state * call_chars().len() + call_id] →
    /// (body state, pushed stack symbol)` (body [`TableView::DEAD`] when
    /// absent).
    #[must_use]
    pub fn call_table(&self) -> &[(u32, u32)] {
        &self.auto.call_trans
    }

    /// The return table: `[(state * stack_symbol_count() + sym) *
    /// ret_chars().len() + ret_id] → state` (or [`TableView::DEAD`]).
    #[must_use]
    pub fn ret_table(&self) -> &[u32] {
        &self.auto.ret_trans
    }
}

/// A serializable size-and-identity card for one [`CompiledGrammar`]:
/// automaton geometry, alphabet partition, grammar size, and the versioned
/// artifact identity. Everything here is a pure function of the artifact, so
/// the card is safe to commit, diff and expose (the serving daemon's
/// `/grammars` endpoint, the `vstar-analyze` compiled-layer summary).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct GrammarStats {
    /// Interned item-set states of the derivative automaton.
    pub automaton_states: u64,
    /// Interned stack symbols (one per live `(state, call)` pair).
    pub stack_symbols: u64,
    /// Plain characters of the word alphabet.
    pub plain_chars: u64,
    /// Call characters of the word alphabet.
    pub call_chars: u64,
    /// Return characters of the word alphabet.
    pub ret_chars: u64,
    /// Cells of the dense plain transition table (`states × plain_chars`).
    pub plain_table_cells: u64,
    /// Cells of the dense call transition table (`states × call_chars`).
    pub call_table_cells: u64,
    /// Cells of the dense return table (`states × stack_symbols × ret_chars`).
    pub ret_table_cells: u64,
    /// Nonterminals of the source grammar.
    pub nonterminals: u64,
    /// Rules of the source grammar.
    pub rules: u64,
    /// Token pairs of the compiled tokenizer (token-class count; 0 in
    /// character mode unless the tagging itself defines pairs).
    pub token_pairs: u64,
    /// Discovery mode: `"characters"` or `"tokens"`.
    pub mode: String,
    /// On-disk format version the artifact serializes as
    /// ([`crate::ARTIFACT_VERSION`]).
    pub artifact_version: u64,
    /// [`CompiledGrammar::artifact_fingerprint`] as 16 lowercase hex digits.
    pub artifact_hash: String,
}

/// Cap on tokenization configurations explored per input; exceeding it treats
/// the input as rejected (a defensive bound — live configurations are
/// deduplicated on `(position, state, stack)` and die fast in practice).
const MAX_SCAN_CONFIGS: usize = 1 << 17;

/// Outcome of the compiled conversion scan (token mode).
struct ScanOutcome {
    /// `(position, candidate)` take-decisions of an accepting branch, in
    /// input order (`None` when no branch accepts).
    takes: Option<Vec<(usize, Candidate)>>,
    /// Furthest raw character position any branch reached.
    furthest: usize,
    /// Whether some branch consumed the whole input (but did not accept).
    reached_end: bool,
}

impl CompiledGrammar {
    /// Compiles a standalone grammar (character mode: the grammar's own
    /// tagging is the input alphabet) with default options.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::AutomatonTooLarge`] when the reachable item-set
    /// automaton exceeds the state budget.
    pub fn from_vpg(vpg: &Vpg) -> Result<Self, CompileError> {
        Self::from_vpg_with(vpg, CompileOptions::default())
    }

    /// [`CompiledGrammar::from_vpg`] with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::AutomatonTooLarge`] when the reachable item-set
    /// automaton exceeds the state budget.
    pub fn from_vpg_with(vpg: &Vpg, options: CompileOptions) -> Result<Self, CompileError> {
        Self::assemble(
            vpg.clone(),
            PartialTokenizer::from_tagging(vpg.tagging()),
            TokenDiscovery::Characters,
            options,
        )
    }

    /// Compiles a learned language (grammar + inferred tokenizer + discovery
    /// mode) with default options. Equivalent to [`CompileLearned::compile`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::AutomatonTooLarge`] when the reachable item-set
    /// automaton exceeds the state budget.
    pub fn from_learned(learned: &LearnedLanguage) -> Result<Self, CompileError> {
        Self::from_learned_with(learned, CompileOptions::default())
    }

    /// [`CompiledGrammar::from_learned`] with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::AutomatonTooLarge`] when the reachable item-set
    /// automaton exceeds the state budget.
    pub fn from_learned_with(
        learned: &LearnedLanguage,
        options: CompileOptions,
    ) -> Result<Self, CompileError> {
        Self::assemble(learned.vpg().clone(), learned.tokenizer().clone(), learned.mode(), options)
    }

    pub(crate) fn assemble(
        vpg: Vpg,
        tokenizer: PartialTokenizer,
        mode: TokenDiscovery,
        options: CompileOptions,
    ) -> Result<Self, CompileError> {
        let _compile_span = vstar_telemetry::span("compile");
        let tables = RuleTables::new(&vpg);
        let auto = Builder::new(&tables, &vpg, options.max_states).build()?;
        vstar_telemetry::counter("compile.grammars", 1);
        vstar_telemetry::counter("compile.states_interned", auto.accepting.len() as u64);
        vstar_telemetry::counter("compile.stack_symbols", auto.n_syms as u64);
        vstar_telemetry::event(
            "parser.compile",
            &[
                ("states", auto.accepting.len() as u64),
                ("stack_symbols", auto.n_syms as u64),
                ("plain_chars", auto.plain_chars.len() as u64),
                ("call_chars", auto.call_chars.len() as u64),
                ("ret_chars", auto.ret_chars.len() as u64),
                ("nonterminals", vpg.nonterminal_count() as u64),
            ],
        );
        Ok(CompiledGrammar { vpg, tables, auto, tokenizer, mode })
    }

    /// The grammar this artifact was compiled from.
    #[must_use]
    pub fn vpg(&self) -> &Vpg {
        &self.vpg
    }

    /// The compiled tokenizer's pair definitions (single-character literal
    /// pairs in character mode).
    #[must_use]
    pub fn tokenizer(&self) -> &PartialTokenizer {
        &self.tokenizer
    }

    /// The discovery mode the grammar was learned in: decides whether
    /// [`CompiledGrammar::recognize`] tokenizes raw input first.
    #[must_use]
    pub fn mode(&self) -> TokenDiscovery {
        self.mode
    }

    /// Number of interned item-set states of the derivative automaton.
    #[must_use]
    pub fn automaton_states(&self) -> usize {
        self.auto.accepting.len()
    }

    /// Number of interned stack symbols of the derivative automaton.
    #[must_use]
    pub fn stack_symbols(&self) -> usize {
        self.auto.n_syms
    }

    /// The artifact's [`GrammarStats`] card: automaton geometry, grammar
    /// size, and versioned identity (the artifact fingerprint, so two cards
    /// with equal `artifact_hash` describe byte-identical persisted
    /// artifacts).
    #[must_use]
    pub fn stats(&self) -> GrammarStats {
        GrammarStats {
            automaton_states: self.auto.accepting.len() as u64,
            stack_symbols: self.auto.n_syms as u64,
            plain_chars: self.auto.plain_chars.len() as u64,
            call_chars: self.auto.call_chars.len() as u64,
            ret_chars: self.auto.ret_chars.len() as u64,
            plain_table_cells: self.auto.plain_trans.len() as u64,
            call_table_cells: self.auto.call_trans.len() as u64,
            ret_table_cells: self.auto.ret_trans.len() as u64,
            nonterminals: self.vpg.nonterminal_count() as u64,
            rules: self.vpg.rule_count() as u64,
            token_pairs: self.tokenizer.pairs().len() as u64,
            mode: match self.mode {
                TokenDiscovery::Characters => "characters".to_string(),
                TokenDiscovery::Tokens => "tokens".to_string(),
            },
            artifact_version: crate::ARTIFACT_VERSION,
            artifact_hash: format!("{:016x}", self.artifact_fingerprint()),
        }
    }

    /// A read-only view of the dense transition tables, for external audits
    /// (the `vstar-analyze` compiled-layer lints) without exposing the
    /// automaton's representation as API.
    #[must_use]
    pub fn table_view(&self) -> TableView<'_> {
        TableView { auto: &self.auto }
    }

    pub(crate) fn word_accepting(&self, state: u32) -> bool {
        self.auto.accepting[state as usize]
    }

    pub(crate) fn word_start(&self) -> u32 {
        self.auto.start
    }

    pub(crate) fn word_step(&self, state: &mut u32, stack: &mut Vec<u32>, ch: char) -> bool {
        self.auto.step(state, stack, ch)
    }

    /// Decides membership of a *word* over the grammar's own alphabet (the
    /// converted word in token mode, the raw string in character mode) with
    /// pure table lookups — the compiled equivalent of
    /// [`crate::VpgParser::recognize`].
    #[must_use]
    pub fn recognize_word(&self, word: &str) -> bool {
        let mut state = self.auto.start;
        let mut stack: Vec<u32> = Vec::new();
        for ch in word.chars() {
            if !self.auto.step(&mut state, &mut stack, ch) {
                return false;
            }
        }
        stack.is_empty() && self.auto.accepting[state as usize]
    }

    /// Parses a word over the grammar's own alphabet into a derivation (the
    /// compiled equivalent of [`crate::VpgParser::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the failure (word positions; the raw
    /// span is attached since word characters are raw characters here).
    pub fn parse_word(&self, word: &str) -> Result<ParseTree, ParseError> {
        self.tables
            .parse_tagged(&self.vpg.tagging().tag(word))
            .map_err(|e| attach_word_context(e, word))
    }

    /// Decides membership of a raw input string, oracle-free.
    ///
    /// In character mode this is [`CompiledGrammar::recognize_word`]. In token
    /// mode the input is tokenized by the compiled scan (see the
    /// [module docs](self)): the same left-to-right scan as the learning-time
    /// `conv_τ`, with every k-Repetition membership query replaced by
    /// table-lookup runs of the automaton itself.
    #[must_use]
    pub fn recognize(&self, s: &str) -> bool {
        // Per-call attribution only — never per character — so the
        // uninstrumented hot path stays a single atomic load away from the
        // plain table walk.
        if vstar_telemetry::enabled() {
            vstar_telemetry::counter("serve.recognitions", 1);
            vstar_telemetry::record("serve.steps_per_parse", s.chars().count() as u64);
        }
        match self.mode {
            TokenDiscovery::Characters => self.recognize_word(s),
            TokenDiscovery::Tokens => {
                let chars: Vec<char> = s.chars().collect();
                self.scan_tokens(&chars, false).takes.is_some()
            }
        }
    }

    /// Parses a raw input string into a derivation of the (converted-word)
    /// grammar, oracle-free. Tree terminals are converted-word characters: in
    /// token mode the artificial markers appear as the call/return terminals
    /// of nest steps, making the inferred nesting explicit.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the raw-input byte span attached. In
    /// character mode the error position indexes the word (= the raw string);
    /// in token mode it indexes the compiled conversion of the input, except
    /// when no tokenization survives at all — then it is the furthest *raw
    /// character* index any reading reached.
    pub fn parse(&self, s: &str) -> Result<ParseTree, ParseError> {
        if vstar_telemetry::enabled() {
            vstar_telemetry::counter("serve.parses", 1);
            vstar_telemetry::record("serve.steps_per_parse", s.chars().count() as u64);
        }
        match self.mode {
            TokenDiscovery::Characters => self.parse_word(s),
            TokenDiscovery::Tokens => {
                let chars: Vec<char> = s.chars().collect();
                let outcome = self.scan_tokens(&chars, true);
                let Some(takes) = outcome.takes else {
                    let err = if outcome.reached_end {
                        ParseError::incomplete()
                    } else {
                        ParseError::stuck(outcome.furthest)
                    };
                    return Err(err.with_raw_char_context(s, outcome.furthest));
                };
                let (converted, raw_index) = build_converted(&chars, &takes);
                let tagged: Vec<TaggedChar> = self.vpg.tagging().tag(&converted);
                self.tables.parse_tagged(&tagged).map_err(|e| {
                    let raw_char =
                        e.position().and_then(|p| raw_index.get(p).copied()).unwrap_or(chars.len());
                    e.with_raw_char_context(s, raw_char)
                })
            }
        }
    }

    /// The word the compiled conversion produces for `s` (the oracle-free
    /// counterpart of [`LearnedLanguage::convert`]), or `None` when `s` is
    /// not a member. In character mode members convert to themselves.
    #[must_use]
    pub fn converted_word(&self, s: &str) -> Option<String> {
        match self.mode {
            TokenDiscovery::Characters => self.recognize_word(s).then(|| s.to_string()),
            TokenDiscovery::Tokens => {
                let chars: Vec<char> = s.chars().collect();
                let takes = self.scan_tokens(&chars, true).takes?;
                Some(build_converted(&chars, &takes).0)
            }
        }
    }

    /// First/shortest candidate token match at `chars[pos..]`, mirroring the
    /// learning-time scanner's match rule (earlier pair wins ties, call before
    /// return within a pair, shortest match per matcher).
    fn first_match_at(&self, chars: &[char], pos: usize) -> Option<Candidate> {
        let rest = &chars[pos..];
        let mut best: Option<Candidate> = None;
        for (pair, p) in self.tokenizer.pairs().iter().enumerate() {
            for (kind, matcher) in [(TokenKind::Call, &p.call), (TokenKind::Return, &p.ret)] {
                if let Some(len) = shortest_match_len(matcher, rest) {
                    if best.is_none_or(|b| len < b.len) {
                        best = Some(Candidate { pair, kind, len });
                    }
                }
            }
        }
        best
    }

    /// The state after reading `occ` as plain text from `state`, or `None`
    /// when the run dies.
    fn run_plains(&self, mut state: u32, occ: &[char]) -> Option<u32> {
        for &c in occ {
            let code = self.auto.classify(c);
            if code >> 30 != KIND_PLAIN {
                return None;
            }
            state = self.auto.plain_step(state, code & 0x3FFF_FFFF);
            if state == DEAD {
                return None;
            }
        }
        Some(state)
    }

    /// The compiled k-Repetition predicate: the occurrence read from `state`
    /// is repeatable-in-place exactly when the automaton loops on it
    /// (`state ──occ──▶ q₁ ──occ──▶ q₁`), in which case `occᵏ` keeps the word
    /// derivable for every `k` — the word-level analog of Algorithm 5's
    /// membership check, answered by the tables alone.
    ///
    /// This is deliberately *narrower* than the oracle check it replaces: a
    /// grammar whose plain reading of `occ` loops only after a pre-period
    /// (`q₁ ──occ──▶ q₂ ──occ──▶ q₂` with `q₁ ≠ q₂`) would be denied the skip
    /// even though pumping stays in the language. Learned string-content
    /// rules loop immediately in practice; `tests/artifacts.rs` pins the
    /// resulting agreement with the oracle-backed path for all five Table-1
    /// languages.
    fn repeatable(&self, state: u32, occ: &[char]) -> bool {
        let Some(q1) = self.run_plains(state, occ) else {
            return false;
        };
        self.run_plains(q1, occ) == Some(q1)
    }

    /// The compiled conversion scan: Algorithm 5's left-to-right scan with
    /// the membership oracle materialized into the tables. At a candidate
    /// occurrence the scan explores
    ///
    /// * a **take** branch — the occurrence is a token; its marker and
    ///   characters run through the automaton and the branch dies if they
    ///   cannot (a token the grammar has no use for here is no token), and
    /// * a **skip** branch — the occurrence is plain text — but *only* when
    ///   the occurrence is loop-repeatable ([`CompiledGrammar::repeatable`],
    ///   the materialized k-Repetition predicate; e.g. a `{` inside a learned
    ///   string literal). Ungated skips would wander into word-space the
    ///   learner never constrained.
    ///
    /// Positions without a candidate advance one plain character. Branches
    /// are deduplicated on `(position, state, stack)` with hash-consed
    /// stacks; the input is a member iff some branch consumes it into an
    /// accepting configuration. The oracle-backed conversion corresponds to
    /// one decision sequence per position, so whenever its decisions are
    /// take-executable/loop-repeatable here, that run is among the explored
    /// branches.
    fn scan_tokens(&self, chars: &[char], want_trace: bool) -> ScanOutcome {
        let auto = &self.auto;
        // Candidate matches depend only on the input — compute them once.
        let matches: Vec<Option<Candidate>> =
            (0..chars.len()).map(|i| self.first_match_at(chars, i)).collect();

        // Hash-consed stacks: id 0 is the empty stack; node ids are offset by
        // one into `nodes`.
        let mut nodes: Vec<(u32, u32)> = Vec::new();
        let mut node_ix: HashMap<(u32, u32), u32> = HashMap::new();
        // Take-decision traces for parse: (parent, position, candidate).
        let mut traces: Vec<(u32, u32, Candidate)> = Vec::new();

        let mut frontier: BTreeMap<usize, Vec<(u32, u32, u32)>> = BTreeMap::new();
        let mut visited: HashSet<(usize, u32, u32)> = HashSet::new();
        let mut budget = MAX_SCAN_CONFIGS;
        let mut furthest = 0usize;
        let mut reached_end = false;

        let enqueue = |frontier: &mut BTreeMap<usize, Vec<(u32, u32, u32)>>,
                       visited: &mut HashSet<(usize, u32, u32)>,
                       budget: &mut usize,
                       pos: usize,
                       state: u32,
                       stack: u32,
                       trace: u32| {
            if *budget == 0 || !visited.insert((pos, state, stack)) {
                return;
            }
            *budget -= 1;
            frontier.entry(pos).or_default().push((state, stack, trace));
        };
        enqueue(&mut frontier, &mut visited, &mut budget, 0, auto.start, 0, 0);

        while let Some((pos, bucket)) = frontier.pop_first() {
            furthest = furthest.max(pos);
            for (state, stack, trace) in bucket {
                if pos == chars.len() {
                    if stack == 0 && auto.accepting[state as usize] {
                        return ScanOutcome {
                            takes: Some(unwind_trace(&traces, trace)),
                            furthest: pos,
                            reached_end: true,
                        };
                    }
                    reached_end = true;
                    continue;
                }

                let cand = matches[pos];
                // Plain/skip branch: the character at `pos` is plain text —
                // always available where nothing matches, gated by the
                // materialized k-Repetition predicate where something does.
                let skip_allowed = match cand {
                    None => true,
                    Some(c) => self.repeatable(state, &chars[pos..pos + c.len]),
                };
                if skip_allowed {
                    let code = auto.classify(chars[pos]);
                    if code >> 30 == KIND_PLAIN {
                        let s2 = auto.plain_step(state, code & 0x3FFF_FFFF);
                        if s2 != DEAD {
                            enqueue(
                                &mut frontier,
                                &mut visited,
                                &mut budget,
                                pos + 1,
                                s2,
                                stack,
                                trace,
                            );
                        }
                    }
                }

                // Take branch: the candidate occurrence is a real token.
                let Some(cand) = cand else {
                    continue;
                };
                let marker = match cand.kind {
                    TokenKind::Call => call_marker(cand.pair),
                    TokenKind::Return => return_marker(cand.pair),
                };
                let mcode = auto.classify(marker);
                let (mut s2, mut stack2) = (state, stack);
                let mut alive = match cand.kind {
                    TokenKind::Call => {
                        if mcode >> 30 != KIND_CALL {
                            false
                        } else {
                            let (body, sym) = auto.call_step(s2, mcode & 0x3FFF_FFFF);
                            if body == DEAD {
                                false
                            } else {
                                stack2 = *node_ix.entry((stack2, sym)).or_insert_with(|| {
                                    nodes.push((stack, sym));
                                    nodes.len() as u32
                                });
                                s2 = body;
                                true
                            }
                        }
                    }
                    TokenKind::Return => true,
                };
                if alive {
                    // The occurrence's characters are the token's plain text.
                    match self.run_plains(s2, &chars[pos..pos + cand.len]) {
                        Some(q) => s2 = q,
                        None => alive = false,
                    }
                }
                if alive && cand.kind == TokenKind::Return {
                    alive = if mcode >> 30 != KIND_RETURN || stack2 == 0 {
                        false
                    } else {
                        let (below, sym) = nodes[stack2 as usize - 1];
                        s2 = auto.ret_step(s2, sym, mcode & 0x3FFF_FFFF);
                        stack2 = below;
                        s2 != DEAD
                    };
                }
                if alive {
                    let trace2 = if want_trace {
                        traces.push((trace, pos as u32, cand));
                        traces.len() as u32
                    } else {
                        0
                    };
                    enqueue(
                        &mut frontier,
                        &mut visited,
                        &mut budget,
                        pos + cand.len,
                        s2,
                        stack2,
                        trace2,
                    );
                }
            }
        }
        ScanOutcome { takes: None, furthest, reached_end }
    }
}

/// Walks a trace chain back to the root, returning `(position, candidate)`
/// take-decisions in input order.
fn unwind_trace(traces: &[(u32, u32, Candidate)], mut id: u32) -> Vec<(usize, Candidate)> {
    let mut takes = Vec::new();
    while id != 0 {
        let (parent, pos, cand) = traces[id as usize - 1];
        takes.push((pos as usize, cand));
        id = parent;
    }
    takes.reverse();
    takes
}

/// Rebuilds the converted word from the take-decisions of an accepting
/// branch, mirroring `conv_τ`'s marker placement: call markers before the
/// occurrence, return markers after it. The second component maps each
/// converted-word character back to a raw character index.
fn build_converted(chars: &[char], takes: &[(usize, Candidate)]) -> (String, Vec<usize>) {
    let mut out = String::new();
    let mut raw_index = Vec::new();
    let mut take_iter = takes.iter().peekable();
    let mut i = 0usize;
    while i < chars.len() {
        match take_iter.peek() {
            Some(&&(pos, cand)) if pos == i => {
                take_iter.next();
                if cand.kind == TokenKind::Call {
                    out.push(call_marker(cand.pair));
                    raw_index.push(i);
                }
                for &c in &chars[i..i + cand.len] {
                    out.push(c);
                    raw_index.push(i);
                }
                if cand.kind == TokenKind::Return {
                    out.push(return_marker(cand.pair));
                    raw_index.push(i + cand.len - 1);
                }
                i += cand.len;
            }
            _ => {
                out.push(chars[i]);
                raw_index.push(i);
                i += 1;
            }
        }
    }
    (out, raw_index)
}

/// Length (in characters) of the shortest non-empty prefix of `rest` matched
/// by `matcher` — the char-slice equivalent of
/// `TokenMatcher::prefix_match_lengths(..).first()`.
fn shortest_match_len(matcher: &TokenMatcher, rest: &[char]) -> Option<usize> {
    match matcher {
        TokenMatcher::Literal(lit) => {
            let mut n = 0usize;
            let mut it = rest.iter();
            for lc in lit.chars() {
                if it.next() != Some(&lc) {
                    return None;
                }
                n += 1;
            }
            (n > 0).then_some(n)
        }
        TokenMatcher::Dfa(dfa) => {
            let mut state = dfa.initial();
            for (i, &c) in rest.iter().enumerate() {
                state = dfa.delta(state, c)?;
                if dfa.accepting().contains(&state) {
                    return Some(i + 1);
                }
            }
            None
        }
    }
}

/// Attaches raw-input context to a word-level error where word characters are
/// raw characters (character mode and [`CompiledGrammar::parse_word`]).
fn attach_word_context(e: ParseError, word: &str) -> ParseError {
    let pos = e.position().unwrap_or_else(|| word.chars().count());
    e.with_raw_char_context(word, pos)
}

/// Compiling a learned language into its serving artifact.
///
/// This is the `compile()` entry point the serving workflow starts from; it
/// is a trait (rather than an inherent method on [`LearnedLanguage`]) because
/// the artifact lives downstream of the learner crate.
///
/// ```no_run
/// use vstar::{Mat, VStar, VStarConfig};
/// use vstar_parser::CompileLearned;
///
/// let oracle = |s: &str| !s.is_empty();
/// let mat = Mat::new(&oracle);
/// let result = VStar::new(VStarConfig::default())
///     .learn(&mat, &['a'], &["a".to_string()])
///     .unwrap();
/// let compiled = result.as_learned_language().compile().unwrap();
/// drop((mat, result)); // the artifact outlives the whole learning stack
/// assert!(compiled.recognize("a"));
/// ```
pub trait CompileLearned {
    /// Compiles the learned artifacts into an owned, oracle-free
    /// [`CompiledGrammar`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::AutomatonTooLarge`] when the reachable
    /// item-set automaton exceeds the state budget.
    fn compile(&self) -> Result<CompiledGrammar, CompileError>;
}

impl CompileLearned for LearnedLanguage {
    fn compile(&self) -> Result<CompiledGrammar, CompileError> {
        CompiledGrammar::from_learned(self)
    }
}

impl CompileLearned for VStarResult {
    fn compile(&self) -> Result<CompiledGrammar, CompileError> {
        CompiledGrammar::from_learned(&self.as_learned_language())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar::tokenizer::{call_marker, return_marker};
    use vstar::{Mat, VStar, VStarConfig};
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::{Tagging, VpgBuilder};

    use crate::VpgParser;

    #[test]
    fn figure1_compiled_agrees_with_uncompiled_exhaustively() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let parser = VpgParser::new(&g);
        let terminals: Vec<char> = g.terminals().into_iter().collect();
        for w in vstar_vpl::words::all_strings(&terminals, 6) {
            assert_eq!(compiled.recognize(&w), parser.recognize(&w), "mismatch on {w:?}");
            assert_eq!(compiled.recognize_word(&w), parser.recognize(&w), "word on {w:?}");
            match (compiled.parse(&w), parser.parse(&w)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "trees differ on {w:?}"),
                (Err(a), Err(b)) => {
                    assert_eq!(a.kind(), b.kind(), "error kinds differ on {w:?}");
                    assert_eq!(a.position(), b.position(), "positions differ on {w:?}");
                }
                (a, b) => panic!("parse verdicts differ on {w:?}: {a:?} vs {b:?}"),
            }
        }
        assert!(compiled.automaton_states() > 0);
    }

    #[test]
    fn unknown_characters_reject() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        assert!(!compiled.recognize("agc?dhb"));
        assert!(!compiled.recognize("μ"));
        let e = compiled.parse("cμ").unwrap_err();
        assert!(e.raw_span().is_some());
    }

    #[test]
    fn deep_nesting_runs_iteratively() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.match_rule(s, '(', s, ')', s);
        b.empty_rule(s);
        b.linear_rule(s, 'x', s);
        let g = b.build(s).unwrap();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let deep = 100_000usize;
        let w = format!("{}x{}", "(".repeat(deep), ")".repeat(deep));
        assert!(compiled.recognize(&w));
        assert!(!compiled.recognize(&w[..w.len() - 1]));
        let tree = compiled.parse(&w).unwrap();
        assert_eq!(tree.depth(), deep);
    }

    #[test]
    fn compiled_errors_carry_raw_spans() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let e = compiled.parse("cx").unwrap_err();
        assert_eq!(e.position(), Some(1));
        assert_eq!(e.raw_span(), Some((1, 2)));
        assert_eq!(e.fragment(), Some("x"));
        assert!(e.to_string().contains("near \"x\""), "{e}");
    }

    /// The paper's §5.1 k-Repetition example, oracle-free: `{` is a call
    /// token, yet its occurrence inside a string literal is plain text. The
    /// grammar below derives exactly `⊳{ " {* " : t } ⊲` — the compiled scan
    /// must skip the inner brace (the string-content rules loop on it, so the
    /// materialized k-Repetition predicate fires) where a greedy tokenizer
    /// would die, without issuing a single membership query.
    #[test]
    fn compiled_scan_resolves_tokens_inside_strings() {
        let call = call_marker(0);
        let ret = return_marker(0);
        let tagging = Tagging::from_pairs([(call, ret)]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let body = b.nonterminal("B");
        let key = b.nonterminal("K");
        let key_rest = b.nonterminal("KR");
        let colon = b.nonterminal("C");
        let val = b.nonterminal("V");
        let close = b.nonterminal("Z");
        let end = b.nonterminal("E");
        b.match_rule(s, call, body, ret, end);
        b.linear_rule(body, '{', key);
        b.linear_rule(key, '"', key_rest);
        b.linear_rule(key_rest, '{', key_rest);
        b.linear_rule(key_rest, '"', colon);
        b.linear_rule(colon, ':', val);
        b.linear_rule(val, 't', close);
        b.linear_rule(close, '}', end);
        b.empty_rule(end);
        let g = b.build(s).unwrap();

        let mut tokenizer = PartialTokenizer::new();
        tokenizer.push_pair(vstar::TokenPair {
            call: TokenMatcher::Literal("{".to_string()),
            ret: TokenMatcher::Literal("}".to_string()),
        });
        let compiled = CompiledGrammar::assemble(
            g,
            tokenizer,
            TokenDiscovery::Tokens,
            CompileOptions::default(),
        )
        .unwrap();

        // The inner `{` occurrences must be skipped, the outer pair taken.
        for member in ["{\"\":t}", "{\"{\":t}", "{\"{{{\":t}"] {
            assert!(compiled.recognize(member), "rejected member {member:?}");
            let converted = compiled.converted_word(member).unwrap();
            assert!(converted.starts_with(call));
            assert!(converted.ends_with(ret));
            let tree = compiled.parse(member).unwrap();
            assert_eq!(tree.yielded(), converted);
            assert!(tree.validate(compiled.vpg()));
        }
        for non_member in ["{\"{\":t", "\"{\":t}", "{{\"\":t}", "{\"\":t}}"] {
            assert!(!compiled.recognize(non_member), "accepted {non_member:?}");
            let e = compiled.parse(non_member).unwrap_err();
            assert!(e.raw_span().is_some(), "{non_member:?}: {e:?}");
        }
    }

    #[test]
    fn compiled_learned_dyck_agrees_with_oracle_path() {
        let dyck = |s: &str| {
            let mut depth = 0i64;
            for c in s.chars() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                    'x' => {}
                    _ => return false,
                }
            }
            depth == 0
        };
        let mat = Mat::new(&dyck);
        let result = VStar::new(VStarConfig::default())
            .learn(&mat, &['(', ')', 'x'], &["(x(x))x".to_string(), "()".to_string()])
            .unwrap();
        let learned = result.as_learned_language();
        let compiled = learned.compile().unwrap();
        assert_eq!(compiled.mode(), TokenDiscovery::Tokens);
        let mut extra = 0usize;
        for w in vstar_vpl::words::all_strings(&['(', ')', 'x'], 6) {
            let oracle_path = learned.accepts(&mat, &w);
            let compiled_verdict = compiled.recognize(&w);
            // The compiled scan explores every oracle decision sequence whose
            // takes execute and whose skips loop, so it accepts a superset of
            // the oracle-backed path; the few extra acceptances mirror
            // off-image words the learned VPA itself (wrongly) accepts, e.g.
            // ⊳(()⊲ for "(()" — a hypothesis imperfection the equivalence
            // pool never probed, not a compilation artifact.
            if oracle_path {
                assert!(compiled_verdict, "compiled rejects oracle-path member {w:?}");
                let converted = compiled.converted_word(&w).unwrap();
                assert_eq!(learned.strip(&converted), w);
                let tree = compiled.parse(&w).unwrap();
                assert!(tree.validate(compiled.vpg()));
            } else if compiled_verdict {
                let converted = compiled.converted_word(&w).unwrap();
                assert!(
                    learned.vpg().accepts(&converted),
                    "compiled accepted {w:?} without a grammar-backed conversion"
                );
                extra += 1;
            }
        }
        // Every extra acceptance above was proven grammar-backed; the
        // over-acceptance stays a small fraction of the probed words (~8% for
        // this deliberately small learning configuration — the Table-1
        // grammars show none, see tests/artifacts.rs) and the canonical junk
        // shapes die.
        assert!(extra * 4 < 1093, "compiled over-accepts {extra} of 1093 words");
        assert!(!compiled.recognize("))"));
        assert!(!compiled.recognize(")("));
        assert!(compiled.recognize("()"));
        assert!(compiled.recognize("(x(x))x"));
        // compile() also works straight off the pipeline result.
        let again = result.compile().unwrap();
        assert_eq!(again.automaton_states(), compiled.automaton_states());
    }

    #[test]
    fn stats_card_matches_tables_and_fingerprint() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let stats = compiled.stats();
        let view = compiled.table_view();
        assert_eq!(stats.automaton_states, view.state_count() as u64);
        assert_eq!(stats.stack_symbols, view.stack_symbol_count() as u64);
        assert_eq!(stats.plain_table_cells, view.plain_table().len() as u64);
        assert_eq!(stats.call_table_cells, view.call_table().len() as u64);
        assert_eq!(stats.ret_table_cells, view.ret_table().len() as u64);
        assert_eq!(stats.plain_table_cells, stats.automaton_states * stats.plain_chars);
        assert_eq!(
            stats.ret_table_cells,
            stats.automaton_states * stats.stack_symbols * stats.ret_chars
        );
        assert_eq!(stats.nonterminals, g.nonterminal_count() as u64);
        assert_eq!(stats.rules, g.rule_count() as u64);
        assert_eq!(stats.mode, "characters");
        assert_eq!(stats.artifact_version, crate::ARTIFACT_VERSION);
        assert_eq!(stats.artifact_hash, format!("{:016x}", compiled.artifact_fingerprint()));
        assert_eq!(stats.artifact_hash.len(), 16);
        // The fingerprint is stable across serialization round trips and
        // across clones, and distinguishes different grammars.
        let reloaded = CompiledGrammar::from_json(&compiled.to_json()).unwrap();
        assert_eq!(reloaded.stats(), stats);
        let other = {
            let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
            let mut b = VpgBuilder::new(tagging);
            let s = b.nonterminal("S");
            b.match_rule(s, '(', s, ')', s);
            b.empty_rule(s);
            CompiledGrammar::from_vpg(&b.build(s).unwrap()).unwrap()
        };
        assert_ne!(other.stats().artifact_hash, stats.artifact_hash);
    }

    #[test]
    fn state_budget_is_enforced() {
        let g = figure1_grammar();
        let err = CompiledGrammar::from_vpg_with(&g, CompileOptions { max_states: 1 }).unwrap_err();
        assert!(matches!(err, CompileError::AutomatonTooLarge { limit: 1, .. }));
        assert!(err.to_string().contains("state budget"));
    }

    #[test]
    fn empty_tokenizer_degenerates_to_plain_scan() {
        // A regular language learned with zero token pairs: the scan has no
        // decision points and must behave like a plain DFA run.
        let tagging = Tagging::new();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let odd = b.nonterminal("O");
        b.linear_rule(s, 'a', odd);
        b.linear_rule(odd, 'a', s);
        b.empty_rule(s);
        let g = b.build(s).unwrap();
        let compiled = CompiledGrammar::assemble(
            g,
            PartialTokenizer::new(),
            TokenDiscovery::Tokens,
            CompileOptions::default(),
        )
        .unwrap();
        assert!(compiled.recognize(""));
        assert!(!compiled.recognize("a"));
        assert!(compiled.recognize("aa"));
        assert!(!compiled.recognize("ab"));
    }
}
