//! Executing learned visibly pushdown grammars: recognition, parsing, sampling.
//!
//! The V-Star pipeline ([`vstar::VStar::learn`]) ends with an extracted
//! [`vstar_vpl::Vpg`]. This crate makes that artifact *usable* the way the
//! paper intends its output to be used, following the same authors'
//! derivative-based parsing line of work ("A Derivative-based Parser Generator
//! for Visibly Pushdown Grammars", Jia, Kumar & Tan, OOPSLA 2021):
//!
//! * [`VpgParser`] — a derivative-style recognizer and parser. Recognition and
//!   parsing are linear in the input length (grammar fixed), with no
//!   backtracking; parsing produces a [`ParseTree`] whose call/return nesting
//!   is explicit ([`ParseStep::Nest`]).
//! * [`GrammarSampler`] — a budget-aware, seeded random sentence generator.
//!   Every sample carries a derivation ([`GrammarSampler::sample_tree`]), so
//!   samples are members by construction; the evaluation harness builds its
//!   precision datasets with it, and it is the substrate for grammar-directed
//!   fuzzing.
//! * [`LearnedParser`] — raw-`&str` parsing for a learned language: converts
//!   input with the learned tokenizer (`conv_τ`) and parses the converted word
//!   with the learned grammar.
//! * [`CompiledGrammar`] — the owned, serializable, **oracle-free serving
//!   artifact** ([`compiled`]/[`artifact`]/[`serve`] modules): item-set
//!   transitions precompiled into lookup tables, the tokenizer's k-Repetition
//!   decisions materialized into the same tables, versioned `save`/`load`,
//!   streaming [`Session`]s and scoped-thread batch serving. Obtained from a
//!   learned language via [`CompileLearned::compile`].
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use vstar_parser::{GrammarSampler, VpgParser};
//! use vstar_vpl::grammar::figure1_grammar;
//!
//! let grammar = figure1_grammar();
//! let parser = VpgParser::new(&grammar);
//!
//! // Parse the paper's seed string; the tree yields it back.
//! let tree = parser.parse("agcdcdhbcd").unwrap();
//! assert_eq!(tree.yielded(), "agcdcdhbcd");
//! assert_eq!(tree.depth(), 2);
//! assert!(tree.validate(&grammar));
//!
//! // Sample → parse → accept: sampler output is always recognizable.
//! let sampler = GrammarSampler::new(&grammar);
//! let mut rng = StdRng::seed_from_u64(1);
//! let sentence = sampler.sample(&mut rng, 24).unwrap();
//! assert!(parser.recognize(&sentence));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod compiled;
mod error;
pub mod learned;
pub mod recognizer;
pub mod sampler;
pub mod serve;
pub mod tree;

pub use artifact::{ArtifactError, ARTIFACT_VERSION, MAX_MATCHER_STATES};
pub use compiled::{
    CompileError, CompileLearned, CompileOptions, CompiledGrammar, GrammarStats, TableView,
};
pub use error::{ParseError, ParseErrorKind};
pub use learned::LearnedParser;
pub use recognizer::VpgParser;
pub use sampler::GrammarSampler;
pub use serve::{Session, SessionState};
pub use tree::{NestPath, NestSummary, ParseStep, ParseTree};
