//! Budget-aware random sentence generation from a [`Vpg`].
//!
//! This is the generator the evaluation harness uses to build precision
//! datasets (GLADE/ARVADA-style evaluations sample from the *learned* grammar
//! and ask the oracle), and the substrate for grammar-directed fuzzing: every
//! sample comes with its derivation ([`GrammarSampler::sample_tree`]), so the
//! sampled string is a member of the grammar's language *by construction*.
//!
//! Sampling walks the grammar top-down. While the remaining budget fits at
//! least one alternative's shortest completion, an alternative is drawn
//! uniformly among the fitting ones; once the budget is exhausted the sampler
//! greedily takes the cheapest completion, which guarantees termination for
//! every productive start nonterminal.

use rand::Rng;

use vstar_vpl::{NonterminalId, RuleRhs, Vpg};

use crate::tree::{ParseStep, ParseTree};

/// A random sentence/derivation generator for one [`Vpg`].
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use vstar_parser::{GrammarSampler, VpgParser};
/// use vstar_vpl::grammar::figure1_grammar;
///
/// let grammar = figure1_grammar();
/// let sampler = GrammarSampler::new(&grammar);
/// let parser = VpgParser::new(&grammar);
/// let mut rng = StdRng::seed_from_u64(42);
/// let s = sampler.sample(&mut rng, 24).unwrap();
/// assert!(parser.recognize(&s));
/// ```
#[derive(Clone, Debug)]
pub struct GrammarSampler<'g> {
    vpg: &'g Vpg,
    /// Shortest derivable length per nonterminal (`None` = unproductive).
    min: Vec<Option<usize>>,
    /// Shortest yield per alternative, aligned with `Vpg::alternatives`.
    alt_min: Vec<Vec<Option<usize>>>,
}

impl<'g> GrammarSampler<'g> {
    /// Builds a sampler over `vpg`, precomputing shortest completions.
    #[must_use]
    pub fn new(vpg: &'g Vpg) -> Self {
        let min = vpg.min_lengths();
        let alt_min = (0..vpg.nonterminal_count())
            .map(|i| {
                vpg.alternatives(NonterminalId(i))
                    .iter()
                    .map(|&rhs| match rhs {
                        RuleRhs::Empty => Some(0),
                        RuleRhs::Linear { next, .. } => min[next.0].map(|m| m + 1),
                        RuleRhs::Match { inner, next, .. } => match (min[inner.0], min[next.0]) {
                            (Some(a), Some(b)) => Some(a + b + 2),
                            _ => None,
                        },
                    })
                    .collect()
            })
            .collect();
        GrammarSampler { vpg, min, alt_min }
    }

    /// The grammar this sampler draws from.
    #[must_use]
    pub fn vpg(&self) -> &'g Vpg {
        self.vpg
    }

    /// Returns `true` if the start nonterminal derives at least one string.
    #[must_use]
    pub fn is_productive(&self) -> bool {
        self.min[self.vpg.start().0].is_some()
    }

    /// Samples one sentence. `budget` loosely bounds the sentence length: the
    /// expansion stops fitting new material once the budget is spent and
    /// finishes with shortest completions.
    ///
    /// Returns `None` if the start nonterminal is unproductive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, budget: usize) -> Option<String> {
        self.sample_tree(rng, budget).map(|t| t.yielded())
    }

    /// Samples one derivation tree (the sampled sentence is its yield, which is
    /// a member of the language by construction).
    ///
    /// Returns `None` if the start nonterminal is unproductive.
    pub fn sample_tree<R: Rng + ?Sized>(&self, rng: &mut R, budget: usize) -> Option<ParseTree> {
        self.min[self.vpg.start().0]?;
        Some(self.expand(self.vpg.start(), rng, budget).0)
    }

    /// Samples one derivation of an arbitrary nonterminal — the regrow/splice
    /// primitive of tree-level fuzzing: the returned level can replace any nest
    /// body rooted at `nt` (see `ParseTree::replace_nest_inner` in this crate).
    ///
    /// Returns `None` if `nt` is unproductive or not part of the grammar.
    pub fn sample_tree_from<R: Rng + ?Sized>(
        &self,
        nt: NonterminalId,
        rng: &mut R,
        budget: usize,
    ) -> Option<ParseTree> {
        self.min.get(nt.0).copied().flatten()?;
        Some(self.expand(nt, rng, budget).0)
    }

    /// Samples derivation trees until one satisfies `keep`, drawing at most
    /// `max_attempts` times. Returns `None` when the start nonterminal is
    /// unproductive or no draw passed the filter.
    ///
    /// This is the fixed-point-aware generation hook for token-mode fuzzing:
    /// a derivation of the *converted* grammar corresponds to a real raw
    /// string only when its yield is a fixed point of `conv ∘ strip`, so
    /// campaigns pass that check as `keep` and skip unreachable words instead
    /// of burning iterations classifying them.
    pub fn sample_tree_where<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        budget: usize,
        max_attempts: usize,
        keep: impl Fn(&ParseTree) -> bool,
    ) -> Option<ParseTree> {
        self.min[self.vpg.start().0]?;
        (0..max_attempts).find_map(|_| {
            let tree = self.expand(self.vpg.start(), rng, budget).0;
            keep(&tree).then_some(tree)
        })
    }

    /// Samples `count` sentences (duplicates possible); unproductive grammars
    /// yield an empty vector.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        budget: usize,
        count: usize,
    ) -> Vec<String> {
        (0..count).filter_map(|_| self.sample(rng, budget)).collect()
    }

    /// Samples up to `count` *distinct* sentences, drawing at most
    /// `max_attempts` times. Useful for precision datasets over small languages
    /// where plain sampling would be dominated by duplicates.
    pub fn sample_unique<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        budget: usize,
        count: usize,
        max_attempts: usize,
    ) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::with_capacity(count);
        for _ in 0..max_attempts {
            if out.len() >= count {
                break;
            }
            let Some(s) = self.sample(rng, budget) else {
                break;
            };
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }

    /// Expands `nt`, returning the level's derivation and the leftover budget.
    fn expand<R: Rng + ?Sized>(
        &self,
        nt: NonterminalId,
        rng: &mut R,
        mut budget: usize,
    ) -> (ParseTree, usize) {
        let mut steps: Vec<ParseStep> = Vec::new();
        let mut cur = nt;
        loop {
            let rhs = self.choose(cur, rng, budget);
            match rhs {
                RuleRhs::Empty => {
                    return (ParseTree::new(nt, steps, cur), budget);
                }
                RuleRhs::Linear { plain, next } => {
                    steps.push(ParseStep::Plain { lhs: cur, plain });
                    budget = budget.saturating_sub(1);
                    cur = next;
                }
                RuleRhs::Match { call, inner, ret, next } => {
                    let (inner_tree, rest) = self.expand(inner, rng, budget.saturating_sub(2));
                    steps.push(ParseStep::Nest { lhs: cur, call, inner: inner_tree, ret });
                    budget = rest;
                    cur = next;
                }
            }
        }
    }

    /// Chooses an alternative of `cur`: uniform among the productive
    /// alternatives whose shortest completion fits the budget, or the overall
    /// cheapest when nothing fits (which shrinks the remaining work and thus
    /// terminates).
    fn choose<R: Rng + ?Sized>(&self, cur: NonterminalId, rng: &mut R, budget: usize) -> RuleRhs {
        let alts = self.vpg.alternatives(cur);
        let costs = &self.alt_min[cur.0];
        let fitting: Vec<usize> =
            (0..alts.len()).filter(|&i| costs[i].is_some_and(|m| m <= budget)).collect();
        if fitting.is_empty() {
            let cheapest = (0..alts.len())
                .filter(|&i| costs[i].is_some())
                .min_by_key(|&i| costs[i])
                .expect("expand only reaches productive nonterminals");
            alts[cheapest]
        } else {
            alts[fitting[rng.gen_range(0..fitting.len())]]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizer::VpgParser;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::{Tagging, VpgBuilder};

    #[test]
    fn samples_are_members_with_valid_trees() {
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let parser = VpgParser::new(&g);
        assert!(sampler.is_productive());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let tree = sampler.sample_tree(&mut rng, 30).unwrap();
            assert!(tree.validate(&g));
            let s = tree.yielded();
            assert!(parser.recognize(&s), "sample {s:?} must be a member");
            assert!(g.accepts(&s), "vpl reference agrees on {s:?}");
        }
    }

    #[test]
    fn budget_bounds_are_soft_but_effective() {
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        // Minimum completions may overshoot a tiny budget, but not by much: the
        // deepest overshoot for figure 1 is bounded by the largest alternative
        // minimum (4 for `L → ‹a A b› L`).
        for budget in [0usize, 4, 12, 40] {
            for _ in 0..50 {
                let s = sampler.sample(&mut rng, budget).unwrap();
                assert!(
                    s.chars().count() <= budget + 6,
                    "budget {budget} produced {} chars: {s:?}",
                    s.chars().count()
                );
            }
        }
    }

    #[test]
    fn sample_tree_from_any_nonterminal() {
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        // Every productive nonterminal yields a tree rooted at itself whose
        // level is grammar-valid when wrapped where that nonterminal appears;
        // check root and per-level rule licensing via a one-level validate
        // against a tree grafted into a full derivation where possible.
        for i in 0..g.nonterminal_count() {
            let nt = NonterminalId(i);
            let t = sampler.sample_tree_from(nt, &mut rng, 12).expect("figure-1 is productive");
            assert_eq!(t.root(), nt);
        }
        // Out-of-range nonterminals are rejected, not a panic.
        assert!(sampler.sample_tree_from(NonterminalId(99), &mut rng, 12).is_none());
        // Sampling from the start nonterminal is the ordinary sample_tree.
        let t = sampler.sample_tree_from(g.start(), &mut rng, 20).unwrap();
        assert!(t.validate(&g));
    }

    #[test]
    fn sample_tree_where_filters_draws() {
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(21);
        // A satisfiable filter returns a tree that satisfies it.
        let t = sampler
            .sample_tree_where(&mut rng, 12, 50, |t| t.yielded().starts_with('c'))
            .expect("'cd…' sentences are common at this budget");
        assert!(t.yielded().starts_with('c'));
        assert!(t.validate(&g));
        // An unsatisfiable filter exhausts the attempts and returns None.
        assert!(sampler.sample_tree_where(&mut rng, 12, 20, |_| false).is_none());
    }

    #[test]
    fn sample_many_and_unique() {
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampler.sample_many(&mut rng, 20, 25).len(), 25);
        let unique = sampler.sample_unique(&mut rng, 20, 10, 500);
        let set: std::collections::BTreeSet<_> = unique.iter().collect();
        assert_eq!(set.len(), unique.len(), "sample_unique must not repeat");
        assert!(!unique.is_empty());
    }

    #[test]
    fn unproductive_start_yields_nothing() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        // S only refers to itself through a linear rule: unproductive.
        b.linear_rule(s, 'x', s);
        let g = b.build(s).unwrap();
        let sampler = GrammarSampler::new(&g);
        assert!(!sampler.is_productive());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sampler.sample(&mut rng, 10), None);
        assert!(sampler.sample_tree_where(&mut rng, 10, 5, |_| true).is_none());
        assert!(sampler.sample_many(&mut rng, 10, 5).is_empty());
        assert!(sampler.sample_unique(&mut rng, 10, 5, 50).is_empty());
    }

    #[test]
    fn small_budget_support_is_the_short_members() {
        // On a small budget every sample is a short member, and repeated draws
        // cover the very likely short strings (a smoke check that the sampler
        // explores alternatives instead of collapsing to one completion).
        let g = figure1_grammar();
        let sampler = GrammarSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(99);
        let support: std::collections::BTreeSet<String> =
            sampler.sample_many(&mut rng, 6, 400).into_iter().collect();
        let members: std::collections::BTreeSet<String> = g.enumerate(12).into_iter().collect();
        for s in &support {
            assert!(members.contains(s), "sample {s:?} is not a short member");
        }
        for expected in ["", "cd", "aghb"] {
            assert!(support.contains(expected), "missing very likely member {expected:?}");
        }
        assert!(support.len() >= 4, "sampler collapsed to {support:?}");
    }
}
