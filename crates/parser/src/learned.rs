//! Parsing raw strings with a learned language.
//!
//! [`crate::VpgParser`] works on words over the grammar's own alphabet — in
//! token mode that is the converted alphabet Σ̃ with artificial call/return
//! markers. [`LearnedParser`] closes the loop for end users: it converts a raw
//! input with the learned tokenizer (`conv_τ`) and then recognizes/parses the
//! converted word with the learned grammar, so a grammar learned by
//! [`vstar::VStar::learn`] becomes a usable parser for plain `&str` inputs.
//!
//! Tokenization performs k-Repetition membership checks, so a [`Mat`] must be
//! supplied; in character mode the conversion is the identity and no queries
//! are issued.

use vstar::{LearnedLanguage, Mat};

use crate::error::ParseError;
use crate::recognizer::VpgParser;
use crate::tree::ParseTree;

/// A parser for raw strings of a [`LearnedLanguage`].
///
/// Parse trees are over the learned grammar, i.e. over the *converted* word in
/// token mode: the artificial marker characters appear as the call/return
/// terminals of [`crate::tree::ParseStep::Nest`] steps, making the inferred
/// nesting structure of the raw input explicit.
#[derive(Clone, Debug)]
pub struct LearnedParser<'l> {
    learned: &'l LearnedLanguage,
    parser: VpgParser<'l>,
}

impl<'l> LearnedParser<'l> {
    /// Compiles a parser for the learned grammar.
    #[must_use]
    pub fn new(learned: &'l LearnedLanguage) -> Self {
        LearnedParser { learned, parser: VpgParser::new(learned.vpg()) }
    }

    /// The underlying grammar-level parser.
    #[must_use]
    pub fn parser(&self) -> &VpgParser<'l> {
        &self.parser
    }

    /// The learned-language handle this parser runs.
    #[must_use]
    pub fn learned(&self) -> &'l LearnedLanguage {
        self.learned
    }

    /// Converts a raw string into the word the grammar reads (see
    /// [`LearnedLanguage::convert`]).
    #[must_use]
    pub fn convert(&self, mat: &Mat<'_>, s: &str) -> String {
        self.learned.convert(mat, s)
    }

    /// Decides membership of a raw string with the learned *grammar* (the
    /// derivative recognizer on the converted word). Agrees with
    /// [`LearnedLanguage::accepts`] on the well-matched languages the V-Star
    /// pipeline produces.
    #[must_use]
    pub fn accepts(&self, mat: &Mat<'_>, s: &str) -> bool {
        self.parser.recognize(&self.convert(mat, s))
    }

    /// Parses a raw string into a derivation of the learned grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] over the *converted* word when the input is
    /// not a member ([`ParseError::position`] indexes the converted word).
    /// The error also carries the byte span of the offending fragment in the
    /// *raw* input ([`ParseError::raw_span`]) — token occurrences shift and
    /// widen converted positions, so the mapping goes through the tokenizer's
    /// position-carrying conversion.
    pub fn parse(&self, mat: &Mat<'_>, s: &str) -> Result<ParseTree, ParseError> {
        match self.learned.mode() {
            // Character mode: the word is the raw string and the position map
            // the identity — parse directly, no intermediate collections.
            vstar::TokenDiscovery::Characters => self.parser.parse(s).map_err(|e| {
                let raw_char = e.position().unwrap_or_else(|| s.chars().count());
                e.with_raw_char_context(s, raw_char)
            }),
            vstar::TokenDiscovery::Tokens => {
                let with_positions = self.learned.tokenizer().convert_with_positions(mat, s);
                let converted: String = with_positions.iter().map(|&(c, _)| c).collect();
                self.parser.parse(&converted).map_err(|e| {
                    let raw_char = e
                        .position()
                        .and_then(|p| with_positions.get(p).map(|&(_, raw)| raw))
                        .unwrap_or_else(|| s.chars().count());
                    e.with_raw_char_context(s, raw_char)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar::{VStar, VStarConfig};
    use vstar_vpl::words::all_strings;

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    #[test]
    fn raw_string_round_trip_on_learned_dyck() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let result = VStar::new(VStarConfig::default())
            .learn(&mat, &['(', ')', 'x'], &["(x(x))x".to_string(), "()".to_string()])
            .expect("learning succeeds");
        let learned = result.as_learned_language();
        let parser = LearnedParser::new(&learned);

        for w in all_strings(&['(', ')', 'x'], 6) {
            let expected = dyck(&w);
            assert_eq!(parser.accepts(&mat, &w), expected, "accepts mismatch on {w:?}");
            assert_eq!(learned.accepts(&mat, &w), expected, "vpa reference on {w:?}");
            match parser.parse(&mat, &w) {
                Ok(tree) => {
                    assert!(expected, "parsed a non-member {w:?}");
                    assert!(tree.validate(learned.vpg()));
                    assert_eq!(tree.yielded(), parser.convert(&mat, &w));
                }
                Err(_) => assert!(!expected, "failed to parse member {w:?}"),
            }
        }
    }

    #[test]
    fn parse_errors_map_back_to_raw_byte_spans() {
        // Token mode with multi-character tokens: the artificial markers and
        // the 3-character `<p>` token shift converted-word positions well away
        // from raw positions, so the error must carry the raw byte span.
        let lang = vstar_oracles::ToyXml::new();
        let oracle = |s: &str| vstar_oracles::Language::accepts(&lang, s);
        let mat = Mat::new(&oracle);
        let result = VStar::new(VStarConfig::default())
            .learn(
                &mat,
                &vstar_oracles::Language::alphabet(&lang),
                &vstar_oracles::Language::seeds(&lang),
            )
            .expect("toy xml learns");
        let learned = result.as_learned_language();
        let parser = LearnedParser::new(&learned);

        // Sanity: members parse.
        assert!(parser.parse(&mat, "<p>ab</p>").is_ok());

        // "<p>ab!cd</p>": '!' is nowhere in the language. Its converted-word
        // position is shifted by the call marker, but the raw byte span must
        // point exactly at the '!' (byte 5) and Display must show it.
        let err = parser.parse(&mat, "<p>ab!cd</p>").unwrap_err();
        let raw_start = err.raw_span().expect("raw span attached").0;
        assert_eq!(raw_start, 5, "{err:?}");
        assert!(err.position().unwrap() > 5, "marker must shift the word position: {err:?}");
        assert!(err.fragment().unwrap().starts_with('!'), "{err:?}");
        assert!(err.to_string().contains("raw input bytes 5..6"), "{err}");

        // An unclosed element: the span points into the raw input, not past
        // the marker-widened converted word.
        let err = parser.parse(&mat, "<p>ab").unwrap_err();
        let (start, end) = err.raw_span().expect("raw span attached");
        assert!(start <= "<p>ab".len() && end <= "<p>ab".len(), "{err:?}");
    }

    #[test]
    fn parse_trees_expose_inferred_nesting() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let result = VStar::new(VStarConfig::default())
            .learn(&mat, &['(', ')', 'x'], &["(x(x))x".to_string(), "()".to_string()])
            .unwrap();
        let learned = result.as_learned_language();
        let parser = LearnedParser::new(&learned);
        let tree = parser.parse(&mat, "((x)x)").unwrap();
        // One token pair was inferred, so the converted word nests two levels.
        assert_eq!(tree.depth(), 2);
        assert!(!tree.is_empty());
    }
}
