//! Versioned on-disk serialization of [`CompiledGrammar`] artifacts.
//!
//! The format persists what the artifact *is* — the grammar (names, rules,
//! tagging), the compiled tokenizer (literal and DFA matchers plus the
//! k-Repetition bound) and the discovery mode — as a versioned JSON document;
//! the derivative-automaton tables are a deterministic function of those and
//! are rebuilt on [`CompiledGrammar::load`], so a stale or hand-edited table
//! can never disagree with the grammar it allegedly compiles.
//!
//! Loading is total: every malformed input maps to a typed [`ArtifactError`]
//! (I/O, JSON syntax, format violations, version mismatches, compilation
//! budget), never a panic.

use std::fmt;
use std::path::Path;

use serde::Value;
use vstar::tokenizer::{TokenMatcher, TokenPair};
use vstar::{PartialTokenizer, TokenDiscovery};
use vstar_automata::Dfa;
use vstar_vpl::{NonterminalId, RuleRhs, Tagging, Vpg, VpgBuilder};

use crate::compiled::{CompileError, CompileOptions, CompiledGrammar};

/// The `format` tag every artifact document carries.
const FORMAT_TAG: &str = "vstar-compiled-grammar";

/// The on-disk format version this build writes and reads.
pub const ARTIFACT_VERSION: u64 = 1;

/// Why an artifact could not be saved or loaded.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Json(serde_json::ParseError),
    /// The document is valid JSON but not a valid artifact (wrong `format`
    /// tag, missing field, malformed rule, …).
    Format {
        /// What was wrong.
        reason: String,
    },
    /// The document is a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version found in the document.
        found: u64,
        /// The version this build supports.
        supported: u64,
    },
    /// The decoded grammar failed to recompile into an automaton.
    Compile(CompileError),
    /// Each field is well-formed but the document is internally inconsistent
    /// or exceeds a resource bound (a declared DFA size past
    /// [`MAX_MATCHER_STATES`], a tagging that does not correspond to the
    /// tokenizer it ships with).
    Integrity {
        /// What was inconsistent.
        reason: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::Format { reason } => write!(f, "malformed artifact: {reason}"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported artifact version {found} (this build reads {supported})")
            }
            ArtifactError::Compile(e) => write!(f, "artifact failed to recompile: {e}"),
            ArtifactError::Integrity { reason } => {
                write!(f, "artifact failed integrity checks: {reason}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Json(e) => Some(e),
            ArtifactError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<CompileError> for ArtifactError {
    fn from(e: CompileError) -> Self {
        ArtifactError::Compile(e)
    }
}

fn format_err(reason: impl Into<String>) -> ArtifactError {
    ArtifactError::Format { reason: reason.into() }
}

fn integrity_err(reason: impl Into<String>) -> ArtifactError {
    ArtifactError::Integrity { reason: reason.into() }
}

/// Cap on the declared state count of a serialized matcher DFA. Learned
/// matchers are tiny (tokens are short regular fragments); a document
/// declaring more states than this is hostile or corrupt, and accepting it
/// would make later re-serialization materialize the full declared range.
pub const MAX_MATCHER_STATES: usize = 1 << 16;

impl CompiledGrammar {
    /// Serializes the artifact to its versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&encode(self)).expect("artifact documents contain no NaN")
    }

    /// FNV-1a 64-bit hash of the canonical artifact document
    /// ([`CompiledGrammar::to_json`], whose rendering is byte-stable), so two
    /// artifacts fingerprint equal exactly when their persisted form is
    /// byte-identical. This is the identity the serving registry logs on hot
    /// reload and exposes per grammar.
    #[must_use]
    pub fn artifact_fingerprint(&self) -> u64 {
        fnv1a_64(self.to_json().as_bytes())
    }

    /// Deserializes an artifact from its versioned JSON document, rebuilding
    /// the automaton tables.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ArtifactError`] on malformed JSON, format
    /// violations, an unsupported `version`, or recompilation failure.
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let doc = serde_json::from_str(text).map_err(ArtifactError::Json)?;
        decode(&doc)
    }

    /// Writes the artifact to `path` (see [`CompiledGrammar::to_json`] for
    /// the format). Learn once, [`CompiledGrammar::load`] forever.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] when writing fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Reads an artifact previously written by [`CompiledGrammar::save`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`ArtifactError`] on I/O failure, malformed content,
    /// an unsupported `version`, or recompilation failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

/// FNV-1a 64-bit over `bytes` (the offset-basis/prime pair of the reference
/// implementation) — a stable, dependency-free content hash for artifact
/// identity; not collision-resistant against adversaries.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn char_value(c: char) -> Value {
    Value::Str(c.to_string())
}

fn encode_matcher(m: &TokenMatcher) -> Value {
    match m {
        TokenMatcher::Literal(lit) => {
            Value::Object(vec![("literal".into(), Value::Str(lit.clone()))])
        }
        TokenMatcher::Dfa(dfa) => {
            let mut transitions = Vec::new();
            for s in 0..dfa.state_count() {
                for &c in dfa.alphabet() {
                    if let Some(t) = dfa.delta(s, c) {
                        transitions.push(Value::Array(vec![
                            Value::Int(s as i128),
                            char_value(c),
                            Value::Int(t as i128),
                        ]));
                    }
                }
            }
            Value::Object(vec![(
                "dfa".into(),
                Value::Object(vec![
                    (
                        "alphabet".into(),
                        Value::Array(dfa.alphabet().iter().copied().map(char_value).collect()),
                    ),
                    ("states".into(), Value::Int(dfa.state_count() as i128)),
                    ("initial".into(), Value::Int(dfa.initial() as i128)),
                    (
                        "accepting".into(),
                        Value::Array(
                            dfa.accepting().iter().map(|&s| Value::Int(s as i128)).collect(),
                        ),
                    ),
                    ("transitions".into(), Value::Array(transitions)),
                ]),
            )])
        }
    }
}

fn encode(artifact: &CompiledGrammar) -> Value {
    let vpg = artifact.vpg();
    let mode = match artifact.mode() {
        TokenDiscovery::Characters => "characters",
        TokenDiscovery::Tokens => "tokens",
    };
    let tagging = Value::Array(
        vpg.tagging()
            .pairs()
            .iter()
            .map(|&(c, r)| Value::Array(vec![char_value(c), char_value(r)]))
            .collect(),
    );
    let nonterminals = Value::Array(
        (0..vpg.nonterminal_count())
            .map(|i| Value::Str(vpg.name(NonterminalId(i)).to_string()))
            .collect(),
    );
    let rules = Value::Array(
        (0..vpg.nonterminal_count())
            .map(|i| {
                Value::Array(
                    vpg.alternatives(NonterminalId(i))
                        .iter()
                        .map(|rhs| match *rhs {
                            RuleRhs::Empty => {
                                Value::Object(vec![("type".into(), Value::Str("empty".into()))])
                            }
                            RuleRhs::Linear { plain, next } => Value::Object(vec![
                                ("type".into(), Value::Str("linear".into())),
                                ("plain".into(), char_value(plain)),
                                ("next".into(), Value::Int(next.0 as i128)),
                            ]),
                            RuleRhs::Match { call, inner, ret, next } => Value::Object(vec![
                                ("type".into(), Value::Str("match".into())),
                                ("call".into(), char_value(call)),
                                ("inner".into(), Value::Int(inner.0 as i128)),
                                ("ret".into(), char_value(ret)),
                                ("next".into(), Value::Int(next.0 as i128)),
                            ]),
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let tokenizer = artifact.tokenizer();
    let pairs = Value::Array(
        tokenizer
            .pairs()
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("call".into(), encode_matcher(&p.call)),
                    ("ret".into(), encode_matcher(&p.ret)),
                ])
            })
            .collect(),
    );
    Value::Object(vec![
        ("format".into(), Value::Str(FORMAT_TAG.into())),
        ("version".into(), Value::Int(ARTIFACT_VERSION as i128)),
        ("mode".into(), Value::Str(mode.into())),
        ("tagging".into(), tagging),
        ("nonterminals".into(), nonterminals),
        ("start".into(), Value::Int(vpg.start().0 as i128)),
        ("rules".into(), rules),
        (
            "tokenizer".into(),
            Value::Object(vec![
                ("k_repetition".into(), Value::Int(tokenizer.k_repetition() as i128)),
                ("pairs".into(), pairs),
            ]),
        ),
    ])
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, ArtifactError> {
    v.get(key).ok_or_else(|| format_err(format!("missing field {key:?}")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ArtifactError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format_err(format!("field {key:?} must be a non-negative integer")))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, ArtifactError> {
    field(v, key)?.as_str().ok_or_else(|| format_err(format!("field {key:?} must be a string")))
}

fn array_field<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], ArtifactError> {
    field(v, key)?.as_array().ok_or_else(|| format_err(format!("field {key:?} must be an array")))
}

fn one_char(v: &Value, what: &str) -> Result<char, ArtifactError> {
    let s = v.as_str().ok_or_else(|| format_err(format!("{what} must be a string")))?;
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Ok(c),
        _ => Err(format_err(format!("{what} must be exactly one character, got {s:?}"))),
    }
}

fn decode_matcher(v: &Value) -> Result<TokenMatcher, ArtifactError> {
    if let Some(lit) = v.get("literal") {
        let lit = lit.as_str().ok_or_else(|| format_err("\"literal\" must be a string"))?;
        return Ok(TokenMatcher::Literal(lit.to_string()));
    }
    let Some(dfa) = v.get("dfa") else {
        return Err(format_err("matcher must have a \"literal\" or \"dfa\" field"));
    };
    let states = usize::try_from(u64_field(dfa, "states")?)
        .map_err(|_| format_err("\"states\" out of range"))?;
    if states == 0 {
        return Err(format_err("a DFA needs at least one state"));
    }
    if states > MAX_MATCHER_STATES {
        return Err(integrity_err(format!(
            "matcher DFA declares {states} states (limit {MAX_MATCHER_STATES})"
        )));
    }
    let initial = usize::try_from(u64_field(dfa, "initial")?)
        .map_err(|_| format_err("\"initial\" out of range"))?;
    if initial >= states {
        return Err(format_err("\"initial\" is not a state"));
    }
    let mut alphabet = Vec::new();
    for c in array_field(dfa, "alphabet")? {
        alphabet.push(one_char(c, "DFA alphabet entry")?);
    }
    let mut accepting = std::collections::BTreeSet::new();
    for a in array_field(dfa, "accepting")? {
        let s = a
            .as_u64()
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| format_err("accepting entry must be a state index"))?;
        if s >= states {
            return Err(format_err("accepting entry is not a state"));
        }
        accepting.insert(s);
    }
    let mut transitions = std::collections::BTreeMap::new();
    for t in array_field(dfa, "transitions")? {
        let t = t.as_array().ok_or_else(|| format_err("transition must be [from, char, to]"))?;
        let [from, ch, to] = t else {
            return Err(format_err("transition must be [from, char, to]"));
        };
        let from = from
            .as_u64()
            .and_then(|s| usize::try_from(s).ok())
            .filter(|&s| s < states)
            .ok_or_else(|| format_err("transition source is not a state"))?;
        let to = to
            .as_u64()
            .and_then(|s| usize::try_from(s).ok())
            .filter(|&s| s < states)
            .ok_or_else(|| format_err("transition target is not a state"))?;
        let ch = one_char(ch, "transition character")?;
        if !alphabet.contains(&ch) {
            return Err(format_err("transition character outside the DFA alphabet"));
        }
        transitions.insert((from, ch), to);
    }
    Ok(TokenMatcher::Dfa(Dfa::new(alphabet, states, initial, accepting, transitions)))
}

fn decode(doc: &Value) -> Result<CompiledGrammar, ArtifactError> {
    let format = str_field(doc, "format")?;
    if format != FORMAT_TAG {
        return Err(format_err(format!("not a {FORMAT_TAG} document (format {format:?})")));
    }
    let version = u64_field(doc, "version")?;
    if version != ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: ARTIFACT_VERSION,
        });
    }
    let mode = match str_field(doc, "mode")? {
        "characters" => TokenDiscovery::Characters,
        "tokens" => TokenDiscovery::Tokens,
        other => return Err(format_err(format!("unknown mode {other:?}"))),
    };

    let mut pairs = Vec::new();
    for pair in array_field(doc, "tagging")? {
        let pair = pair.as_array().ok_or_else(|| format_err("tagging entry must be a pair"))?;
        let [c, r] = pair else {
            return Err(format_err("tagging entry must be a pair"));
        };
        pairs.push((one_char(c, "tagging call")?, one_char(r, "tagging return")?));
    }
    let tagging =
        Tagging::from_pairs(pairs).map_err(|e| format_err(format!("invalid tagging: {e}")))?;

    let names = array_field(doc, "nonterminals")?;
    let mut builder = VpgBuilder::new(tagging);
    for (i, name) in names.iter().enumerate() {
        let name = name.as_str().ok_or_else(|| format_err("nonterminal name must be a string"))?;
        let id = builder.nonterminal(name);
        if id.0 != i {
            return Err(format_err(format!("duplicate nonterminal name {name:?}")));
        }
    }
    let n = names.len();
    let nt = |v: &Value, what: &str| -> Result<NonterminalId, ArtifactError> {
        let i = v
            .as_u64()
            .and_then(|i| usize::try_from(i).ok())
            .filter(|&i| i < n)
            .ok_or_else(|| format_err(format!("{what} is not a nonterminal index")))?;
        Ok(NonterminalId(i))
    };
    let rules = array_field(doc, "rules")?;
    if rules.len() != n {
        return Err(format_err("\"rules\" must have one entry per nonterminal"));
    }
    for (i, alts) in rules.iter().enumerate() {
        let lhs = NonterminalId(i);
        let alts =
            alts.as_array().ok_or_else(|| format_err("rule alternatives must be an array"))?;
        for alt in alts {
            match str_field(alt, "type")? {
                "empty" => {
                    builder.empty_rule(lhs);
                }
                "linear" => {
                    builder.linear_rule(
                        lhs,
                        one_char(field(alt, "plain")?, "\"plain\"")?,
                        nt(field(alt, "next")?, "\"next\"")?,
                    );
                }
                "match" => {
                    builder.match_rule(
                        lhs,
                        one_char(field(alt, "call")?, "\"call\"")?,
                        nt(field(alt, "inner")?, "\"inner\"")?,
                        one_char(field(alt, "ret")?, "\"ret\"")?,
                        nt(field(alt, "next")?, "\"next\"")?,
                    );
                }
                other => return Err(format_err(format!("unknown rule type {other:?}"))),
            }
        }
    }
    let start = nt(field(doc, "start")?, "\"start\"")?;
    let vpg: Vpg = builder.build(start).map_err(|e| format_err(format!("invalid grammar: {e}")))?;

    let tok = field(doc, "tokenizer")?;
    let k = usize::try_from(u64_field(tok, "k_repetition")?)
        .map_err(|_| format_err("\"k_repetition\" out of range"))?;
    let mut tokenizer = PartialTokenizer::new().with_k_repetition(k);
    for pair in array_field(tok, "pairs")? {
        tokenizer.push_pair(TokenPair {
            call: decode_matcher(field(pair, "call")?)?,
            ret: decode_matcher(field(pair, "ret")?)?,
        });
    }

    // Cross-layer integrity: the grammar's tagging and the tokenizer are
    // produced together by the pipeline, so a document where they disagree
    // was not produced by `save` — reject it instead of serving artifacts
    // whose conversion layer and automaton speak different alphabets.
    match mode {
        TokenDiscovery::Tokens => {
            let expected: Vec<(char, char)> = (0..tokenizer.pair_count())
                .map(|i| (vstar::tokenizer::call_marker(i), vstar::tokenizer::return_marker(i)))
                .collect();
            if vpg.tagging().pairs() != expected.as_slice() {
                return Err(integrity_err(format!(
                    "token-mode tagging must be the tokenizer's marker pairs \
                     (tokenizer has {} pair(s), tagging has {})",
                    tokenizer.pair_count(),
                    vpg.tagging().pair_count()
                )));
            }
        }
        TokenDiscovery::Characters => {
            if vpg.tagging().pair_count() != tokenizer.pair_count() {
                return Err(integrity_err(format!(
                    "character-mode tokenizer carries {} pair(s) but the tagging has {}",
                    tokenizer.pair_count(),
                    vpg.tagging().pair_count()
                )));
            }
        }
    }

    Ok(CompiledGrammar::assemble(vpg, tokenizer, mode, CompileOptions::default())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn json_round_trip_is_stable_and_equivalent() {
        let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let json = compiled.to_json();
        let reloaded = CompiledGrammar::from_json(&json).unwrap();
        // The document is canonical: serializing the reload is byte-identical.
        assert_eq!(reloaded.to_json(), json);
        // And the artifacts decide identically.
        for w in ["", "agcdcdhbcd", "cd", "ab", "agh"] {
            assert_eq!(reloaded.recognize(w), compiled.recognize(w), "{w:?}");
        }
        assert_eq!(reloaded.automaton_states(), compiled.automaton_states());
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let path = std::env::temp_dir().join("vstar_artifact_roundtrip_test.json");
        compiled.save(&path).unwrap();
        let reloaded = CompiledGrammar::load(&path).unwrap();
        assert!(reloaded.recognize("agcdcdhbcd"));
        assert!(!reloaded.recognize("ag"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_failures_are_typed() {
        // Missing file.
        let missing = CompiledGrammar::load("/nonexistent/vstar/artifact.json");
        assert!(matches!(missing, Err(ArtifactError::Io(_))), "{missing:?}");
        // Invalid JSON.
        let garbled = CompiledGrammar::from_json("{not json");
        assert!(matches!(garbled, Err(ArtifactError::Json(_))), "{garbled:?}");
        // Wrong format tag.
        let wrong = CompiledGrammar::from_json("{\"format\":\"something-else\",\"version\":1}");
        assert!(matches!(wrong, Err(ArtifactError::Format { .. })), "{wrong:?}");
        // Future version.
        let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let bumped = compiled.to_json().replacen("\"version\": 1", "\"version\": 999", 1);
        let future = CompiledGrammar::from_json(&bumped);
        assert!(
            matches!(future, Err(ArtifactError::UnsupportedVersion { found: 999, supported: 1 })),
            "{future:?}"
        );
        // Structurally broken documents.
        for (broken, what) in [
            ("{\"format\":\"vstar-compiled-grammar\"}", "missing version"),
            (
                "{\"format\":\"vstar-compiled-grammar\",\"version\":1,\"mode\":\"quantum\"}",
                "unknown mode",
            ),
        ] {
            let e = CompiledGrammar::from_json(broken);
            assert!(matches!(e, Err(ArtifactError::Format { .. })), "{what}: {e:?}");
        }
        // Errors render with context.
        let text = CompiledGrammar::from_json("{not json").unwrap_err().to_string();
        assert!(text.contains("not valid JSON"), "{text}");
    }

    #[test]
    fn rule_references_are_validated() {
        let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let json = compiled.to_json();
        // Point a rule at a nonexistent nonterminal.
        let broken = json.replacen("\"next\": 0", "\"next\": 99", 1);
        let e = CompiledGrammar::from_json(&broken);
        assert!(matches!(e, Err(ArtifactError::Format { .. })), "{e:?}");
    }
}
