//! Derivative-style recognition and parsing of well-matched VPGs.
//!
//! The recognizer follows the derivative-based recipe of Jia, Kumar & Tan ("A
//! Derivative-based Parser Generator for Visibly Pushdown Grammars", OOPSLA
//! 2021): the parser state after a prefix is the *derivative* of the grammar —
//! here represented as a set of items per nesting level plus a stack of
//! suspended levels. An item is a pair `(origin, cur)` of nonterminals meaning
//! "the current level started at `origin` and some derivation of the level's
//! content so far still needs `cur`". Reading a symbol rewrites the whole set:
//!
//! * a plain `c` applies every rule `cur → c next`,
//! * a call `‹a` suspends the level on the stack and opens a fresh level seeded
//!   with `(L₁, L₁)` for every rule `cur → ‹a L₁ b› L₂`,
//! * a return `b›` closes the level — an item `(L₁, M)` with `M → ε` proves the
//!   body derivable from `L₁` — and resumes the suspended level through every
//!   rule `cur → ‹a L₁ b› L₂` whose call, body and return all check out.
//!
//! Tracking the *origin* in each item is what makes the set exact rather than
//! an over-approximation: two matching rules can open the same level with
//! different body nonterminals, and only the origins that actually reach an
//! ε-closing item may complete their rule at the return.
//!
//! Every step touches each grammar rule at most once per live item, so
//! recognition runs in `O(|s| · |G| · |items|)` — linear in the input with the
//! grammar fixed, with no backtracking and no grammar-size blowup. Parsing
//! ([`VpgParser::parse_tagged`]) runs the same forward pass, records the item
//! sets with back-pointers, and extracts one derivation in a linear backward
//! walk.
//!
//! The item-set engine lives in the owned (crate-internal) `RuleTables` so that the borrowing
//! [`VpgParser`] and the owned, serializable
//! [`crate::compiled::CompiledGrammar`] share one implementation; the compiled
//! artifact additionally interns the reachable item sets into a transition
//! table so its hot path never rebuilds them.

use std::collections::{HashMap, HashSet};

use vstar_vpl::{Kind, NonterminalId, RuleRhs, TaggedChar, Vpg};

use crate::error::ParseError;
use crate::tree::{ParseStep, ParseTree};

/// The rule indexes of one grammar, owned: nullability, linear alternatives
/// and matching alternatives per nonterminal, plus the start symbol. This is
/// the whole state the derivative recognizer/parser needs, detached from the
/// [`Vpg`] it was built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RuleTables {
    start: NonterminalId,
    nullable: Vec<bool>,
    /// Linear alternatives `(plain, next)` per nonterminal.
    linear: Vec<Vec<(char, NonterminalId)>>,
    /// Matching alternatives `(call, inner, ret, next)` per nonterminal.
    matching: Vec<Vec<(char, NonterminalId, char, NonterminalId)>>,
}

/// One element of a level's item set: some derivation of the level's content
/// read so far starts at `origin` and currently needs `cur`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct Item {
    origin: NonterminalId,
    cur: NonterminalId,
    back: Back,
}

/// Back-pointer of an [`Item`] for derivation extraction. Indices refer to the
/// recorded per-position item sets of the forward pass.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
enum Back {
    /// A level-opening item (`cur == origin`): position 0 or just after a call.
    Open,
    /// Produced by `lhs → plain cur`; `prev` indexes the `lhs` item one
    /// position earlier.
    Plain { prev: u32 },
    /// Produced at a return by the `alt`-th matching alternative of the item at
    /// index `outer` in the set recorded at `call_state` (the position of the
    /// matching call); `inner` indexes the ε-closing item of the nested level
    /// one position earlier.
    Close { outer: u32, inner: u32, alt: u32, call_state: u32 },
}

impl RuleTables {
    /// Indexes the grammar's rules by left-hand side and shape.
    pub(crate) fn new(vpg: &Vpg) -> Self {
        let n = vpg.nonterminal_count();
        let mut linear = vec![Vec::new(); n];
        let mut matching = vec![Vec::new(); n];
        for (lhs, rhs) in vpg.rules() {
            match rhs {
                RuleRhs::Empty => {}
                RuleRhs::Linear { plain, next } => linear[lhs.0].push((plain, next)),
                RuleRhs::Match { call, inner, ret, next } => {
                    matching[lhs.0].push((call, inner, ret, next));
                }
            }
        }
        RuleTables { start: vpg.start(), nullable: vpg.nullables(), linear, matching }
    }

    pub(crate) fn start(&self) -> NonterminalId {
        self.start
    }

    pub(crate) fn nullable(&self, nt: NonterminalId) -> bool {
        self.nullable[nt.0]
    }

    pub(crate) fn linear_alts(&self, nt: NonterminalId) -> &[(char, NonterminalId)] {
        &self.linear[nt.0]
    }

    pub(crate) fn matching_alts(
        &self,
        nt: NonterminalId,
    ) -> &[(char, NonterminalId, char, NonterminalId)] {
        &self.matching[nt.0]
    }

    /// Returns `true` if the grammar derives the tagged word.
    pub(crate) fn recognize_tagged(&self, input: &[TaggedChar]) -> bool {
        let start = self.start;
        let mut cur: Vec<(NonterminalId, NonterminalId)> = vec![(start, start)];
        let mut stack: Vec<(Vec<(NonterminalId, NonterminalId)>, char)> = Vec::new();
        let mut seen: HashSet<(NonterminalId, NonterminalId)> = HashSet::new();
        for &sym in input {
            seen.clear();
            let next = match sym.kind {
                Kind::Plain => {
                    let mut next = Vec::new();
                    for &(o, l) in &cur {
                        for &(c, n) in &self.linear[l.0] {
                            if c == sym.ch && seen.insert((o, n)) {
                                next.push((o, n));
                            }
                        }
                    }
                    next
                }
                Kind::Call => {
                    let mut next = Vec::new();
                    for &(_, l) in &cur {
                        for &(c, inner, _, _) in &self.matching[l.0] {
                            if c == sym.ch && seen.insert((inner, inner)) {
                                next.push((inner, inner));
                            }
                        }
                    }
                    stack.push((std::mem::take(&mut cur), sym.ch));
                    next
                }
                Kind::Return => {
                    let Some((outer, call_ch)) = stack.pop() else {
                        return false;
                    };
                    let completed: HashSet<NonterminalId> =
                        cur.iter().filter(|&&(_, m)| self.nullable[m.0]).map(|&(o, _)| o).collect();
                    let mut next = Vec::new();
                    for &(o, l) in &outer {
                        for &(c, inner, r, n) in &self.matching[l.0] {
                            if c == call_ch
                                && r == sym.ch
                                && completed.contains(&inner)
                                && seen.insert((o, n))
                            {
                                next.push((o, n));
                            }
                        }
                    }
                    next
                }
            };
            if next.is_empty() {
                return false;
            }
            cur = next;
        }
        stack.is_empty() && cur.iter().any(|&(_, m)| self.nullable[m.0])
    }

    /// Parses a tagged word into a derivation of the grammar (see
    /// [`VpgParser::parse_tagged`]).
    pub(crate) fn parse_tagged(&self, input: &[TaggedChar]) -> Result<ParseTree, ParseError> {
        let start = self.start;
        // states[i] is the item set after consuming i symbols.
        let mut states: Vec<Vec<Item>> =
            vec![vec![Item { origin: start, cur: start, back: Back::Open }]];
        // Suspended levels: (index into `states` of the set saved at the call,
        // position of the call symbol itself is the same index).
        let mut stack: Vec<u32> = Vec::new();
        let mut seen: HashSet<(NonterminalId, NonterminalId)> = HashSet::new();

        for (t, &sym) in input.iter().enumerate() {
            seen.clear();
            let mut next: Vec<Item> = Vec::new();
            match sym.kind {
                Kind::Plain => {
                    let cur = &states[t];
                    for (idx, item) in cur.iter().enumerate() {
                        for &(c, n) in &self.linear[item.cur.0] {
                            if c == sym.ch && seen.insert((item.origin, n)) {
                                next.push(Item {
                                    origin: item.origin,
                                    cur: n,
                                    back: Back::Plain { prev: idx as u32 },
                                });
                            }
                        }
                    }
                }
                Kind::Call => {
                    let cur = &states[t];
                    for item in cur {
                        for &(c, inner, _, _) in &self.matching[item.cur.0] {
                            if c == sym.ch && seen.insert((inner, inner)) {
                                next.push(Item { origin: inner, cur: inner, back: Back::Open });
                            }
                        }
                    }
                    stack.push(t as u32);
                }
                Kind::Return => {
                    let Some(call_state) = stack.pop() else {
                        return Err(ParseError::unmatched_return(t));
                    };
                    let call_ch = input[call_state as usize].ch;
                    // First ε-closing item per body origin.
                    let mut completed: HashMap<NonterminalId, u32> = HashMap::new();
                    for (idx, item) in states[t].iter().enumerate() {
                        if self.nullable[item.cur.0] {
                            completed.entry(item.origin).or_insert(idx as u32);
                        }
                    }
                    let outer = &states[call_state as usize];
                    for (oi, item) in outer.iter().enumerate() {
                        for (alt, &(c, inner, r, n)) in self.matching[item.cur.0].iter().enumerate()
                        {
                            if c != call_ch || r != sym.ch {
                                continue;
                            }
                            let Some(&ii) = completed.get(&inner) else {
                                continue;
                            };
                            if seen.insert((item.origin, n)) {
                                next.push(Item {
                                    origin: item.origin,
                                    cur: n,
                                    back: Back::Close {
                                        outer: oi as u32,
                                        inner: ii,
                                        alt: alt as u32,
                                        call_state,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            if next.is_empty() {
                return Err(ParseError::stuck(t));
            }
            states.push(next);
        }

        if let Some(&call_state) = stack.last() {
            return Err(ParseError::unmatched_call(call_state as usize));
        }
        let accepting = states[input.len()]
            .iter()
            .position(|item| self.nullable[item.cur.0])
            .ok_or_else(ParseError::incomplete)?;
        Ok(self.extract(input, &states, input.len(), accepting as u32))
    }

    /// Extracts the derivation of the level that ends at `states[pos][idx]`
    /// (whose `cur` closes with its ε-rule), walking back-pointers to the
    /// level-opening item. Nested levels are handled with an explicit frame
    /// stack, so extraction never recurses and survives adversarially deep
    /// nesting.
    fn extract(
        &self,
        input: &[TaggedChar],
        states: &[Vec<Item>],
        pos: usize,
        idx: u32,
    ) -> ParseTree {
        /// A nesting level whose backward walk is in progress. `pending` holds
        /// the matching-rule pieces of the `Close` step that suspended the
        /// walk, to be completed once the nested level's tree is built.
        struct Frame {
            closer: NonterminalId,
            rev_steps: Vec<ParseStep>,
            pos: usize,
            idx: usize,
            pending: Option<(NonterminalId, char, char, usize, usize)>,
        }
        let new_frame = |pos: usize, idx: usize| Frame {
            closer: states[pos][idx].cur,
            rev_steps: Vec::new(),
            pos,
            idx,
            pending: None,
        };
        let mut frames: Vec<Frame> = vec![new_frame(pos, idx as usize)];
        loop {
            let frame = frames.last_mut().expect("frame stack never drains mid-walk");
            let item = states[frame.pos][frame.idx];
            match item.back {
                Back::Open => {
                    debug_assert_eq!(item.cur, item.origin);
                    let done = frames.pop().expect("current frame exists");
                    let mut rev_steps = done.rev_steps;
                    rev_steps.reverse();
                    let tree = ParseTree::new(item.origin, rev_steps, done.closer);
                    let Some(parent) = frames.last_mut() else {
                        return tree;
                    };
                    let (lhs, call, ret, resume_pos, resume_idx) =
                        parent.pending.take().expect("parent suspended on a Close step");
                    parent.rev_steps.push(ParseStep::Nest { lhs, call, inner: tree, ret });
                    parent.pos = resume_pos;
                    parent.idx = resume_idx;
                }
                Back::Plain { prev } => {
                    let lhs = states[frame.pos - 1][prev as usize].cur;
                    frame.rev_steps.push(ParseStep::Plain { lhs, plain: input[frame.pos - 1].ch });
                    frame.pos -= 1;
                    frame.idx = prev as usize;
                }
                Back::Close { outer, inner, alt, call_state } => {
                    let lhs = states[call_state as usize][outer as usize].cur;
                    let (call, _, ret, _) = self.matching[lhs.0][alt as usize];
                    frame.pending = Some((lhs, call, ret, call_state as usize, outer as usize));
                    let inner_pos = frame.pos - 1;
                    frames.push(new_frame(inner_pos, inner as usize));
                }
            }
        }
    }
}

/// A compiled recognizer/parser for one [`Vpg`].
///
/// Construction indexes the grammar's rules by left-hand side and shape;
/// recognition and parsing borrow the grammar, so the parser is cheap to build
/// and free to clone. For an owned, serializable artifact that needs no
/// borrows (and precomputes the item-set transitions into lookup tables), see
/// [`crate::compiled::CompiledGrammar`].
///
/// # Example
///
/// ```
/// use vstar_parser::VpgParser;
/// use vstar_vpl::grammar::figure1_grammar;
///
/// let grammar = figure1_grammar();
/// let parser = VpgParser::new(&grammar);
/// assert!(parser.recognize("agcdcdhbcd"));
/// let tree = parser.parse("agcdcdhbcd").unwrap();
/// assert_eq!(tree.yielded(), "agcdcdhbcd");
/// assert!(tree.validate(&grammar));
/// ```
#[derive(Clone, Debug)]
pub struct VpgParser<'g> {
    vpg: &'g Vpg,
    tables: RuleTables,
}

impl<'g> VpgParser<'g> {
    /// Compiles a parser for `vpg`.
    #[must_use]
    pub fn new(vpg: &'g Vpg) -> Self {
        VpgParser { vpg, tables: RuleTables::new(vpg) }
    }

    /// The grammar this parser was compiled from.
    #[must_use]
    pub fn vpg(&self) -> &'g Vpg {
        self.vpg
    }

    /// Returns `true` if the grammar derives `s` (tagged with the grammar's own
    /// tagging).
    #[must_use]
    pub fn recognize(&self, s: &str) -> bool {
        self.recognize_tagged(&self.vpg.tagging().tag(s))
    }

    /// Returns `true` if the grammar derives the tagged word.
    #[must_use]
    pub fn recognize_tagged(&self, input: &[TaggedChar]) -> bool {
        self.tables.recognize_tagged(input)
    }

    /// Parses `s` (tagged with the grammar's own tagging) into a derivation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the failure when `s` is not derivable.
    pub fn parse(&self, s: &str) -> Result<ParseTree, ParseError> {
        self.parse_tagged(&self.vpg.tagging().tag(s))
    }

    /// Parses a tagged word into a derivation of the grammar.
    ///
    /// The forward pass is the same derivative computation as
    /// [`VpgParser::recognize_tagged`] with per-position item sets retained;
    /// the returned tree is extracted backward from an accepting item and
    /// always satisfies `tree.validate(self.vpg())` and
    /// `tree.yielded() == untag(input)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the failure when the word is not
    /// derivable.
    pub fn parse_tagged(&self, input: &[TaggedChar]) -> Result<ParseTree, ParseError> {
        self.tables.parse_tagged(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::{Tagging, VpgBuilder};

    #[test]
    fn figure1_recognition_agrees_with_vpl() {
        let g = figure1_grammar();
        let p = VpgParser::new(&g);
        let terminals: Vec<char> = g.terminals().into_iter().collect();
        for w in vstar_vpl::words::all_strings(&terminals, 6) {
            assert_eq!(p.recognize(&w), g.accepts(&w), "mismatch on {w:?}");
        }
    }

    #[test]
    fn figure1_parses_pumped_seeds() {
        let g = figure1_grammar();
        let p = VpgParser::new(&g);
        for k in 1..6 {
            let s = format!("{}cdcd{}cd", "ag".repeat(k), "hb".repeat(k));
            let tree = p.parse(&s).unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(tree.yielded(), s);
            assert!(tree.validate(&g));
            assert_eq!(tree.depth(), 2 * k);
        }
    }

    #[test]
    fn parse_errors_locate_failures() {
        let g = figure1_grammar();
        let p = VpgParser::new(&g);
        // 'x' is not derivable anywhere.
        assert_eq!(p.parse("cx"), Err(ParseError::stuck(1)));
        // A bare return symbol.
        assert_eq!(p.parse("b"), Err(ParseError::unmatched_return(0)));
        assert_eq!(p.parse("cdb"), Err(ParseError::unmatched_return(2)));
        // An unclosed call.
        assert_eq!(p.parse("ag"), Err(ParseError::unmatched_call(1)));
        // "c" must continue with 'd': every symbol consumed, nothing accepting.
        assert_eq!(p.parse("c"), Err(ParseError::incomplete()));
        // ‹a with a body that cannot start: A requires ‹g.
        assert_eq!(p.parse("ab"), Err(ParseError::stuck(1)));
    }

    #[test]
    fn origin_tracking_is_exact() {
        // Two matching rules share the call/return pair but pair different body
        // and continuation nonterminals:
        //   S → ‹( X )› P | ‹( Y )› Q,  X → x E,  Y → y E,
        //   P → p E,  Q → q E,  E → ε.
        // A set-based recognizer without origins would accept "(x)q".
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let x = b.nonterminal("X");
        let y = b.nonterminal("Y");
        let p = b.nonterminal("P");
        let q = b.nonterminal("Q");
        let e = b.nonterminal("E");
        b.match_rule(s, '(', x, ')', p);
        b.match_rule(s, '(', y, ')', q);
        b.linear_rule(x, 'x', e);
        b.linear_rule(y, 'y', e);
        b.linear_rule(p, 'p', e);
        b.linear_rule(q, 'q', e);
        b.empty_rule(e);
        let g = b.build(s).unwrap();
        let parser = VpgParser::new(&g);
        for (w, member) in
            [("(x)p", true), ("(y)q", true), ("(x)q", false), ("(y)p", false), ("(x)", false)]
        {
            assert_eq!(parser.recognize(w), member, "mismatch on {w:?}");
            assert_eq!(g.accepts(w), member, "vpl reference disagrees on {w:?}");
            assert_eq!(parser.parse(w).is_ok(), member);
        }
        let tree = parser.parse("(y)q").unwrap();
        assert!(tree.validate(&g));
        assert_eq!(tree.yielded(), "(y)q");
    }

    #[test]
    fn empty_input_needs_nullable_start() {
        let g = figure1_grammar();
        let p = VpgParser::new(&g);
        assert!(p.recognize(""));
        let t = p.parse("").unwrap();
        assert!(t.is_empty());
        assert!(t.validate(&g));

        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let e = b.nonterminal("E");
        b.match_rule(s, '(', e, ')', e);
        b.empty_rule(e);
        let g = b.build(s).unwrap();
        let p = VpgParser::new(&g);
        assert!(!p.recognize(""));
        assert_eq!(p.parse(""), Err(ParseError::incomplete()));
        assert!(p.recognize("()"));
    }

    #[test]
    fn deep_nesting_is_stack_safe() {
        // 100k nesting levels: recognition, parsing (frame-stack extraction),
        // every tree traversal and the tree's drop must all run iteratively —
        // this is exactly the adversarial input shape a fuzzing or serving
        // workload feeds the parser.
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.match_rule(s, '(', s, ')', s);
        b.empty_rule(s);
        b.linear_rule(s, 'x', s);
        let g = b.build(s).unwrap();
        let p = VpgParser::new(&g);
        let deep = 100_000usize;
        let w = format!("{}x{}", "(".repeat(deep), ")".repeat(deep));
        assert!(p.recognize(&w));
        let tree = p.parse(&w).unwrap();
        assert_eq!(tree.len(), w.chars().count());
        assert_eq!(tree.depth(), deep);
        assert_eq!(tree.rule_applications(), 2 * deep + 2);
        assert!(tree.validate(&g));
        assert_eq!(tree.yielded(), w);
        drop(tree); // iterative drop must not overflow either

        // Long flat strings exercise the non-recursive spine.
        let flat = "()".repeat(50_000);
        assert!(p.recognize(&flat));
        let tree = p.parse(&flat).unwrap();
        assert_eq!(tree.len(), flat.len());
        assert_eq!(tree.depth(), 1);
        assert!(tree.validate(&g));
    }
}
