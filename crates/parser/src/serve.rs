//! Serving entry points of a [`CompiledGrammar`]: incremental sessions and
//! sharded batches.
//!
//! * [`Session`] is a zero-allocation-on-the-hot-path incremental recognizer:
//!   feed it input as it arrives ([`Session::push_bytes`] /
//!   [`Session::push_str`]) and ask for the verdict at the end
//!   ([`Session::finish`]). A session holds only the automaton state, the
//!   stack (whose buffer is reused across [`Session::reset`]) and a 4-byte
//!   UTF-8 carry buffer, so long-lived serving loops allocate nothing per
//!   input after warm-up.
//! * [`SessionState`] is the owned, `'static` form of the same machine for
//!   callers that cannot hold a borrow of the grammar across await points or
//!   registry swaps (the `vstar-serve` daemon pins each connection's state to
//!   an `Arc`-held artifact). Every method takes the grammar explicitly; a
//!   state must always be driven with the grammar that created it.
//! * [`CompiledGrammar::parse_batch`] / [`CompiledGrammar::recognize_batch`]
//!   shard a batch across scoped threads. `CompiledGrammar` is `Send + Sync`,
//!   so the shards share one artifact without cloning or locking.

use std::thread;

use crate::compiled::CompiledGrammar;
use crate::error::ParseError;
use crate::tree::ParseTree;

/// The owned state of one incremental recognition: automaton state, stack,
/// UTF-8 carry buffer and step count — everything a [`Session`] holds except
/// the grammar borrow.
///
/// Every method takes the [`CompiledGrammar`] explicitly. The state is only
/// meaningful with the grammar that created it ([`SessionState::new`] /
/// [`SessionState::reset`]); driving it with a different grammar yields
/// nonsense verdicts (states are indices into that grammar's tables), though
/// never memory unsafety. Long-lived daemons therefore pin each state to the
/// exact artifact version it started with, even across hot reloads.
#[derive(Clone, Debug)]
pub struct SessionState {
    state: u32,
    stack: Vec<u32>,
    dead: bool,
    /// Bytes of an incomplete UTF-8 sequence spanning a `push_bytes` boundary.
    carry: [u8; 4],
    carry_len: u8,
    /// Automaton steps taken since the last [`SessionState::reset`] (one
    /// plain integer add per character — kept unconditionally, it is cheaper
    /// than the branch that would gate it).
    steps: u64,
}

impl SessionState {
    /// A fresh state positioned at `grammar`'s word-level start.
    #[must_use]
    pub fn new(grammar: &CompiledGrammar) -> Self {
        SessionState {
            state: grammar.word_start(),
            stack: Vec::new(),
            dead: false,
            carry: [0; 4],
            carry_len: 0,
            steps: 0,
        }
    }

    /// Feeds one decoded character to the automaton.
    fn step_char(&mut self, grammar: &CompiledGrammar, ch: char) {
        if !self.dead {
            self.steps += 1;
            if !grammar.word_step(&mut self.state, &mut self.stack, ch) {
                self.dead = true;
            }
        }
    }

    /// Feeds a chunk of UTF-8 bytes. Chunks may split multi-byte characters
    /// anywhere; invalid UTF-8 marks the state dead (it will never accept).
    ///
    /// Telemetry is attributed per call (`serve.bytes_pushed`), never per
    /// byte — with no collector installed the cost is one relaxed atomic
    /// load.
    pub fn push_bytes(&mut self, grammar: &CompiledGrammar, bytes: &[u8]) {
        vstar_telemetry::counter("serve.bytes_pushed", bytes.len() as u64);
        let mut rest = bytes;
        if self.dead {
            return;
        }
        // Complete a character left over from the previous chunk.
        while self.carry_len > 0 && !rest.is_empty() {
            let need = match utf8_len(self.carry[0]) {
                Some(n) => n,
                None => {
                    self.dead = true;
                    return;
                }
            };
            let take = (need - self.carry_len as usize).min(rest.len());
            self.carry[self.carry_len as usize..self.carry_len as usize + take]
                .copy_from_slice(&rest[..take]);
            self.carry_len += take as u8;
            rest = &rest[take..];
            if self.carry_len as usize == need {
                match std::str::from_utf8(&self.carry[..need]) {
                    Ok(s) => {
                        let ch = s.chars().next().expect("one complete character");
                        self.carry_len = 0;
                        self.step_char(grammar, ch);
                        if self.dead {
                            return;
                        }
                    }
                    Err(_) => {
                        self.dead = true;
                        return;
                    }
                }
            }
        }
        // Bulk-decode the rest; stash a trailing incomplete sequence.
        match std::str::from_utf8(rest) {
            Ok(s) => {
                for ch in s.chars() {
                    self.step_char(grammar, ch);
                    if self.dead {
                        return;
                    }
                }
            }
            Err(e) => {
                let valid = e.valid_up_to();
                let s = std::str::from_utf8(&rest[..valid]).expect("validated prefix");
                for ch in s.chars() {
                    self.step_char(grammar, ch);
                    if self.dead {
                        return;
                    }
                }
                match e.error_len() {
                    // Genuinely invalid bytes: the input can never be a word.
                    Some(_) => self.dead = true,
                    // An incomplete trailing sequence: carry it over.
                    None => {
                        let tail = &rest[valid..];
                        self.carry[..tail.len()].copy_from_slice(tail);
                        self.carry_len = tail.len() as u8;
                    }
                }
            }
        }
    }

    /// Feeds a chunk of characters.
    pub fn push_str(&mut self, grammar: &CompiledGrammar, s: &str) {
        self.push_bytes(grammar, s.as_bytes());
    }

    /// Whether the fed prefix can still extend to a member (a dead state
    /// never accepts, whatever is pushed next).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !self.dead
    }

    /// Automaton steps taken since the last reset (one per fed character
    /// while alive).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The verdict for everything pushed so far: `true` iff the fed input is
    /// a complete word of the grammar. Does not consume the state — more
    /// input may be pushed afterwards.
    ///
    /// With a telemetry collector installed, each call counts one finished
    /// word (`serve.words_finished` / `serve.words_accepted`) and records the
    /// step count in the `serve.steps_per_parse` histogram.
    #[must_use]
    pub fn finish(&self, grammar: &CompiledGrammar) -> bool {
        let accepted = !self.dead
            && self.carry_len == 0
            && self.stack.is_empty()
            && grammar.word_accepting(self.state);
        if vstar_telemetry::enabled() {
            vstar_telemetry::counter("serve.words_finished", 1);
            if accepted {
                vstar_telemetry::counter("serve.words_accepted", 1);
            }
            vstar_telemetry::record("serve.steps_per_parse", self.steps);
        }
        accepted
    }

    /// Rewinds to the empty input, keeping the stack buffer (so a reused
    /// state allocates nothing per input once warmed up).
    pub fn reset(&mut self, grammar: &CompiledGrammar) {
        self.state = grammar.word_start();
        self.stack.clear();
        self.dead = false;
        self.carry_len = 0;
        self.steps = 0;
    }
}

/// An incremental, resumable recognizer over one [`CompiledGrammar`]: a
/// [`SessionState`] bundled with the grammar borrow that drives it.
///
/// Sessions run at the *word* level (the grammar's own alphabet): for a
/// character-mode grammar that is the raw input; for a token-mode grammar it
/// is the converted word (see [`CompiledGrammar::converted_word`]), since
/// tokenization needs lookahead that contradicts byte-at-a-time streaming.
///
/// # Example
///
/// ```
/// use vstar_parser::CompiledGrammar;
/// use vstar_vpl::grammar::figure1_grammar;
///
/// let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
/// let mut session = compiled.session();
/// session.push_str("agcd");
/// session.push_str("cdhbcd");
/// assert!(session.finish());
/// session.reset();
/// session.push_bytes(b"ag");
/// assert!(!session.finish()); // the call is still open
/// ```
#[derive(Clone, Debug)]
pub struct Session<'c> {
    grammar: &'c CompiledGrammar,
    state: SessionState,
}

impl<'c> Session<'c> {
    fn new(grammar: &'c CompiledGrammar) -> Self {
        Session { grammar, state: SessionState::new(grammar) }
    }

    /// Feeds a chunk of UTF-8 bytes (see [`SessionState::push_bytes`]).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.state.push_bytes(self.grammar, bytes);
    }

    /// Feeds a chunk of characters.
    pub fn push_str(&mut self, s: &str) {
        self.state.push_str(self.grammar, s);
    }

    /// Whether the fed prefix can still extend to a member (a dead session
    /// never accepts, whatever is pushed next).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// The verdict for everything pushed so far (see
    /// [`SessionState::finish`]).
    #[must_use]
    pub fn finish(&self) -> bool {
        self.state.finish(self.grammar)
    }

    /// Rewinds to the empty input, keeping the stack buffer (so a reused
    /// session allocates nothing per input once warmed up).
    pub fn reset(&mut self) {
        self.state.reset(self.grammar);
    }
}

/// Expected byte length of a UTF-8 sequence from its lead byte.
fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

impl CompiledGrammar {
    /// Starts an incremental word-level recognition [`Session`].
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Parses every input, sharding the batch across scoped threads (the
    /// artifact is shared by reference — no clones, no locks). Results come
    /// back in input order; per-input failures are per-input `Err`s.
    #[must_use]
    pub fn parse_batch(&self, inputs: &[&str]) -> Vec<Result<ParseTree, ParseError>> {
        self.shard_batch(inputs, |s| self.parse(s))
    }

    /// Decides membership of every input, sharding the batch across scoped
    /// threads. Verdicts come back in input order.
    #[must_use]
    pub fn recognize_batch(&self, inputs: &[&str]) -> Vec<bool> {
        self.shard_batch(inputs, |s| self.recognize(s))
    }

    /// Runs `work` over `inputs` on up to `available_parallelism` scoped
    /// threads, preserving input order.
    fn shard_batch<T: Send>(&self, inputs: &[&str], work: impl Fn(&str) -> T + Sync) -> Vec<T> {
        let threads = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(inputs.len());
        if threads <= 1 {
            return inputs.iter().map(|s| work(s)).collect();
        }
        let chunk_size = inputs.len().div_ceil(threads);
        let work = &work;
        let mut results: Vec<Vec<T>> = thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(|s| work(s)).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch shard panicked")).collect()
        });
        let mut out = Vec::with_capacity(inputs.len());
        for shard in &mut results {
            out.append(shard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn session_agrees_with_whole_string_recognition() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let terminals: Vec<char> = g.terminals().into_iter().collect();
        let mut session = compiled.session();
        for w in vstar_vpl::words::all_strings(&terminals, 5) {
            session.reset();
            for b in w.as_bytes() {
                session.push_bytes(std::slice::from_ref(b));
            }
            assert_eq!(session.finish(), compiled.recognize_word(&w), "mismatch on {w:?}");
        }
    }

    #[test]
    fn owned_state_matches_borrowing_session() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let terminals: Vec<char> = g.terminals().into_iter().collect();
        let mut state = SessionState::new(&compiled);
        for w in vstar_vpl::words::all_strings(&terminals, 4) {
            state.reset(&compiled);
            state.push_str(&compiled, &w);
            assert_eq!(state.finish(&compiled), compiled.recognize_word(&w), "mismatch on {w:?}");
            if state.is_alive() {
                // One automaton step per character while alive.
                assert_eq!(state.steps(), w.chars().count() as u64);
            }
        }
        // The owned state carries no grammar borrow: it outlives scopes a
        // Session cannot, and keeps its verdict when moved.
        state.reset(&compiled);
        state.push_str(&compiled, "agcdcdhbcd");
        let moved: SessionState = { state };
        assert!(moved.finish(&compiled));
    }

    #[test]
    fn session_handles_split_multibyte_characters() {
        // Build a grammar whose word alphabet contains multi-byte characters
        // (the artificial markers of token mode are 3-byte UTF-8).
        use vstar_vpl::{Tagging, VpgBuilder};
        let call = vstar::tokenizer::call_marker(0);
        let ret = vstar::tokenizer::return_marker(0);
        let tagging = Tagging::from_pairs([(call, ret)]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let e = b.nonterminal("E");
        b.match_rule(s, call, e, ret, e);
        b.empty_rule(e);
        let g = b.build(s).unwrap();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let word = format!("{call}{ret}");
        assert!(compiled.recognize_word(&word));

        let mut session = compiled.session();
        for b in word.as_bytes() {
            session.push_bytes(std::slice::from_ref(b));
        }
        assert!(session.finish());

        // A dangling partial character never accepts.
        session.reset();
        session.push_bytes(&word.as_bytes()[..word.len() - 1]);
        assert!(session.is_alive());
        assert!(!session.finish());

        // Invalid UTF-8 kills the session.
        session.reset();
        session.push_bytes(&[0xff]);
        assert!(!session.is_alive());
        session.push_str(&word);
        assert!(!session.finish());
    }

    #[test]
    fn batches_preserve_order_and_agree_with_single_calls() {
        let g = figure1_grammar();
        let compiled = CompiledGrammar::from_vpg(&g).unwrap();
        let inputs: Vec<String> = (0..64)
            .map(|k| {
                if k % 3 == 0 {
                    format!("{}cdcd{}cd", "ag".repeat(k % 5 + 1), "hb".repeat(k % 5 + 1))
                } else {
                    format!("cd{}", "x".repeat(k % 2))
                }
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let verdicts = compiled.recognize_batch(&refs);
        let parses = compiled.parse_batch(&refs);
        assert_eq!(verdicts.len(), refs.len());
        assert_eq!(parses.len(), refs.len());
        for ((s, v), p) in refs.iter().zip(&verdicts).zip(&parses) {
            assert_eq!(*v, compiled.recognize(s), "verdict order broken at {s:?}");
            assert_eq!(p.is_ok(), *v, "parse/recognize disagree at {s:?}");
            if let Ok(tree) = p {
                assert_eq!(tree.yielded(), *s);
            }
        }
        // Empty batches are fine.
        assert!(compiled.recognize_batch(&[]).is_empty());
        assert!(compiled.parse_batch(&[]).is_empty());
    }
}
