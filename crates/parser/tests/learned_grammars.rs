//! End-to-end acceptance tests: `vstar-parser` must recognize, parse and
//! sample every bundled oracle language's *learned* grammar.
//!
//! For each Table-1 language the full V-Star pipeline runs on the bundled
//! seeds, then the learned grammar is exercised in both directions:
//!
//! * **sample → parse → accept**: grammar-sampler outputs parse back to trees
//!   that validate and yield the sampled word, and the recognizer accepts them;
//! * **seeds parse**: every seed string (converted with the learned tokenizer)
//!   parses, and the raw-string [`LearnedParser`] agrees with the learned VPA.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language, Lisp, MathExpr, WhileLang, Xml};
use vstar_parser::{GrammarSampler, LearnedParser, VpgParser};

fn round_trip(lang: &dyn Language) {
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .unwrap_or_else(|e| panic!("{}: learning failed: {e}", lang.name()));
    let learned = result.as_learned_language();
    let parser = VpgParser::new(learned.vpg());
    let sampler = GrammarSampler::new(learned.vpg());
    let raw_parser = LearnedParser::new(&learned);

    // Every seed parses: convert the raw seed and parse the converted word.
    for seed in lang.seeds() {
        let converted = learned.convert(&mat, &seed);
        let tree = parser
            .parse(&converted)
            .unwrap_or_else(|e| panic!("{}: seed {seed:?} failed to parse: {e}", lang.name()));
        assert!(tree.validate(learned.vpg()), "{}: seed tree invalid", lang.name());
        assert_eq!(tree.yielded(), converted, "{}: seed tree yield", lang.name());
        assert!(raw_parser.accepts(&mat, &seed), "{}: raw parser rejects seed", lang.name());
    }

    // Sample → parse → accept on the learned grammar.
    let mut rng = StdRng::seed_from_u64(0x5EED ^ lang.name().len() as u64);
    let mut samples = 0usize;
    for _ in 0..60 {
        let Some(word) = sampler.sample(&mut rng, 24) else {
            break;
        };
        assert!(parser.recognize(&word), "{}: sample {word:?} rejected", lang.name());
        let tree = parser
            .parse(&word)
            .unwrap_or_else(|e| panic!("{}: sample {word:?} failed to parse: {e}", lang.name()));
        assert!(tree.validate(learned.vpg()), "{}: sample tree invalid", lang.name());
        assert_eq!(tree.yielded(), word, "{}: sample tree yield", lang.name());
        samples += 1;
    }
    assert!(samples >= 50, "{}: sampler produced only {samples} samples", lang.name());
}

#[test]
fn json_round_trip() {
    round_trip(&Json::new());
}

#[test]
fn lisp_round_trip() {
    round_trip(&Lisp::new());
}

#[test]
fn xml_round_trip() {
    round_trip(&Xml::new());
}

#[test]
fn while_lang_round_trip() {
    round_trip(&WhileLang::new());
}

#[test]
fn mathexpr_round_trip() {
    round_trip(&MathExpr::new());
}
