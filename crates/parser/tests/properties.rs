//! Property tests for the derivative recognizer/parser, the compiled serving
//! artifact and the grammar sampler (proptest, both directions required by
//! the subsystem's contract):
//!
//! * on random hypothesis VPAs, the derivative recognizer over the extracted
//!   VPG agrees with `Vpa::accepts` on random words;
//! * on random seeded VPGs, every sampler output is accepted by the recognizer
//!   (and parses to a validating tree that yields the sample back);
//! * on random VPGs, `CompiledGrammar` (table-driven) agrees with the
//!   uncompiled `VpgParser` (item sets rebuilt per position) on recognition,
//!   parse trees and serialization round trips, and the byte-at-a-time
//!   streaming `Session` agrees with whole-string recognition.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vstar_parser::{CompiledGrammar, GrammarSampler, VpgParser};
use vstar_vpl::{vpa_to_vpg, Tagging, Vpa, Vpg, VpgBuilder};

const CALLS: [char; 2] = ['(', '['];
const RETS: [char; 2] = [')', ']'];
const PLAINS: [char; 3] = ['x', 'y', 'z'];

fn two_pair_tagging() -> Tagging {
    Tagging::from_pairs([('(', ')'), ('[', ']')]).unwrap()
}

/// A random small deterministic VPA over two call/return pairs (a random
/// hypothesis automaton, the shape the learner produces).
fn random_vpa(seed: u64) -> Vpa {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = vstar_vpl::VpaBuilder::new(two_pair_tagging());
    let n_states = rng.gen_range(1usize..4);
    let states = b.add_states(n_states);
    let n_syms = rng.gen_range(1usize..3);
    let syms: Vec<_> = (0..n_syms).map(|_| b.add_stack_symbol()).collect();
    b.set_initial(states[rng.gen_range(0..n_states)]);
    for &q in &states {
        if rng.gen_bool(0.6) {
            b.add_accepting(q);
        }
        for &c in &PLAINS {
            if rng.gen_bool(0.5) {
                let to = states[rng.gen_range(0..n_states)];
                b.plain(q, c, to).unwrap();
            }
        }
        for &c in &CALLS {
            if rng.gen_bool(0.7) {
                let to = states[rng.gen_range(0..n_states)];
                let push = syms[rng.gen_range(0..n_syms)];
                b.call(q, c, to, push).unwrap();
            }
        }
        for &c in &RETS {
            for &g in &syms {
                if rng.gen_bool(0.7) {
                    let to = states[rng.gen_range(0..n_states)];
                    b.ret(q, c, g, to).unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

/// A random small well-matched VPG over two call/return pairs.
fn random_vpg(seed: u64) -> Vpg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = VpgBuilder::new(two_pair_tagging());
    let n = rng.gen_range(1usize..5);
    let nts: Vec<_> = (0..n).map(|i| b.nonterminal(&format!("N{i}"))).collect();
    for &nt in &nts {
        let alts = rng.gen_range(1usize..4);
        for _ in 0..alts {
            match rng.gen_range(0u8..3) {
                0 => {
                    b.empty_rule(nt);
                }
                1 => {
                    let c = PLAINS[rng.gen_range(0..PLAINS.len())];
                    let next = nts[rng.gen_range(0..n)];
                    b.linear_rule(nt, c, next);
                }
                _ => {
                    let pair = rng.gen_range(0..CALLS.len());
                    let inner = nts[rng.gen_range(0..n)];
                    let next = nts[rng.gen_range(0..n)];
                    b.match_rule(nt, CALLS[pair], inner, RETS[pair], next);
                }
            }
        }
    }
    b.build(nts[0]).unwrap()
}

/// A random word biased toward well-matchedness (pure uniform words are almost
/// always trivially rejected, which would test nothing).
fn random_word(rng: &mut StdRng, max_len: usize) -> String {
    let mut out = String::new();
    let mut open: Vec<usize> = Vec::new();
    let len = rng.gen_range(0..=max_len);
    for _ in 0..len {
        let roll = rng.gen_range(0u8..10);
        if roll < 4 {
            out.push(PLAINS[rng.gen_range(0..PLAINS.len())]);
        } else if roll < 7 {
            let pair = rng.gen_range(0..CALLS.len());
            out.push(CALLS[pair]);
            open.push(pair);
        } else if let Some(pair) = open.pop() {
            // Occasionally close with the wrong pair to probe mismatches.
            let pair = if rng.gen_bool(0.9) { pair } else { 1 - pair };
            out.push(RETS[pair]);
        } else if rng.gen_bool(0.2) {
            out.push(RETS[rng.gen_range(0..RETS.len())]);
        }
    }
    for pair in open.into_iter().rev() {
        if rng.gen_bool(0.9) {
            out.push(RETS[pair]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The derivative recognizer on the VPG extracted from a random hypothesis
    /// VPA agrees with `Vpa::accepts` on random words, and parse success
    /// coincides with membership.
    #[test]
    fn recognizer_agrees_with_hypothesis_vpa(seed in 0u64..4000, word_seed in 0u64..4000) {
        let vpa = random_vpa(seed);
        let vpg = vpa_to_vpg(&vpa);
        let parser = VpgParser::new(&vpg);
        let mut rng = StdRng::seed_from_u64(word_seed);
        for _ in 0..8 {
            let w = random_word(&mut rng, 14);
            let expected = vpa.accepts(&w);
            prop_assert!(parser.recognize(&w) == expected, "word {:?} on vpa seed {}", w, seed);
            prop_assert!(vpg.accepts(&w) == expected, "vpl reference on {:?}", w);
            match parser.parse(&w) {
                Ok(tree) => {
                    prop_assert!(expected, "parsed non-member {:?}", w);
                    prop_assert!(tree.validate(&vpg));
                    prop_assert_eq!(tree.yielded(), w);
                }
                Err(_) => prop_assert!(!expected, "member {:?} failed to parse", w),
            }
        }
    }

    /// Every output of the grammar sampler on a random seeded VPG is accepted
    /// by the derivative recognizer, and its tree validates.
    #[test]
    fn sampler_outputs_are_recognized(seed in 0u64..4000, sample_seed in 0u64..4000, budget in 0usize..24) {
        let vpg = random_vpg(seed);
        let sampler = GrammarSampler::new(&vpg);
        let parser = VpgParser::new(&vpg);
        let mut rng = StdRng::seed_from_u64(sample_seed);
        for _ in 0..6 {
            let Some(tree) = sampler.sample_tree(&mut rng, budget) else {
                // Unproductive start: nothing to check, but this must be stable.
                prop_assert!(!sampler.is_productive());
                break;
            };
            prop_assert!(tree.validate(&vpg));
            let s = tree.yielded();
            prop_assert!(parser.recognize(&s), "sample {:?} rejected (vpg seed {})", s, seed);
            prop_assert!(vpg.accepts(&s), "vpl reference rejected {:?}", s);
            let reparsed = parser.parse(&s).expect("sample parses");
            prop_assert_eq!(reparsed.yielded(), s);
        }
    }

    /// Recognizer and the vpl reference recognizer agree on random words for
    /// random grammars (not only conversion-shaped ones).
    #[test]
    fn recognizer_agrees_with_vpl_reference(seed in 0u64..4000, word_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let parser = VpgParser::new(&vpg);
        let mut rng = StdRng::seed_from_u64(word_seed);
        for _ in 0..8 {
            let w = random_word(&mut rng, 12);
            prop_assert!(parser.recognize(&w) == vpg.accepts(&w), "word {:?} on vpg seed {}", w, seed);
        }
    }

    /// The compiled artifact agrees with the uncompiled parser on random
    /// grammars and random words — recognition, parse trees and the
    /// serialization round trip all coincide.
    #[test]
    fn compiled_agrees_with_uncompiled(seed in 0u64..4000, word_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let parser = VpgParser::new(&vpg);
        let compiled = CompiledGrammar::from_vpg(&vpg).expect("small grammars compile");
        let reloaded = CompiledGrammar::from_json(&compiled.to_json()).expect("round trip");
        let mut rng = StdRng::seed_from_u64(word_seed);
        for _ in 0..8 {
            let w = random_word(&mut rng, 14);
            let expected = parser.recognize(&w);
            prop_assert!(compiled.recognize(&w) == expected, "word {:?} on vpg seed {}", w, seed);
            prop_assert!(compiled.recognize_word(&w) == expected, "word-level {:?} on seed {}", w, seed);
            prop_assert!(reloaded.recognize(&w) == expected, "reloaded {:?} on seed {}", w, seed);
            match (compiled.parse(&w), parser.parse(&w)) {
                (Ok(a), Ok(b)) => prop_assert!(a == b, "trees differ on {:?} (seed {})", w, seed),
                (Err(a), Err(b)) => {
                    prop_assert!(a.kind() == b.kind(), "error kinds differ on {:?}", w);
                    prop_assert!(a.position() == b.position(), "positions differ on {:?}", w);
                }
                (a, b) => prop_assert!(false, "parse verdicts differ on {:?}: {:?} vs {:?}", w, a, b),
            }
        }
    }

    /// The streaming `Session`, fed one byte at a time across arbitrary chunk
    /// boundaries, agrees with whole-string recognition.
    #[test]
    fn session_agrees_with_whole_string(seed in 0u64..4000, word_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let compiled = CompiledGrammar::from_vpg(&vpg).expect("small grammars compile");
        let mut rng = StdRng::seed_from_u64(word_seed);
        let mut session = compiled.session();
        for _ in 0..8 {
            let w = random_word(&mut rng, 14);
            session.reset();
            for b in w.as_bytes() {
                session.push_bytes(std::slice::from_ref(b));
            }
            prop_assert!(
                session.finish() == compiled.recognize_word(&w),
                "streaming mismatch on {:?} (seed {})", w, seed
            );
        }
    }
}
