//! Artifact round-trip acceptance tests: for every Table-1 language,
//! `learn → compile → save → load → serve` must produce identical verdicts
//! and identical parse trees, with no membership oracle anywhere near the
//! serving side.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language, Lisp, MathExpr, WhileLang, Xml};
use vstar_parser::{ArtifactError, CompileLearned, CompiledGrammar, LearnedParser};

/// Learns `lang`, compiles it, round-trips the artifact through disk and
/// checks the reloaded copy serves identically on a mixed corpus of members,
/// mutants and truncations.
fn round_trip(lang: &dyn Language) {
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .unwrap_or_else(|e| panic!("{}: learning failed: {e}", lang.name()));
    let compiled = result.compile().unwrap_or_else(|e| panic!("{}: compile: {e}", lang.name()));

    let path = std::env::temp_dir().join(format!("vstar_artifact_{}.json", lang.name()));
    compiled.save(&path).unwrap_or_else(|e| panic!("{}: save: {e}", lang.name()));
    let reloaded =
        CompiledGrammar::load(&path).unwrap_or_else(|e| panic!("{}: load: {e}", lang.name()));
    std::fs::remove_file(&path).ok();

    // The document is canonical: re-serializing the reload is byte-identical.
    assert_eq!(compiled.to_json(), reloaded.to_json(), "{}: document drift", lang.name());
    assert_eq!(
        compiled.automaton_states(),
        reloaded.automaton_states(),
        "{}: automaton drift",
        lang.name()
    );

    let mut rng = StdRng::seed_from_u64(0xA27 ^ lang.name().len() as u64);
    let mut corpus: Vec<String> = lang.seeds();
    corpus.extend(lang.generate_corpus(&mut rng, 18, 60));
    let alphabet = lang.alphabet();
    for k in 0..corpus.len() {
        let s = corpus[k].clone();
        let mut mutated: Vec<char> = s.chars().collect();
        if !mutated.is_empty() {
            let i = (k * 13) % mutated.len();
            mutated[i] = alphabet[(k * 7) % alphabet.len()];
            corpus.push(mutated.into_iter().collect());
        }
        if s.len() > 1 {
            corpus.push(s[..s.len() / 2].to_string());
        }
    }

    // The oracle-backed learning-time path, for the agreement check below:
    // the compiled tokenization (takes-if-executable / skips-if-looping) is
    // an approximation of the Mat-backed `conv_τ`, so its agreement with the
    // oracle path on real learned grammars is an empirical claim — this pins
    // it as a regression test across all five Table-1 languages.
    let learned = result.as_learned_language();
    let oracle_path = LearnedParser::new(&learned);

    let mut members = 0usize;
    for s in &corpus {
        if !s.is_ascii() {
            continue;
        }
        let before = compiled.recognize(s);
        let after = reloaded.recognize(s);
        assert_eq!(before, after, "{}: verdict drift on {s:?}", lang.name());
        assert_eq!(
            before,
            oracle_path.accepts(&mat, s),
            "{}: compiled scan disagrees with the oracle-backed path on {s:?}",
            lang.name()
        );
        match (compiled.parse(s), reloaded.parse(s)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{}: tree drift on {s:?}", lang.name());
                assert!(a.validate(reloaded.vpg()), "{}: invalid tree on {s:?}", lang.name());
                members += 1;
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{}: error drift on {s:?}", lang.name()),
            (a, b) => panic!("{}: parse verdict drift on {s:?}: {a:?} vs {b:?}", lang.name()),
        }
    }
    assert!(members >= 30, "{}: only {members} members exercised", lang.name());

    // Every seed is served by the reloaded artifact — recall survives the
    // round trip, with no Mat in sight.
    for seed in lang.seeds() {
        assert!(
            reloaded.recognize(&seed),
            "{}: reloaded artifact rejects seed {seed:?}",
            lang.name()
        );
    }
}

#[test]
fn json_artifact_round_trip() {
    round_trip(&Json::new());
}

#[test]
fn lisp_artifact_round_trip() {
    round_trip(&Lisp::new());
}

#[test]
fn xml_artifact_round_trip() {
    round_trip(&Xml::new());
}

#[test]
fn while_artifact_round_trip() {
    round_trip(&WhileLang::new());
}

#[test]
fn mathexpr_artifact_round_trip() {
    round_trip(&MathExpr::new());
}

#[test]
fn corrupted_artifacts_fail_with_typed_errors() {
    let lang = Lisp::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result =
        VStar::new(VStarConfig::default()).learn(&mat, &lang.alphabet(), &lang.seeds()).unwrap();
    let compiled = result.compile().unwrap();
    let json = compiled.to_json();

    // Truncation: invalid JSON.
    let truncated = CompiledGrammar::from_json(&json[..json.len() / 2]);
    assert!(matches!(truncated, Err(ArtifactError::Json(_))), "{truncated:?}");

    // Version bump: typed mismatch naming both versions.
    let bumped = json.replacen("\"version\": 1", "\"version\": 2", 1);
    match CompiledGrammar::from_json(&bumped) {
        Err(ArtifactError::UnsupportedVersion { found: 2, supported: 1 }) => {}
        other => panic!("expected a version mismatch, got {other:?}"),
    }

    // Field vandalism: typed format error, no panic.
    let vandalized = json.replacen("\"mode\"", "\"mood\"", 1);
    let e = CompiledGrammar::from_json(&vandalized);
    assert!(matches!(e, Err(ArtifactError::Format { .. })), "{e:?}");
}

#[test]
fn inconsistent_artifacts_fail_integrity_checks() {
    use vstar_parser::MAX_MATCHER_STATES;
    use vstar_vpl::grammar::figure1_grammar;

    let compiled = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
    let json = compiled.to_json();

    // A matcher DFA declaring an absurd state count: each index is in range,
    // so the per-field bounds checks pass, but accepting the document would
    // let a later re-save materialize the full declared range. The load must
    // reject it up front, and quickly.
    let huge = format!(
        "\"dfa\": {{\"alphabet\":[\"a\"],\"states\":{},\"initial\":0,\
         \"accepting\":[],\"transitions\":[]}}",
        MAX_MATCHER_STATES + 1
    );
    let inflated = json.replacen("\"literal\": \"a\"", &huge, 1);
    assert_ne!(inflated, json, "the figure-1 artifact should carry a literal 'a' matcher");
    let e = CompiledGrammar::from_json(&inflated);
    assert!(matches!(e, Err(ArtifactError::Integrity { .. })), "{e:?}");

    // A tokenizer with an extra pair the tagging knows nothing about: every
    // field is well-formed in isolation, only the cross-layer view is broken.
    let extra_pair = json.replacen(
        "\"pairs\": [",
        "\"pairs\": [{\"call\": {\"literal\": \"q\"}, \"ret\": {\"literal\": \"z\"}},",
        1,
    );
    assert_ne!(extra_pair, json);
    let e = CompiledGrammar::from_json(&extra_pair);
    assert!(matches!(e, Err(ArtifactError::Integrity { .. })), "{e:?}");
    let text = e.unwrap_err().to_string();
    assert!(text.contains("integrity"), "{text}");
}
