//! End-to-end daemon tests over real sockets: concurrent multi-grammar
//! serving, hot reload with pinned streaming sessions, admin endpoints, and
//! the UTF-8 carry guarantee driven through the framed protocol.

use std::sync::Arc;

use vstar_parser::CompiledGrammar;
use vstar_serve::{AccessLog, Client, ClientError, Daemon, GrammarRegistry};
use vstar_telemetry::MetricsRegistry;
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{Tagging, VpgBuilder};

fn dyck() -> CompiledGrammar {
    let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
    let mut b = VpgBuilder::new(tagging);
    let s = b.nonterminal("S");
    b.match_rule(s, '(', s, ')', s);
    b.empty_rule(s);
    b.linear_rule(s, 'x', s);
    CompiledGrammar::from_vpg(&b.build(s).unwrap()).unwrap()
}

/// A grammar whose word alphabet contains 3-byte UTF-8 characters (the
/// private-use markers token mode uses): derives exactly `⊳τ*⊲` shapes.
fn multibyte() -> (CompiledGrammar, char, char) {
    let call = vstar::tokenizer::call_marker(0);
    let ret = vstar::tokenizer::return_marker(0);
    let tagging = Tagging::from_pairs([(call, ret)]).unwrap();
    let mut b = VpgBuilder::new(tagging);
    let s = b.nonterminal("S");
    let e = b.nonterminal("E");
    b.match_rule(s, call, e, ret, e);
    b.linear_rule(e, 'τ', e);
    b.empty_rule(e);
    (CompiledGrammar::from_vpg(&b.build(s).unwrap()).unwrap(), call, ret)
}

fn start_daemon() -> (Daemon, Arc<GrammarRegistry>, Arc<MetricsRegistry>, AccessLog) {
    let registry = Arc::new(GrammarRegistry::new());
    registry.publish("fig1", CompiledGrammar::from_vpg(&figure1_grammar()).unwrap());
    registry.publish("dyck", dyck());
    let metrics = Arc::new(MetricsRegistry::new());
    let (access_log, _) = AccessLog::in_memory();
    let daemon = Daemon::start(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Arc::clone(&metrics),
        access_log.clone(),
    )
    .unwrap();
    (daemon, registry, metrics, access_log)
}

#[test]
fn concurrent_connections_serve_multiple_grammars_with_exact_attribution() {
    let (daemon, _registry, metrics, access_log) = start_daemon();
    let addr = daemon.addr();

    let cases: [(&str, &str, bool); 4] = [
        ("fig1", "agcdcdhbcd", true),
        ("fig1", "cdx", false),
        ("dyck", "(x(x))x", true),
        ("dyck", ")(", false),
    ];
    std::thread::scope(|scope| {
        for t in 0..4 {
            let cases = &cases;
            scope.spawn(move || {
                let mut client = Client::connect(addr, &format!("t{t}")).unwrap();
                for &(grammar, input, expect) in cases {
                    // One-shot path.
                    assert_eq!(client.recognize(grammar, input).unwrap(), expect);
                    // Streaming path, re-beginning per input.
                    client.begin(grammar).unwrap();
                    for chunk in input.as_bytes().chunks(3) {
                        client.data(chunk).unwrap();
                    }
                    assert_eq!(client.end().unwrap(), expect, "{grammar} {input:?}");
                }
            });
        }
    });

    // Attribution is exact: 4 threads × 4 cases × 2 paths = 32 requests,
    // partitioned 8-per-(grammar, connection) cell, and the per-connection
    // rows sum to the grammar rows sum to the grand totals.
    let snap = metrics.snapshot();
    assert_eq!(snap.totals.requests, 32);
    assert_eq!(snap.totals.accepted, 16);
    assert_eq!(snap.totals.rejected, 16);
    assert_eq!(snap.totals.errors, 0);
    assert_eq!(snap.connections.len(), 8, "2 grammars × 4 labelled connections");
    for row in &snap.connections {
        assert_eq!(row.counts.requests, 4, "{row:?}");
    }
    let mut by_connection = vstar_telemetry::Counts::default();
    for row in &snap.connections {
        by_connection.absorb(&row.counts);
    }
    let mut by_grammar = vstar_telemetry::Counts::default();
    for row in &snap.grammars {
        by_grammar.absorb(&row.counts);
    }
    assert_eq!(by_connection, snap.totals);
    assert_eq!(by_grammar, snap.totals);
    // One access record per request, under the chosen labels.
    let records = access_log.records();
    assert_eq!(records.len(), 32);
    assert!(records.iter().all(|r| r.kind == "access" && r.name.starts_with('t')));
}

#[test]
fn hot_reload_pins_open_sessions_and_audits_the_swap() {
    let (daemon, registry, _metrics, access_log) = start_daemon();
    let addr = daemon.addr();

    let mut streamer = Client::connect(addr, "streamer").unwrap();
    let ok = streamer.begin("fig1").unwrap();
    assert!(ok.starts_with("ok v=1 "), "{ok}");
    streamer.data(b"agcd").unwrap();

    // Mid-stream, hot-reload "fig1" to a *different* language.
    let mut admin = Client::connect(addr, "admin").unwrap();
    let reply = admin.publish("fig1", &dyck().to_json()).unwrap();
    assert!(reply.starts_with("ok v=2 "), "{reply}");

    // The open session still runs the pinned v1 automaton...
    streamer.data(b"cdhbcd").unwrap();
    assert!(streamer.end().unwrap(), "pinned session must finish on v1");
    // ...while a fresh begin and one-shot queries see v2.
    let ok = streamer.begin("fig1").unwrap();
    assert!(ok.starts_with("ok v=2 "), "{ok}");
    streamer.data(b"(x)").unwrap();
    assert!(streamer.end().unwrap());
    assert!(admin.recognize("fig1", "(x)").unwrap());
    assert!(!admin.recognize("fig1", "agcdcdhbcd").unwrap());

    // The audit trail shows the swap with both fingerprints.
    let audit = registry.audit();
    assert_eq!(audit.len(), 3, "two seed publishes + one reload");
    let swap = &audit[2];
    assert_eq!(swap.grammar, "fig1");
    assert_eq!(swap.version, 2);
    assert!(swap.old_hash.is_some());
    assert_ne!(swap.old_hash, Some(swap.new_hash));
    // The reload is mirrored into the access log's journal schema.
    let reloads: Vec<_> = access_log.records().into_iter().filter(|r| r.kind == "reload").collect();
    assert_eq!(reloads.len(), 1);
    assert_eq!(reloads[0].path, "fig1");
    assert_eq!(reloads[0].fields.get("version"), Some(&2));
    assert_eq!(reloads[0].fields.get("new_hash"), Some(&swap.new_hash));
}

#[test]
fn admin_endpoints_expose_health_metrics_and_grammar_cards() {
    let (daemon, registry, _metrics, _log) = start_daemon();
    let mut client = Client::connect(daemon.addr(), "admin").unwrap();

    let health = client.admin("/healthz").unwrap();
    assert_eq!(health, "ok generation=2 grammars=2");

    client.recognize("fig1", "cd").unwrap();
    client.recognize("dyck", "bogus!").unwrap();
    let metrics_text = client.admin("/metrics").unwrap();
    assert!(metrics_text.contains("# TYPE vstar_requests_total counter"));
    assert!(metrics_text.contains("vstar_requests_total{grammar=\"fig1\",connection=\"admin\"} 1"));
    assert!(metrics_text
        .contains("vstar_requests_rejected_total{grammar=\"dyck\",connection=\"admin\"} 1"));
    assert!(metrics_text.contains("vstar_request_latency_microseconds_count{grammar=\"fig1\"} 1"));

    let grammars = client.admin("/grammars").unwrap();
    let doc = serde_json::from_str(&grammars).unwrap();
    let cards = doc.as_array().unwrap();
    assert_eq!(cards.len(), 2);
    let fig1 = cards.iter().find(|c| c.get("name").unwrap().as_str() == Some("fig1")).unwrap();
    let entry = registry.get("fig1").unwrap();
    assert_eq!(fig1.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(
        fig1.get("artifact_hash").unwrap().as_str(),
        Some(format!("{:016x}", entry.hash).as_str())
    );
    let stats = fig1.get("stats").unwrap();
    assert_eq!(
        stats.get("automaton_states").unwrap().as_u64(),
        Some(entry.grammar.stats().automaton_states)
    );
    assert_eq!(stats.get("mode").unwrap().as_str(), Some("characters"));

    // Unknown endpoints and grammars are server errors, not hangs.
    match client.admin("/nope") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown-endpoint"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    match client.recognize("missing", "x") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown-grammar"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
}

/// The ISSUE's UTF-8 satellite: stream a word containing 3-byte characters
/// through the daemon, split at *every* byte position (including
/// mid-codepoint), and require the verdict to match whole-word recognition.
#[test]
fn chunk_boundaries_mid_codepoint_never_change_verdicts() {
    let (grammar, call, ret) = multibyte();
    let registry = Arc::new(GrammarRegistry::new());
    registry.publish("mb", grammar);
    let metrics = Arc::new(MetricsRegistry::new());
    let (access_log, _) = AccessLog::in_memory();
    let daemon =
        Daemon::start("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&metrics), access_log)
            .unwrap();

    let member = format!("{call}τ{ret}");
    let non_member = format!("{call}τ{ret}{ret}");
    let entry = registry.get("mb").unwrap();

    let mut client = Client::connect(daemon.addr(), "splitter").unwrap();
    client.begin("mb").unwrap();
    let mut requests = 0u64;
    for (input, expect) in [(&member, true), (&non_member, false)] {
        let bytes = input.as_bytes();
        assert_eq!(entry.grammar.recognize_word(input), expect);
        // Every single split point: [..i] then [i..].
        for i in 0..=bytes.len() {
            client.data(&bytes[..i]).unwrap();
            client.data(&bytes[i..]).unwrap();
            assert_eq!(client.end().unwrap(), expect, "split at byte {i} of {input:?}");
            requests += 1;
        }
        // And one byte at a time.
        for b in bytes {
            client.data(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(client.end().unwrap(), expect, "byte-at-a-time {input:?}");
        requests += 1;
    }
    // A dangling partial codepoint at end-of-input must reject, not panic.
    client.data(&member.as_bytes()[..member.len() - 1]).unwrap();
    assert!(!client.end().unwrap());
    requests += 1;

    let snap = metrics.snapshot();
    assert_eq!(snap.totals.requests, requests);
    assert_eq!(snap.totals.errors, 0);
}

#[test]
fn protocol_errors_are_counted_and_survivable() {
    let (daemon, _registry, metrics, _log) = start_daemon();
    let mut client = Client::connect(daemon.addr(), "errs").unwrap();

    // End without a session.
    match client.end() {
        Err(ClientError::Server(msg)) => assert!(msg.contains("no-session"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Unknown grammar on begin.
    match client.begin("ghost") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown-grammar"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Late hello (after the first request) and bad opcodes, driven over a
    // raw stream with the public protocol helpers.
    {
        let mut raw = std::net::TcpStream::connect(daemon.addr()).unwrap();
        let query = vstar_serve::encode_named(vstar_serve::op::QUERY, "fig1", b"cd");
        vstar_serve::write_frame(&mut raw, &query).unwrap();
        let reply = vstar_serve::read_frame(&mut raw).unwrap().unwrap();
        assert_eq!(reply, b"+accept");
        let mut hello = vec![vstar_serve::op::HELLO];
        hello.extend_from_slice(b"late");
        vstar_serve::write_frame(&mut raw, &hello).unwrap();
        let reply = vstar_serve::read_frame(&mut raw).unwrap().unwrap();
        assert!(reply.starts_with(b"-late-hello"), "{reply:?}");
        vstar_serve::write_frame(&mut raw, &[0xff]).unwrap();
        let reply = vstar_serve::read_frame(&mut raw).unwrap().unwrap();
        assert!(reply.starts_with(b"-bad-opcode"), "{reply:?}");
    }
    // The connection that errored still serves.
    assert!(client.recognize("fig1", "cd").unwrap());
    let snap = metrics.snapshot();
    assert!(snap.totals.errors >= 3, "{:?}", snap.totals);
    assert!(snap.connections.iter().any(|r| r.grammar == "_protocol" && r.counts.errors > 0));
}
