//! The daemon's length-prefixed wire protocol (see `docs/PROTOCOL.md`).
//!
//! Every message in either direction is one *frame*: a 4-byte big-endian
//! payload length followed by that many payload bytes. Client payloads start
//! with a one-byte opcode; server payloads start with `+` (success) or `-`
//! (error) followed by UTF-8 text or, for admin endpoints, the endpoint body.
//!
//! The frame layer is deliberately dumb — no compression, no checksums, no
//! pipelining guarantees beyond TCP's own ordering — because the protocol's
//! interesting property lives one layer up: `D` (data) frames may split the
//! input at *any* byte boundary, including mid-codepoint, and the verdict
//! must not change (the [`vstar_parser::SessionState`] UTF-8 carry buffer is
//! what makes that hold; the daemon's tests drive it through real sockets).

use std::io::{Read, Write};

/// Hard cap on a single frame's payload (16 MiB). A peer announcing more is
/// treated as a protocol error, never an allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Client opcodes (the first payload byte of a client frame).
pub mod op {
    /// `H <label>` — name this connection for metrics and access logs. Must
    /// precede any `B`/`D`/`E`/`Q`; optional otherwise (the daemon assigns
    /// `conn-<n>` to anonymous connections).
    pub const HELLO: u8 = b'H';
    /// `B <grammar>` — begin a streaming session bound to `<grammar>`,
    /// pinning the grammar version current at this moment. Replies
    /// `+ok v=<version> g=<generation>`.
    pub const BEGIN: u8 = b'B';
    /// `D <bytes>` — append input bytes to the open streaming session. Not
    /// acknowledged. Chunks may split UTF-8 sequences anywhere.
    pub const DATA: u8 = b'D';
    /// `E` — end the streamed input and ask for the verdict. Replies
    /// `+accept` or `+reject`; the session resets and stays bound, so the
    /// next `D` starts a fresh input against the same pinned grammar.
    pub const END: u8 = b'E';
    /// `Q <u16 name_len> <grammar> <input>` — one-shot recognition of a raw
    /// input against the *current* version of `<grammar>` (token-mode
    /// grammars tokenize; this is [`vstar_parser::CompiledGrammar::recognize`]
    /// semantics, unlike the word-level `B`/`D`/`E` stream). Replies
    /// `+accept`/`+reject`.
    pub const QUERY: u8 = b'Q';
    /// `A <path>` — admin endpoint: `/healthz`, `/metrics` (Prometheus text)
    /// or `/grammars` (JSON array of grammar cards).
    pub const ADMIN: u8 = b'A';
    /// `P <u16 name_len> <grammar> <artifact-json>` — publish (hot-reload) a
    /// compiled artifact under `<grammar>`. Replies
    /// `+ok v=<version> g=<generation>`.
    pub const PUBLISH: u8 = b'P';
}

/// Writes one frame: 4-byte big-endian length, then `payload`.
///
/// # Errors
///
/// I/O errors from the underlying writer; payloads over [`MAX_FRAME_LEN`]
/// are rejected as `InvalidInput` without writing anything.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("cap fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages).
///
/// # Errors
///
/// I/O errors, an EOF inside a frame (`UnexpectedEof`), or a declared length
/// over [`MAX_FRAME_LEN`] (`InvalidData` — the bytes are not read).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer declared a {len}-byte frame (cap {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except a clean EOF before the *first* byte is `Eof` rather
/// than an error (EOF after at least one byte is still `UnexpectedEof`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<ReadOutcome> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(ReadOutcome::Eof),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Encodes the `<u16 name_len> <name> <rest>` payload tail used by `Q` and
/// `P` frames.
///
/// # Panics
///
/// Panics if `name` exceeds `u16::MAX` bytes (grammar names are short
/// identifiers; the daemon-side decoder rejects oversized declarations
/// gracefully instead).
#[must_use]
pub fn encode_named(op: u8, name: &str, rest: &[u8]) -> Vec<u8> {
    let name_len = u16::try_from(name.len()).expect("grammar names are short");
    let mut payload = Vec::with_capacity(3 + name.len() + rest.len());
    payload.push(op);
    payload.extend_from_slice(&name_len.to_be_bytes());
    payload.extend_from_slice(name.as_bytes());
    payload.extend_from_slice(rest);
    payload
}

/// Decodes the `<u16 name_len> <name> <rest>` tail of a `Q`/`P` payload
/// (everything after the opcode byte). Returns `None` when the declared name
/// length overruns the payload or the name is not UTF-8.
#[must_use]
pub fn decode_named(tail: &[u8]) -> Option<(&str, &[u8])> {
    let (len_bytes, rest) = tail.split_at_checked(2)?;
    let name_len = u16::from_be_bytes([len_bytes[0], len_bytes[1]]) as usize;
    let (name, rest) = rest.split_at_checked(name_len)?;
    Some((std::str::from_utf8(name).ok()?, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0u8, 255, 7]).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&[0u8, 255, 7][..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at a boundary");
    }

    #[test]
    fn truncated_frames_and_oversized_declarations_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        // Cut inside the payload.
        let mut r = &wire[..wire.len() - 2];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // Cut inside the length prefix.
        let mut r = &wire[..2];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // A declared length over the cap errors without allocating it.
        let huge = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Writing over the cap is rejected up front.
        struct NoWrite;
        impl Write for NoWrite {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                panic!("must not write");
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut NoWrite, &big).is_err());
    }

    #[test]
    fn named_payloads_round_trip_and_reject_overruns() {
        let payload = encode_named(op::QUERY, "json", b"{\"k\":1}");
        assert_eq!(payload[0], op::QUERY);
        let (name, rest) = decode_named(&payload[1..]).unwrap();
        assert_eq!(name, "json");
        assert_eq!(rest, b"{\"k\":1}");
        // Empty name and empty rest are fine.
        let payload = encode_named(op::PUBLISH, "", b"");
        let (name, rest) = decode_named(&payload[1..]).unwrap();
        assert_eq!(name, "");
        assert!(rest.is_empty());
        // Declared name length past the payload end.
        assert!(decode_named(&[0, 10, b'a']).is_none());
        assert!(decode_named(&[0]).is_none());
        // Non-UTF-8 names are rejected.
        assert!(decode_named(&[0, 1, 0xff]).is_none());
    }
}
