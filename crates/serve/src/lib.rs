//! `vstar-serve`: a multi-grammar serving daemon for compiled V-Star
//! artifacts, built around a first-class observability plane.
//!
//! The ROADMAP's north star is serving learned grammars (V-Star, PLDI 2024)
//! through their compiled derivative automata (Jia, Kumar & Tan, OOPSLA 2021)
//! to live traffic. This crate is that serving layer, dependency-free over
//! `std::net`:
//!
//! * [`GrammarRegistry`] — a versioned name → artifact map with atomic
//!   hot-reload and a [`ReloadAudit`] trail (old/new artifact fingerprint,
//!   monotonic swap generation).
//! * [`Daemon`] — a thread-per-connection TCP server speaking a length-
//!   prefixed framed protocol (`docs/PROTOCOL.md`): streaming `B`/`D`/`E`
//!   sessions over [`vstar_parser::SessionState`] (chunks may split UTF-8
//!   codepoints anywhere), one-shot `Q` recognition, `P` hot-reload, and
//!   admin endpoints `/healthz`, `/metrics` (Prometheus text exposition from
//!   the process-wide [`vstar_telemetry::MetricsRegistry`]) and `/grammars`
//!   (per-grammar [`vstar_parser::GrammarStats`] cards).
//! * [`AccessLog`] — structured JSONL access logs reusing the telemetry
//!   journal schema: one record per request (grammar, version, verdict,
//!   bytes, wall µs) plus hot-reload audit records.
//! * [`Client`] — a small blocking client for the same protocol.
//!
//! The observability plane follows the repository's determinism convention:
//! request/byte/verdict counters and request-size histograms are pure
//! functions of the served inputs (committed and diffed by the `daemon`
//! bench), while wall-clock latencies stay reported-only. The serve path is
//! oracle-free by construction — it sees only [`vstar_parser::CompiledGrammar`]
//! values, which embed no membership oracle to call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_log;
mod client;
mod protocol;
mod registry;
mod server;

pub use access_log::{AccessLog, SharedBuf};
pub use client::{Client, ClientError};
pub use protocol::{decode_named, encode_named, op, read_frame, write_frame, MAX_FRAME_LEN};
pub use registry::{GrammarEntry, GrammarRegistry, ReloadAudit};
pub use server::Daemon;
