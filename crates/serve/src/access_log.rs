//! Structured JSONL access logs reusing the telemetry journal schema.
//!
//! Every record is one [`vstar_telemetry::JournalEvent`] rendered as a single
//! JSON line, so the daemon's access log and the pipeline's event journal
//! share one schema and one toolchain:
//!
//! * kind `"access"` — one request: `path` is `<grammar>@v<version>`, `name`
//!   is the connection label, `fields` carry `accepted` (0/1), `bytes`,
//!   `wall_us` and the registry `generation` the request was served at.
//! * kind `"reload"` — one hot reload: `path` is the grammar name, `name` is
//!   `"reload"`, `fields` carry `generation`, `version`, `new_hash` and
//!   (after the first publish) `old_hash` as raw FNV-64 values.
//!
//! `wall_us` is wall-clock and therefore *operational only*: determinism
//! gates count records and read the deterministic fields, never the latency.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use vstar_telemetry::JournalEvent;

/// The shared sink behind an in-memory [`AccessLog`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The bytes written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("no panics under this lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("no panics under this lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct LogInner {
    sink: Box<dyn Write + Send>,
    seq: u64,
    records: Vec<JournalEvent>,
}

/// A thread-safe JSONL access log: every record goes to the sink as one JSON
/// line and is retained in memory for gates ([`AccessLog::records`]).
#[derive(Clone)]
pub struct AccessLog {
    inner: Arc<Mutex<LogInner>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("no panics under this lock");
        f.debug_struct("AccessLog").field("records", &inner.records.len()).finish()
    }
}

impl AccessLog {
    /// A log writing JSONL to `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        AccessLog { inner: Arc::new(Mutex::new(LogInner { sink, seq: 0, records: Vec::new() })) }
    }

    /// An in-memory log; the returned [`SharedBuf`] reads back the JSONL.
    #[must_use]
    pub fn in_memory() -> (Self, SharedBuf) {
        let buf = SharedBuf::default();
        (Self::new(Box::new(buf.clone())), buf)
    }

    /// Appends one record, assigning the next `seq` and writing its JSON
    /// line. Sink write failures are swallowed (logging must never take the
    /// serve path down); the in-memory copy is kept regardless.
    pub fn push(&self, kind: &str, path: String, name: String, fields: BTreeMap<String, u64>) {
        let mut inner = self.inner.lock().expect("no panics under this lock");
        let event = JournalEvent { seq: inner.seq, kind: kind.to_string(), path, name, fields };
        inner.seq += 1;
        let line = serde_json::to_string(&event).expect("journal events serialize");
        let _ = writeln!(inner.sink, "{line}");
        inner.records.push(event);
    }

    /// One `"access"` record: a request against `grammar`@`version` from
    /// `connection`, with its verdict, payload size, latency and the registry
    /// generation it was served at.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &self,
        grammar: &str,
        version: u64,
        connection: &str,
        accepted: bool,
        bytes: u64,
        wall_us: u64,
        generation: u64,
    ) {
        let mut fields = BTreeMap::new();
        fields.insert("accepted".to_string(), u64::from(accepted));
        fields.insert("bytes".to_string(), bytes);
        fields.insert("wall_us".to_string(), wall_us);
        fields.insert("generation".to_string(), generation);
        self.push("access", format!("{grammar}@v{version}"), connection.to_string(), fields);
    }

    /// One `"reload"` record mirroring a [`crate::ReloadAudit`] event.
    pub fn reload(&self, audit: &crate::ReloadAudit) {
        let mut fields = BTreeMap::new();
        fields.insert("generation".to_string(), audit.generation);
        fields.insert("version".to_string(), audit.version);
        fields.insert("new_hash".to_string(), audit.new_hash);
        if let Some(old) = audit.old_hash {
            fields.insert("old_hash".to_string(), old);
        }
        self.push("reload", audit.grammar.clone(), "reload".to_string(), fields);
    }

    /// Every record pushed so far, in `seq` order.
    #[must_use]
    pub fn records(&self) -> Vec<JournalEvent> {
        self.inner.lock().expect("no panics under this lock").records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_one_json_line_each_in_seq_order() {
        let (log, buf) = AccessLog::in_memory();
        log.access("json", 1, "c0", true, 42, 17, 3);
        log.access("xml", 2, "c1", false, 7, 5, 3);
        log.reload(&crate::ReloadAudit {
            generation: 4,
            grammar: "json".into(),
            version: 2,
            old_hash: Some(0xdead),
            new_hash: 0xbeef,
        });

        let records = log.records();
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert_eq!(records[0].kind, "access");
        assert_eq!(records[0].path, "json@v1");
        assert_eq!(records[0].name, "c0");
        assert_eq!(records[0].fields.get("accepted"), Some(&1));
        assert_eq!(records[0].fields.get("bytes"), Some(&42));
        assert_eq!(records[1].fields.get("accepted"), Some(&0));
        assert_eq!(records[2].kind, "reload");
        assert_eq!(records[2].fields.get("old_hash"), Some(&0xdead));
        assert_eq!(records[2].fields.get("new_hash"), Some(&0xbeef));

        let text = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
        }
        // First-publish reloads omit old_hash entirely.
        let (log, _) = AccessLog::in_memory();
        log.reload(&crate::ReloadAudit {
            generation: 1,
            grammar: "g".into(),
            version: 1,
            old_hash: None,
            new_hash: 1,
        });
        assert!(!log.records()[0].fields.contains_key("old_hash"));
    }

    #[test]
    fn log_is_shared_across_clones() {
        let (log, _) = AccessLog::in_memory();
        let clone = log.clone();
        log.access("g", 1, "a", true, 1, 1, 1);
        clone.access("g", 1, "b", false, 2, 1, 1);
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[1].seq, 1);
    }
}
