//! A small blocking client for the daemon's framed protocol.
//!
//! Used by the `daemon` bench driver and the integration tests; thin enough
//! that any other implementation of the wire format (see `docs/PROTOCOL.md`)
//! interoperates.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{encode_named, op, read_frame, write_frame};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server replied with a `-` error line.
    Server(String),
    /// The server's reply violated the protocol (no `+`/`-` prefix, early
    /// close, non-UTF-8 text).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O failed: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and, when `label` is non-empty, sends the hello frame naming
    /// this connection for metrics and access logs.
    ///
    /// # Errors
    ///
    /// Connection failure, or any error reply to the hello.
    pub fn connect(addr: impl ToSocketAddrs, label: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client { stream };
        if !label.is_empty() {
            let mut payload = vec![op::HELLO];
            payload.extend_from_slice(label.as_bytes());
            client.round_trip(&payload)?;
        }
        Ok(client)
    }

    fn send(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Sends `payload` and returns the text of the `+` reply (without the
    /// sign byte); a `-` reply becomes [`ClientError::Server`].
    fn round_trip(&mut self, payload: &[u8]) -> Result<String, ClientError> {
        self.send(payload)?;
        let reply = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        let text = String::from_utf8(reply)
            .map_err(|_| ClientError::Protocol("non-UTF-8 reply".into()))?;
        match text.as_bytes().first() {
            Some(b'+') => Ok(text[1..].to_string()),
            Some(b'-') => Err(ClientError::Server(text[1..].to_string())),
            _ => Err(ClientError::Protocol(format!("reply without sign byte: {text:?}"))),
        }
    }

    /// Begins a streaming session bound to `grammar` (pinning its current
    /// version); returns the server's `ok v=<version> g=<generation>` line.
    ///
    /// # Errors
    ///
    /// Unknown grammar names and wire failures.
    pub fn begin(&mut self, grammar: &str) -> Result<String, ClientError> {
        let mut payload = vec![op::BEGIN];
        payload.extend_from_slice(grammar.as_bytes());
        self.round_trip(&payload)
    }

    /// Streams one chunk of input bytes into the open session (no reply;
    /// chunks may split UTF-8 sequences anywhere).
    ///
    /// # Errors
    ///
    /// Wire failures.
    pub fn data(&mut self, chunk: &[u8]) -> Result<(), ClientError> {
        let mut payload = Vec::with_capacity(1 + chunk.len());
        payload.push(op::DATA);
        payload.extend_from_slice(chunk);
        self.send(&payload)
    }

    /// Ends the streamed input and returns the verdict. The session resets
    /// and stays bound to the same pinned grammar.
    ///
    /// # Errors
    ///
    /// Wire failures, or `-no-session` when nothing was begun.
    pub fn end(&mut self) -> Result<bool, ClientError> {
        let reply = self.round_trip(&[op::END])?;
        match reply.as_str() {
            "accept" => Ok(true),
            "reject" => Ok(false),
            other => Err(ClientError::Protocol(format!("unexpected verdict {other:?}"))),
        }
    }

    /// One-shot recognition of `input` against the current version of
    /// `grammar` (raw-input semantics: token-mode grammars tokenize).
    ///
    /// # Errors
    ///
    /// Unknown grammar names and wire failures.
    pub fn recognize(&mut self, grammar: &str, input: &str) -> Result<bool, ClientError> {
        let reply = self.round_trip(&encode_named(op::QUERY, grammar, input.as_bytes()))?;
        match reply.as_str() {
            "accept" => Ok(true),
            "reject" => Ok(false),
            other => Err(ClientError::Protocol(format!("unexpected verdict {other:?}"))),
        }
    }

    /// Fetches an admin endpoint (`/healthz`, `/metrics`, `/grammars`) and
    /// returns its body.
    ///
    /// # Errors
    ///
    /// Unknown endpoints and wire failures.
    pub fn admin(&mut self, path: &str) -> Result<String, ClientError> {
        let mut payload = vec![op::ADMIN];
        payload.extend_from_slice(path.as_bytes());
        self.round_trip(&payload)
    }

    /// Publishes (hot-reloads) an artifact document under `grammar`; returns
    /// the server's `ok v=<version> g=<generation>` line.
    ///
    /// # Errors
    ///
    /// Malformed artifacts ([`ClientError::Server`]), oversized documents
    /// (frames are capped at [`crate::MAX_FRAME_LEN`]), wire failures.
    pub fn publish(&mut self, grammar: &str, artifact_json: &str) -> Result<String, ClientError> {
        self.round_trip(&encode_named(op::PUBLISH, grammar, artifact_json.as_bytes()))
    }
}
