//! The versioned multi-grammar registry with hot-reload and audit trail.
//!
//! A [`GrammarRegistry`] maps grammar names to [`GrammarEntry`]s — immutable
//! `Arc`-held snapshots of a compiled artifact plus its version, swap
//! generation and content fingerprint. Publishing under an existing name
//! replaces the entry atomically (readers holding the old `Arc` keep serving
//! the version they pinned; the `vstar-serve` daemon pins per streaming
//! session, so a hot reload never changes the grammar under a half-fed
//! input). Every publish appends a [`ReloadAudit`] event carrying the old and
//! new artifact hashes and the monotonic swap generation, which the daemon
//! also mirrors into the access log's journal-schema records.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde::Serialize;
use vstar_parser::CompiledGrammar;

/// One immutable registered grammar: the artifact plus its identity.
#[derive(Debug)]
pub struct GrammarEntry {
    /// Registry name the entry is published under.
    pub name: String,
    /// Per-name version, starting at 1 and bumped by each publish.
    pub version: u64,
    /// Registry-wide swap generation at which this entry was published.
    pub generation: u64,
    /// [`CompiledGrammar::artifact_fingerprint`] of the artifact.
    pub hash: u64,
    /// The compiled artifact itself.
    pub grammar: Arc<CompiledGrammar>,
}

/// One hot-reload audit event: which grammar changed, from what to what.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ReloadAudit {
    /// Registry-wide swap generation of this publish (monotonic).
    pub generation: u64,
    /// Grammar name published.
    pub grammar: String,
    /// The version this publish installed.
    pub version: u64,
    /// Fingerprint of the replaced artifact (`None` on first publish).
    pub old_hash: Option<u64>,
    /// Fingerprint of the installed artifact.
    pub new_hash: u64,
}

/// A process-wide, thread-safe name → [`GrammarEntry`] map with versioned
/// hot-reload.
///
/// Lookups take the read lock only long enough to clone an `Arc`; publishes
/// take the write lock only to swap a map entry. Nothing on the serve path
/// ever recompiles or copies an artifact.
#[derive(Debug, Default)]
pub struct GrammarRegistry {
    entries: RwLock<BTreeMap<String, Arc<GrammarEntry>>>,
    generation: AtomicU64,
    audit: Mutex<Vec<ReloadAudit>>,
}

impl GrammarRegistry {
    /// An empty registry at generation 0.
    #[must_use]
    pub fn new() -> Self {
        GrammarRegistry::default()
    }

    /// Publishes `grammar` under `name`: version 1 for a new name, the next
    /// version for an existing one. Returns the installed entry and appends
    /// the audit event.
    pub fn publish(&self, name: &str, grammar: CompiledGrammar) -> Arc<GrammarEntry> {
        let hash = grammar.artifact_fingerprint();
        let mut entries = self.entries.write().expect("no panics under this lock");
        let old = entries.get(name);
        let version = old.map_or(1, |e| e.version + 1);
        let old_hash = old.map(|e| e.hash);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(GrammarEntry {
            name: name.to_string(),
            version,
            generation,
            hash,
            grammar: Arc::new(grammar),
        });
        entries.insert(name.to_string(), Arc::clone(&entry));
        drop(entries);
        self.audit.lock().expect("no panics under this lock").push(ReloadAudit {
            generation,
            grammar: name.to_string(),
            version,
            old_hash,
            new_hash: hash,
        });
        vstar_telemetry::event(
            "serve.reload",
            &[
                ("generation", generation),
                ("version", version),
                ("old_hash", old_hash.unwrap_or(0)),
                ("new_hash", hash),
            ],
        );
        entry
    }

    /// The current entry for `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<GrammarEntry>> {
        self.entries.read().expect("no panics under this lock").get(name).cloned()
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries.read().expect("no panics under this lock").keys().cloned().collect()
    }

    /// The current entries, sorted by name.
    #[must_use]
    pub fn entries(&self) -> Vec<Arc<GrammarEntry>> {
        self.entries.read().expect("no panics under this lock").values().cloned().collect()
    }

    /// Number of registered grammars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.read().expect("no panics under this lock").len()
    }

    /// Whether no grammar is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registry-wide swap generation: the number of publishes so far.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The hot-reload audit trail, in publish order.
    #[must_use]
    pub fn audit(&self) -> Vec<ReloadAudit> {
        self.audit.lock().expect("no panics under this lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::{Tagging, VpgBuilder};

    fn dyck() -> CompiledGrammar {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.match_rule(s, '(', s, ')', s);
        b.empty_rule(s);
        CompiledGrammar::from_vpg(&b.build(s).unwrap()).unwrap()
    }

    #[test]
    fn publish_versions_and_audits() {
        let registry = GrammarRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.get("fig1").is_none());

        let fig1 = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let fig1_hash = fig1.artifact_fingerprint();
        let first = registry.publish("fig1", fig1);
        assert_eq!((first.version, first.generation, first.hash), (1, 1, fig1_hash));

        let dyck_grammar = dyck();
        let dyck_hash = dyck_grammar.artifact_fingerprint();
        registry.publish("dyck", dyck_grammar);
        assert_eq!(registry.names(), ["dyck", "fig1"]);
        assert_eq!(registry.len(), 2);

        // Republishing bumps the per-name version and the global generation;
        // a same-artifact reload audits equal old/new hashes.
        let again =
            registry.publish("fig1", CompiledGrammar::from_vpg(&figure1_grammar()).unwrap());
        assert_eq!((again.version, again.generation), (2, 3));
        assert_eq!(registry.generation(), 3);
        let audit = registry.audit();
        assert_eq!(audit.len(), 3);
        assert_eq!(
            audit[0],
            ReloadAudit {
                generation: 1,
                grammar: "fig1".into(),
                version: 1,
                old_hash: None,
                new_hash: fig1_hash,
            }
        );
        assert_eq!(audit[1].new_hash, dyck_hash);
        assert_eq!(audit[2].old_hash, Some(fig1_hash));
        assert_eq!(audit[2].new_hash, fig1_hash);
        assert!(audit.windows(2).all(|w| w[0].generation < w[1].generation));
    }

    #[test]
    fn readers_keep_their_pinned_version_across_reloads() {
        let registry = GrammarRegistry::new();
        registry.publish("g", CompiledGrammar::from_vpg(&figure1_grammar()).unwrap());
        let pinned = registry.get("g").unwrap();
        // Hot-reload a *different* grammar under the same name.
        registry.publish("g", dyck());
        let current = registry.get("g").unwrap();
        assert_eq!(pinned.version, 1);
        assert_eq!(current.version, 2);
        assert_ne!(pinned.hash, current.hash);
        // The pinned artifact still serves the old language.
        assert!(pinned.grammar.recognize("agcdcdhbcd"));
        assert!(!pinned.grammar.recognize("()"));
        assert!(current.grammar.recognize("()"));
    }
}
