//! The serving daemon: a thread-per-connection TCP loop over the framed
//! protocol, wired into the observability plane.
//!
//! Every connection gets its own handler thread and its own
//! [`vstar_parser::SessionState`]; the compiled artifacts, the
//! [`MetricsRegistry`], the [`GrammarRegistry`] and the [`AccessLog`] are
//! shared. The request hot path touches exactly one metrics shard (its own
//! `(grammar, connection)` cell) and never blocks on another connection.
//!
//! Streaming sessions pin the grammar *entry* they began with: a hot reload
//! published mid-stream does not change the automaton under a half-fed input
//! (the old `Arc` keeps the old artifact alive); one-shot `Q` requests always
//! resolve the current version.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::Serialize;
use vstar_parser::{GrammarStats, SessionState};
use vstar_telemetry::{MetricsRegistry, MetricsShard};

use crate::access_log::AccessLog;
use crate::protocol::{decode_named, op, read_frame, write_frame};
use crate::registry::{GrammarEntry, GrammarRegistry};

/// Metrics key charged for requests that never resolve to a grammar
/// (unknown names, malformed frames, bad opcodes).
const PROTOCOL_GRAMMAR: &str = "_protocol";

/// One registered grammar as the `/grammars` endpoint reports it.
#[derive(Clone, Debug, Serialize)]
struct GrammarCard {
    name: String,
    version: u64,
    generation: u64,
    artifact_hash: String,
    stats: GrammarStats,
}

/// A running serving daemon; dropping it (or calling [`Daemon::shutdown`])
/// stops the accept loop.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Everything the connection handlers share.
struct Shared {
    registry: Arc<GrammarRegistry>,
    metrics: Arc<MetricsRegistry>,
    access_log: AccessLog,
    stop: Arc<AtomicBool>,
    conn_counter: AtomicU64,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port; see [`Daemon::addr`])
    /// and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when binding fails.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<GrammarRegistry>,
        metrics: Arc<MetricsRegistry>,
        access_log: AccessLog,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::new(Shared {
            registry,
            metrics,
            access_log,
            stop: Arc::clone(&stop),
            conn_counter: AtomicU64::new(0),
        });
        let accept_handles = Arc::clone(&conn_handles);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                });
                accept_handles.lock().expect("no panics under this lock").push(handle);
            }
        });
        Ok(Daemon { addr, stop, accept_handle: Some(accept_handle), conn_handles })
    }

    /// The bound address (the actual port when started with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept loop, and reaps finished connection
    /// threads. Connections still open are left to finish on their own (their
    /// threads end when the client hangs up) — disconnect clients first for a
    /// fully clean shutdown.
    pub fn shutdown(&mut self) {
        if self.accept_handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("no panics"));
        for handle in handles {
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection handler state: the label, the optional streaming session,
/// and the per-grammar shard cache.
struct Connection<'s> {
    shared: &'s Shared,
    label: String,
    /// Set once any non-hello frame arrives; a `H` after that is an error.
    label_locked: bool,
    /// The open streaming session: pinned entry, its shard, the state, the
    /// byte count of the current input, and the request start time.
    session: Option<StreamSession>,
    shards: std::collections::BTreeMap<String, Arc<MetricsShard>>,
}

struct StreamSession {
    entry: Arc<GrammarEntry>,
    shard: Arc<MetricsShard>,
    state: SessionState,
    bytes: u64,
    started: Option<Instant>,
}

impl Connection<'_> {
    fn shard(&mut self, grammar: &str) -> Arc<MetricsShard> {
        if let Some(shard) = self.shards.get(grammar) {
            return Arc::clone(shard);
        }
        let shard = self.shared.metrics.shard(grammar, &self.label);
        self.shards.insert(grammar.to_string(), Arc::clone(&shard));
        shard
    }

    fn protocol_error(&mut self) {
        self.shard(PROTOCOL_GRAMMAR).record_error();
    }
}

/// Runs one connection to completion: read a frame, dispatch, reply, repeat
/// until the peer hangs up or the wire breaks.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let n = shared.conn_counter.fetch_add(1, Ordering::Relaxed);
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut conn = Connection {
        shared,
        label: format!("conn-{n}"),
        label_locked: false,
        session: None,
        shards: std::collections::BTreeMap::new(),
    };
    use std::io::Write as _;
    while let Some(payload) = read_frame(&mut reader)? {
        if let Some(reply) = dispatch(&mut conn, &payload) {
            write_frame(&mut writer, &reply)?;
            writer.flush()?;
        }
    }
    Ok(())
}

/// Dispatches one client frame; `None` means no reply (data frames).
fn dispatch(conn: &mut Connection<'_>, payload: &[u8]) -> Option<Vec<u8>> {
    let Some((&opcode, tail)) = payload.split_first() else {
        conn.protocol_error();
        return Some(b"-empty-frame".to_vec());
    };
    match opcode {
        op::HELLO => {
            if conn.label_locked {
                conn.protocol_error();
                return Some(b"-late-hello: label must precede requests".to_vec());
            }
            match std::str::from_utf8(tail) {
                Ok(label) if !label.is_empty() => {
                    conn.label = label.to_string();
                    conn.label_locked = true;
                    Some(b"+ok".to_vec())
                }
                _ => {
                    conn.protocol_error();
                    Some(b"-bad-label: non-empty UTF-8 required".to_vec())
                }
            }
        }
        op::BEGIN => {
            conn.label_locked = true;
            let Ok(name) = std::str::from_utf8(tail) else {
                conn.protocol_error();
                return Some(b"-bad-grammar-name".to_vec());
            };
            let Some(entry) = conn.shared.registry.get(name) else {
                conn.protocol_error();
                return Some(format!("-unknown-grammar {name}").into_bytes());
            };
            let state = SessionState::new(&entry.grammar);
            let shard = conn.shard(name);
            let reply = format!("+ok v={} g={}", entry.version, entry.generation);
            conn.session = Some(StreamSession { entry, shard, state, bytes: 0, started: None });
            Some(reply.into_bytes())
        }
        op::DATA => {
            let Some(session) = conn.session.as_mut() else {
                conn.protocol_error();
                return Some(b"-no-session: send B first".to_vec());
            };
            if session.started.is_none() {
                session.started = Some(Instant::now());
            }
            session.bytes += tail.len() as u64;
            session.state.push_bytes(&session.entry.grammar, tail);
            None
        }
        op::END => {
            let Some(session) = conn.session.as_mut() else {
                conn.protocol_error();
                return Some(b"-no-session: send B first".to_vec());
            };
            let accepted = session.state.finish(&session.entry.grammar);
            let wall_us = session
                .started
                .take()
                .map_or(0, |t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
            let bytes = session.bytes;
            session.shard.record_request(bytes, accepted, wall_us);
            conn.shared.access_log.access(
                &session.entry.name,
                session.entry.version,
                &conn.label,
                accepted,
                bytes,
                wall_us,
                conn.shared.registry.generation(),
            );
            session.state.reset(&session.entry.grammar);
            session.bytes = 0;
            Some(if accepted { b"+accept".to_vec() } else { b"+reject".to_vec() })
        }
        op::QUERY => {
            conn.label_locked = true;
            let Some((name, input)) = decode_named(tail) else {
                conn.protocol_error();
                return Some(b"-bad-query-frame".to_vec());
            };
            let Ok(input) = std::str::from_utf8(input) else {
                conn.protocol_error();
                return Some(b"-bad-query-input: UTF-8 required".to_vec());
            };
            let Some(entry) = conn.shared.registry.get(name) else {
                conn.protocol_error();
                return Some(format!("-unknown-grammar {name}").into_bytes());
            };
            let started = Instant::now();
            let accepted = entry.grammar.recognize(input);
            let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let bytes = input.len() as u64;
            let name_owned = name.to_string();
            conn.shard(&name_owned).record_request(bytes, accepted, wall_us);
            conn.shared.access_log.access(
                &entry.name,
                entry.version,
                &conn.label,
                accepted,
                bytes,
                wall_us,
                conn.shared.registry.generation(),
            );
            Some(if accepted { b"+accept".to_vec() } else { b"+reject".to_vec() })
        }
        op::ADMIN => match tail {
            b"/healthz" => Some(
                format!(
                    "+ok generation={} grammars={}",
                    conn.shared.registry.generation(),
                    conn.shared.registry.len()
                )
                .into_bytes(),
            ),
            b"/metrics" => {
                let mut reply = b"+".to_vec();
                reply.extend_from_slice(conn.shared.metrics.render_prometheus().as_bytes());
                Some(reply)
            }
            b"/grammars" => {
                let cards: Vec<GrammarCard> = conn
                    .shared
                    .registry
                    .entries()
                    .iter()
                    .map(|e| GrammarCard {
                        name: e.name.clone(),
                        version: e.version,
                        generation: e.generation,
                        artifact_hash: format!("{:016x}", e.hash),
                        stats: e.grammar.stats(),
                    })
                    .collect();
                let mut reply = b"+".to_vec();
                reply.extend_from_slice(
                    serde_json::to_string(&cards).expect("cards serialize").as_bytes(),
                );
                Some(reply)
            }
            _ => {
                conn.protocol_error();
                Some(b"-unknown-endpoint: /healthz /metrics /grammars".to_vec())
            }
        },
        op::PUBLISH => {
            conn.label_locked = true;
            let Some((name, artifact)) = decode_named(tail) else {
                conn.protocol_error();
                return Some(b"-bad-publish-frame".to_vec());
            };
            if name.is_empty() {
                conn.protocol_error();
                return Some(b"-bad-grammar-name".to_vec());
            }
            let Ok(artifact) = std::str::from_utf8(artifact) else {
                conn.protocol_error();
                return Some(b"-bad-artifact: UTF-8 required".to_vec());
            };
            match vstar_parser::CompiledGrammar::from_json(artifact) {
                Ok(grammar) => {
                    let entry = conn.shared.registry.publish(name, grammar);
                    let audit =
                        conn.shared.registry.audit().pop().expect("publish appended an event");
                    conn.shared.access_log.reload(&audit);
                    Some(format!("+ok v={} g={}", entry.version, entry.generation).into_bytes())
                }
                Err(e) => {
                    conn.protocol_error();
                    Some(format!("-bad-artifact: {e}").into_bytes())
                }
            }
        }
        other => {
            conn.protocol_error();
            Some(format!("-bad-opcode {other:#04x}").into_bytes())
        }
    }
}
