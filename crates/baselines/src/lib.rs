//! GLADE-style and ARVADA-style grammar-inference baselines.
//!
//! The paper compares V-Star against two black-box grammar-inference tools:
//!
//! * **GLADE** (Bastani et al. 2017) first generalises seed strings into regular
//!   expressions (repetition and character-class generalisation steps, each checked
//!   with membership queries) and then merges the results. [`glade::Glade`]
//!   re-implements this regular-expression phase; like the original, it captures
//!   token-level structure well but cannot discover unbounded recursion, which is
//!   why its recall on recursive grammars is low (paper Table 1).
//! * **ARVADA** (Kulkarni et al. 2022) "bubbles" substrings of the seeds into fresh
//!   nonterminals and merges nonterminals whose yields are interchangeable under the
//!   oracle, which lets it discover recursion heuristically.
//!   [`arvada::Arvada`] re-implements the bubble-and-merge loop on character-level
//!   sequences.
//!
//! Both are faithful to the published algorithms' key ideas but deliberately
//! simplified (see DESIGN.md §5); they exist so that the Table-1 comparison can be
//! regenerated with the same oracles, seeds and metrics as V-Star.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arvada;
pub mod cfg;
pub mod glade;

pub use arvada::{Arvada, ArvadaConfig};
pub use cfg::{Cfg, SymbolRef};
pub use glade::{Glade, GladeConfig};

/// A learned grammar that can both recognise and generate strings — the interface
/// the evaluation harness needs to compute recall (membership of oracle samples)
/// and precision (oracle membership of grammar samples).
pub trait LearnedGrammar {
    /// Returns `true` if the learned grammar accepts `input`.
    fn accepts(&self, input: &str) -> bool;

    /// Samples one string from the learned grammar.
    fn sample(&self, rng: &mut dyn rand::RngCore, budget: usize) -> Option<String>;

    /// Number of unique membership queries spent learning this grammar.
    fn queries_used(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dyck(s: &str) -> bool {
        let mut d = 0i64;
        for c in s.chars() {
            match c {
                '(' => d += 1,
                ')' => {
                    d -= 1;
                    if d < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        d == 0
    }

    #[test]
    fn both_baselines_learn_something_from_dyck_seeds() {
        let seeds = vec!["(x)".to_string(), "((x)x)".to_string(), "x".to_string()];
        let glade = Glade::learn(&dyck, &seeds, &GladeConfig::default());
        let arvada = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for learned in [&glade as &dyn LearnedGrammar, &arvada as &dyn LearnedGrammar] {
            // Seeds must be accepted.
            for s in &seeds {
                assert!(learned.accepts(s), "seed {s:?} rejected");
            }
            // Samples must be generatable.
            let sample = learned.sample(&mut rng, 20);
            assert!(sample.is_some());
            assert!(learned.queries_used() > 0);
        }
    }
}
