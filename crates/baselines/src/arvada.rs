//! An ARVADA-style baseline (Kulkarni et al. 2022).
//!
//! ARVADA learns a CFG by "bubbling" substrings of the seeds into fresh
//! nonterminals and merging nonterminals whose yields are *interchangeable*: if
//! swapping the strings derived by two nonterminals (in the contexts where they
//! occur) keeps the inputs valid according to the oracle, the two are given the
//! same label. Merging a bubble with a nonterminal that occurs inside it creates
//! recursion, which is how ARVADA can learn nested structure heuristically.
//!
//! This implementation follows that recipe on character-level sequences:
//! character-class discovery by swap checks, repeated-span bubbling, and
//! interchangeability-based merging, with all checks counted as membership queries.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cfg::{Cfg, SymbolRef};
use crate::LearnedGrammar;

/// Configuration of the ARVADA-style learner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArvadaConfig {
    /// Maximum length (in symbols) of a bubbled span.
    pub max_bubble_len: usize,
    /// Number of bubbling/merging rounds.
    pub rounds: usize,
    /// Number of swap checks per interchangeability test.
    pub merge_checks: usize,
    /// RNG seed (the original tool is randomised; the paper reports means over 10
    /// runs).
    pub rng_seed: u64,
}

impl Default for ArvadaConfig {
    fn default() -> Self {
        ArvadaConfig { max_bubble_len: 4, rounds: 8, merge_checks: 4, rng_seed: 11 }
    }
}

/// The learned ARVADA-style grammar.
#[derive(Clone, Debug)]
pub struct Arvada {
    cfg: Cfg,
    queries: usize,
}

impl Arvada {
    /// Learns a CFG from the seeds and a membership oracle.
    pub fn learn(oracle: &dyn Fn(&str) -> bool, seeds: &[String], config: &ArvadaConfig) -> Self {
        let queries = Cell::new(0usize);
        let check = |s: &str| {
            queries.set(queries.get() + 1);
            oracle(s)
        };
        let mut learner = Learner::new(seeds, config);
        learner.discover_character_classes(&check);
        for _ in 0..config.rounds {
            if !learner.bubble_and_merge(&check) {
                break;
            }
        }
        Arvada { cfg: learner.into_cfg(), queries: queries.get() }
    }

    /// The learned CFG.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }
}

impl LearnedGrammar for Arvada {
    fn accepts(&self, input: &str) -> bool {
        self.cfg.accepts(input)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore, budget: usize) -> Option<String> {
        self.cfg.sample(rng, budget)
    }

    fn queries_used(&self) -> usize {
        self.queries
    }
}

/// Internal working representation: the start symbol's alternatives (one per seed)
/// plus a pool of learned nonterminals with their alternatives.
struct Learner {
    /// Alternatives of the start symbol, one sequence per seed.
    root_alts: Vec<Vec<Sym>>,
    /// Learned nonterminals: `classes[i]` = alternatives (sequences).
    classes: Vec<Vec<Vec<Sym>>>,
    rng: StdRng,
    config: ArvadaConfig,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Sym {
    T(char),
    N(usize),
}

impl Learner {
    fn new(seeds: &[String], config: &ArvadaConfig) -> Self {
        Learner {
            root_alts: seeds.iter().map(|s| s.chars().map(Sym::T).collect()).collect(),
            classes: Vec::new(),
            rng: StdRng::seed_from_u64(config.rng_seed),
            config: config.clone(),
        }
    }

    /// A shortest-ish terminal yield of a symbol (for building check strings).
    fn yield_of(&self, sym: Sym, depth: usize) -> String {
        match sym {
            Sym::T(c) => c.to_string(),
            Sym::N(i) if depth < 8 => {
                let alts = &self.classes[i];
                let alt = alts.iter().min_by_key(|a| a.len()).cloned().unwrap_or_default();
                alt.iter().map(|&s| self.yield_of(s, depth + 1)).collect()
            }
            Sym::N(_) => String::new(),
        }
    }

    fn yield_of_seq(&self, seq: &[Sym]) -> String {
        seq.iter().map(|&s| self.yield_of(s, 0)).collect()
    }

    /// Discovers character classes: characters that are pairwise interchangeable in
    /// every root alternative are grouped under one nonterminal (this mirrors
    /// ARVADA's pre-tokenization of digit/letter runs).
    fn discover_character_classes(&mut self, check: &dyn Fn(&str) -> bool) {
        let mut chars: BTreeSet<char> = BTreeSet::new();
        for alt in &self.root_alts {
            for &s in alt {
                if let Sym::T(c) = s {
                    chars.insert(c);
                }
            }
        }
        // Only letters and digits are candidates for classing (punctuation is
        // almost never interchangeable in practical grammars).
        let candidates: Vec<char> =
            chars.iter().copied().filter(|c| c.is_ascii_alphanumeric()).collect();
        let mut groups: Vec<Vec<char>> = Vec::new();
        'outer: for &c in &candidates {
            for group in &mut groups {
                let rep = group[0];
                if self.interchangeable_chars(check, c, rep) {
                    group.push(c);
                    continue 'outer;
                }
            }
            groups.push(vec![c]);
        }
        for group in groups.into_iter().filter(|g| g.len() > 1) {
            let class_id = self.classes.len();
            self.classes.push(group.iter().map(|&c| vec![Sym::T(c)]).collect());
            let members: BTreeSet<char> = group.into_iter().collect();
            for alt in &mut self.root_alts {
                for sym in alt.iter_mut() {
                    if let Sym::T(c) = *sym {
                        if members.contains(&c) {
                            *sym = Sym::N(class_id);
                        }
                    }
                }
            }
        }
    }

    fn interchangeable_chars(&self, check: &dyn Fn(&str) -> bool, a: char, b: char) -> bool {
        // Swap a few occurrences of `a` with `b` (and vice versa) in the seeds.
        let mut tested = 0usize;
        for alt in &self.root_alts {
            let rendered = self.yield_of_seq(alt);
            let chars: Vec<char> = rendered.chars().collect();
            for (i, &c) in chars.iter().enumerate() {
                let replacement = if c == a {
                    b
                } else if c == b {
                    a
                } else {
                    continue;
                };
                let mut mutated = chars.clone();
                mutated[i] = replacement;
                if !check(&mutated.iter().collect::<String>()) {
                    return false;
                }
                tested += 1;
                if tested >= self.config.merge_checks * 2 {
                    return true;
                }
            }
        }
        tested > 0
    }

    /// One round of bubbling + merging. Returns `false` when nothing changed.
    fn bubble_and_merge(&mut self, check: &dyn Fn(&str) -> bool) -> bool {
        // Candidate spans: contiguous symbol sequences of the root alternatives.
        let mut span_counts: BTreeMap<Vec<Sym>, usize> = BTreeMap::new();
        for alt in &self.root_alts {
            for len in 2..=self.config.max_bubble_len.min(alt.len()) {
                for start in 0..=alt.len() - len {
                    *span_counts.entry(alt[start..start + len].to_vec()).or_default() += 1;
                }
            }
        }
        let mut spans: Vec<(Vec<Sym>, usize)> = span_counts.into_iter().collect();
        // Prefer frequent, long spans.
        spans.sort_by_key(|(span, count)| (usize::MAX - count, usize::MAX - span.len()));

        for (span, count) in spans.into_iter().take(24) {
            // Try to merge the span with an existing nonterminal (including the
            // class nonterminals); this is what creates recursion.
            let span_yield = self.yield_of_seq(&span);
            for class_id in 0..self.classes.len() {
                if self.span_matches_class(check, &span, class_id) {
                    self.classes[class_id].push(span.clone());
                    self.replace_span_everywhere(&span, Sym::N(class_id));
                    return true;
                }
            }
            // Otherwise bubble the span into a fresh nonterminal if it repeats.
            if count >= 2 && !span_yield.is_empty() {
                let id = self.classes.len();
                self.classes.push(vec![span.clone()]);
                self.replace_span_everywhere(&span, Sym::N(id));
                return true;
            }
        }
        false
    }

    /// Would replacing an occurrence of `class_id` with the span's yield (and an
    /// occurrence of the span with a class yield) keep the seeds valid?
    fn span_matches_class(
        &mut self,
        check: &dyn Fn(&str) -> bool,
        span: &[Sym],
        class_id: usize,
    ) -> bool {
        let span_yield = self.yield_of_seq(span);
        let class_yield = {
            let alts = &self.classes[class_id];
            let idx = self.rng.gen_range(0..alts.len());
            self.yield_of_seq(&alts[idx].clone())
        };
        if span_yield == class_yield {
            return false;
        }
        let mut checks = 0usize;
        let mut passed = 0usize;
        for alt in &self.root_alts {
            // Replace one occurrence of the span (as a symbol subsequence) with the
            // class yield, and one occurrence of the class symbol with the span
            // yield, and ask the oracle.
            if let Some(pos) = find_subsequence(alt, span) {
                let mut rendered = String::new();
                rendered.push_str(&self.yield_of_seq(&alt[..pos]));
                rendered.push_str(&class_yield);
                rendered.push_str(&self.yield_of_seq(&alt[pos + span.len()..]));
                checks += 1;
                if check(&rendered) {
                    passed += 1;
                }
            }
            if let Some(pos) = alt.iter().position(|&s| s == Sym::N(class_id)) {
                let mut rendered = String::new();
                rendered.push_str(&self.yield_of_seq(&alt[..pos]));
                rendered.push_str(&span_yield);
                rendered.push_str(&self.yield_of_seq(&alt[pos + 1..]));
                checks += 1;
                if check(&rendered) {
                    passed += 1;
                }
            }
            if checks >= self.config.merge_checks {
                break;
            }
        }
        checks > 0 && passed == checks
    }

    fn replace_span_everywhere(&mut self, span: &[Sym], replacement: Sym) {
        let replace = |seq: &mut Vec<Sym>| {
            while let Some(pos) = find_subsequence(seq, span) {
                seq.splice(pos..pos + span.len(), [replacement]);
            }
        };
        for alt in &mut self.root_alts {
            replace(alt);
        }
        let n_classes = self.classes.len();
        for class in &mut self.classes {
            for alt in class.iter_mut() {
                // Avoid trivially self-recursive single-symbol alternatives.
                if (alt.len() == span.len() || n_classes == 0) && alt.as_slice() == span {
                    continue;
                }
                replace(alt);
            }
        }
    }

    fn into_cfg(self) -> Cfg {
        let mut cfg = Cfg::new();
        let root = cfg.add_nonterminal("Root");
        cfg.set_start(root);
        let class_ids: Vec<usize> =
            (0..self.classes.len()).map(|i| cfg.add_nonterminal(&format!("N{i}"))).collect();
        let to_ref = |s: &Sym| match s {
            Sym::T(c) => SymbolRef::Terminal(*c),
            Sym::N(i) => SymbolRef::Nonterminal(class_ids[*i]),
        };
        for alt in &self.root_alts {
            cfg.add_rule(root, alt.iter().map(to_ref).collect());
        }
        for (i, alts) in self.classes.iter().enumerate() {
            for alt in alts {
                cfg.add_rule(class_ids[i], alt.iter().map(to_ref).collect());
            }
        }
        cfg
    }
}

fn find_subsequence(haystack: &[Sym], needle: &[Sym]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn dyck(s: &str) -> bool {
        let mut d = 0i64;
        for c in s.chars() {
            match c {
                '(' => d += 1,
                ')' => {
                    d -= 1;
                    if d < 0 {
                        return false;
                    }
                }
                'x' | 'y' => {}
                _ => return false,
            }
        }
        d == 0
    }

    #[test]
    fn seeds_are_always_accepted() {
        let seeds = vec!["(x)".to_string(), "((y)x)".to_string(), "x".to_string()];
        let arvada = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        for s in &seeds {
            assert!(arvada.accepts(s), "{s:?}");
        }
        assert!(arvada.queries_used() > 0);
        assert!(arvada.cfg().rule_count() >= seeds.len());
    }

    #[test]
    fn character_classes_generalise_terminals() {
        // x and y are interchangeable plain characters; Arvada should class them.
        let seeds = vec!["(x)".to_string(), "(y)".to_string()];
        let arvada = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        assert!(arvada.accepts("(x)"));
        assert!(arvada.accepts("(y)"));
    }

    #[test]
    fn samples_come_from_the_learned_grammar() {
        let seeds = vec!["(x)".to_string(), "((x)x)".to_string()];
        let arvada = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let s = arvada.sample(&mut rng, 20).unwrap();
            assert!(arvada.accepts(&s), "sample {s:?} rejected by its own grammar");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let seeds = vec!["(x)".to_string(), "x".to_string()];
        let a1 = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        let a2 = Arvada::learn(&dyck, &seeds, &ArvadaConfig::default());
        assert_eq!(a1.queries_used(), a2.queries_used());
        assert_eq!(a1.cfg().rule_count(), a2.cfg().rule_count());
    }
}
