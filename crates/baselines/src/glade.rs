//! A GLADE-style baseline (Bastani et al. 2017).
//!
//! GLADE's first phase generalises each seed string into a regular expression by
//! proposing *generalisation steps* — replacing a substring with a character class
//! or a repetition — and keeping a step only if membership queries confirm it. Its
//! second phase merges the per-seed expressions. This module implements that
//! regular-expression phase (character-class generalisation, repetition detection,
//! and union across seeds). Because the result is regular, recall on recursive
//! (visibly pushdown) languages is structurally limited, which reproduces the shape
//! of GLADE's row in the paper's Table 1: high precision, low recall, few queries.

use std::cell::Cell;

use rand::Rng;

use vstar_automata::nfa::CharClass;
use vstar_automata::regex::{Ast, Regex};

use crate::LearnedGrammar;

/// Configuration of the GLADE-style learner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GladeConfig {
    /// Sample strings drawn per character-class generalisation check.
    pub class_check_samples: usize,
    /// Maximum repetition-block length considered.
    pub max_repeat_block: usize,
}

impl Default for GladeConfig {
    fn default() -> Self {
        GladeConfig { class_check_samples: 4, max_repeat_block: 4 }
    }
}

/// The learned GLADE-style grammar: a union of per-seed regular expressions.
#[derive(Clone, Debug)]
pub struct Glade {
    regexes: Vec<Regex>,
    queries: usize,
}

impl Glade {
    /// Learns a union-of-regexes grammar from the seeds and a membership oracle.
    pub fn learn(oracle: &dyn Fn(&str) -> bool, seeds: &[String], config: &GladeConfig) -> Self {
        let queries = Cell::new(0usize);
        let check = |s: &str| {
            queries.set(queries.get() + 1);
            oracle(s)
        };
        let mut regexes = Vec::new();
        for seed in seeds {
            let ast = generalize_seed(&check, seed, config);
            regexes.push(Regex::from_ast(ast));
        }
        Glade { regexes, queries: queries.get() }
    }

    /// The per-seed regular expressions.
    #[must_use]
    pub fn regexes(&self) -> &[Regex] {
        &self.regexes
    }
}

impl LearnedGrammar for Glade {
    fn accepts(&self, input: &str) -> bool {
        self.regexes.iter().any(|r| r.is_match(input))
    }

    fn sample(&self, rng: &mut dyn rand::RngCore, budget: usize) -> Option<String> {
        if self.regexes.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.regexes.len());
        Some(sample_ast(self.regexes[idx].ast(), rng, budget))
    }

    fn queries_used(&self) -> usize {
        self.queries
    }
}

/// One atom of the intermediate generalisation: either still a literal run or an
/// already-generalised sub-expression.
#[derive(Clone, Debug)]
enum Piece {
    Literal(String),
    General(Ast),
}

fn pieces_to_ast(pieces: &[Piece]) -> Ast {
    let parts: Vec<Ast> = pieces
        .iter()
        .map(|p| match p {
            Piece::Literal(s) => Ast::literal(s),
            Piece::General(a) => a.clone(),
        })
        .collect();
    match parts.len() {
        0 => Ast::Empty,
        1 => parts.into_iter().next().expect("one"),
        _ => Ast::Concat(parts),
    }
}

fn render_with_replacement(
    seed_chars: &[char],
    range: (usize, usize),
    replacement: &str,
) -> String {
    let mut out: String = seed_chars[..range.0].iter().collect();
    out.push_str(replacement);
    out.extend(seed_chars[range.1..].iter());
    out
}

/// Generalises one seed into a regex AST: character classes for digit/letter runs
/// first (checked in the original seed context), then repetition blocks inside the
/// remaining literal pieces.
fn generalize_seed(check: &dyn Fn(&str) -> bool, seed: &str, config: &GladeConfig) -> Ast {
    let chars: Vec<char> = seed.chars().collect();
    let n = chars.len();

    // Phase 1: character-class generalisation of maximal digit/letter runs.
    // Each piece remembers the character range it came from so later checks can be
    // phrased in the original seed context.
    let mut pieces: Vec<(Piece, (usize, usize))> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        let class: Option<(CharClass, Vec<&str>)> = if c.is_ascii_digit() {
            Some((
                CharClass { any: false, negated: false, ranges: vec![('0', '9')] },
                vec!["0", "7", "42", "908"],
            ))
        } else if c.is_ascii_lowercase() {
            Some((
                CharClass { any: false, negated: false, ranges: vec![('a', 'z')] },
                vec!["a", "zz", "qrs", "b"],
            ))
        } else {
            None
        };
        if let Some((class, samples)) = class {
            let mut j = i;
            while j < n && class.matches(chars[j]) {
                j += 1;
            }
            let ok = samples
                .iter()
                .take(config.class_check_samples)
                .all(|rep| check(&render_with_replacement(&chars, (i, j), rep)));
            if ok {
                pieces.push((Piece::General(Ast::Plus(Box::new(Ast::Class(class)))), (i, j)));
            } else {
                pieces.push((Piece::Literal(chars[i..j].iter().collect()), (i, j)));
            }
            i = j;
        } else {
            pieces.push((Piece::Literal(c.to_string()), (i, i + 1)));
            i += 1;
        }
    }

    // Phase 2: repetition detection inside the remaining literal pieces. A block w
    // at an original position is wrapped in (w)+ when repeating it 2 and 3 times in
    // the original context keeps the string valid.
    let mut out: Vec<Piece> = Vec::new();
    for (piece, (start, end)) in pieces {
        match piece {
            Piece::General(a) => out.push(Piece::General(a)),
            Piece::Literal(text) => {
                let piece_chars: Vec<char> = text.chars().collect();
                let mut k = 0usize;
                while k < piece_chars.len() {
                    let mut matched = None;
                    for len in 1..=config.max_repeat_block.min(piece_chars.len() - k) {
                        let block: String = piece_chars[k..k + len].iter().collect();
                        let abs = (start + k, start + k + len);
                        debug_assert!(abs.1 <= end);
                        let ok = [2usize, 3].iter().all(|&reps| {
                            check(&render_with_replacement(&chars, abs, &block.repeat(reps)))
                        });
                        if ok {
                            matched = Some((len, block));
                            break;
                        }
                    }
                    match matched {
                        Some((len, block)) => {
                            out.push(Piece::General(Ast::Plus(Box::new(Ast::literal(&block)))));
                            k += len;
                        }
                        None => {
                            match out.last_mut() {
                                Some(Piece::Literal(s)) => s.push(piece_chars[k]),
                                _ => out.push(Piece::Literal(piece_chars[k].to_string())),
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
    }
    pieces_to_ast(&out)
}

/// Random sample of an AST with a loose size budget.
fn sample_ast(ast: &Ast, rng: &mut dyn rand::RngCore, budget: usize) -> String {
    match ast {
        Ast::Empty => String::new(),
        Ast::Class(c) => sample_class(c, rng).to_string(),
        Ast::Concat(parts) => {
            parts.iter().map(|p| sample_ast(p, rng, budget / parts.len().max(1))).collect()
        }
        Ast::Alt(parts) => {
            if parts.is_empty() {
                String::new()
            } else {
                let idx = rng.gen_range(0..parts.len());
                sample_ast(&parts[idx], rng, budget)
            }
        }
        Ast::Star(inner) => {
            let reps = rng.gen_range(0..=2.min(budget.max(1)));
            (0..reps).map(|_| sample_ast(inner, rng, budget / 2)).collect()
        }
        Ast::Plus(inner) => {
            let reps = rng.gen_range(1..=2.min(budget.max(1)));
            (0..reps).map(|_| sample_ast(inner, rng, budget / 2)).collect()
        }
        Ast::Opt(inner) => {
            if rng.gen_bool(0.5) {
                sample_ast(inner, rng, budget)
            } else {
                String::new()
            }
        }
    }
}

fn sample_class(c: &CharClass, rng: &mut dyn rand::RngCore) -> char {
    if c.any || c.negated {
        return 'a';
    }
    if c.ranges.is_empty() {
        return 'a';
    }
    let (lo, hi) = c.ranges[rng.gen_range(0..c.ranges.len())];
    let span = (hi as u32) - (lo as u32) + 1;
    char::from_u32(lo as u32 + rng.gen_range(0..span)).unwrap_or(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn json_like(s: &str) -> bool {
        // Tiny JSON-ish oracle for tests: {"<letters>":<digits>} objects and digits.
        fn value(b: &[u8], pos: usize) -> Option<usize> {
            match b.get(pos)? {
                b'{' => {
                    let mut p = pos + 1;
                    if b.get(p) == Some(&b'}') {
                        return Some(p + 1);
                    }
                    loop {
                        if b.get(p) != Some(&b'"') {
                            return None;
                        }
                        p += 1;
                        while b.get(p).is_some_and(u8::is_ascii_lowercase) {
                            p += 1;
                        }
                        if b.get(p) != Some(&b'"') {
                            return None;
                        }
                        p += 1;
                        if b.get(p) != Some(&b':') {
                            return None;
                        }
                        p = value(b, p + 1)?;
                        match b.get(p) {
                            Some(b'}') => return Some(p + 1),
                            Some(b',') => p += 1,
                            _ => return None,
                        }
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut p = pos;
                    while b.get(p).is_some_and(u8::is_ascii_digit) {
                        p += 1;
                    }
                    Some(p)
                }
                _ => None,
            }
        }
        value(s.as_bytes(), 0) == Some(s.len())
    }

    #[test]
    fn learns_classes_and_accepts_variants() {
        let oracle = json_like;
        let seeds = vec!["{\"a\":1}".to_string(), "7".to_string()];
        let glade = Glade::learn(&oracle, &seeds, &GladeConfig::default());
        // Seeds accepted.
        for s in &seeds {
            assert!(glade.accepts(s));
        }
        // Character-class generalisation: other keys/numbers are accepted.
        assert!(glade.accepts("{\"xyz\":42}"));
        assert!(glade.accepts("123"));
        // But unbounded nesting is out of reach for the regular approximation.
        assert!(!glade.accepts("{\"a\":{\"b\":1}}"));
        assert!(glade.queries_used() > 0);
    }

    #[test]
    fn precision_of_samples() {
        let oracle = json_like;
        let seeds = vec!["{\"k\":3}".to_string(), "{}".to_string()];
        let glade = Glade::learn(&oracle, &seeds, &GladeConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let mut valid = 0usize;
        let total = 50usize;
        for _ in 0..total {
            let s = glade.sample(&mut rng, 20).unwrap();
            assert!(glade.accepts(&s), "sample {s:?} not accepted by its own grammar");
            if oracle(&s) {
                valid += 1;
            }
        }
        // GLADE-style learning is precision-oriented: most samples should be valid.
        assert!(valid * 2 > total, "precision too low: {valid}/{total}");
    }

    #[test]
    fn repetition_generalisation() {
        // Language: a+ b
        let oracle = |s: &str| {
            let b = s.as_bytes();
            !b.is_empty()
                && b[b.len() - 1] == b'b'
                && b[..b.len() - 1].iter().all(|&c| c == b'a')
                && b.len() >= 2
        };
        let seeds = vec!["aab".to_string()];
        let glade = Glade::learn(&oracle, &seeds, &GladeConfig::default());
        assert!(glade.accepts("aab"));
        assert!(glade.accepts("aaaab"));
        // Repetition blocks are one-or-more, so the invalid "b" stays rejected.
        assert!(!glade.accepts("b"));
    }

    #[test]
    fn plus_sampling_respects_budget() {
        // Regression: `Ast::Plus` sampling used `2.max(1)` (a constant 2) instead
        // of capping the repetition count by the remaining budget like `Ast::Star`
        // does, so exhausted budgets could still double the output.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let plus = Ast::Plus(Box::new(Ast::literal("a")));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = sample_ast(&plus, &mut rng, 1);
            assert_eq!(s, "a", "budget 1 admits exactly one repetition");
        }
    }
}
