//! A small context-free-grammar container shared by the baselines.
//!
//! Both baselines produce (or can be viewed as producing) a CFG over characters.
//! Recognition uses a chaotic-iteration chart parser (sound for arbitrary CFGs,
//! including left-recursive ones, on the short strings used in the evaluation) and
//! generation uses a budget-bounded random derivation.

use std::collections::{BTreeSet, HashMap};

use rand::Rng;

/// A grammar symbol: a terminal character or a reference to a nonterminal.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymbolRef {
    /// A terminal character.
    Terminal(char),
    /// A nonterminal, identified by index.
    Nonterminal(usize),
}

/// A context-free grammar with character terminals.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    names: Vec<String>,
    /// `rules[nt]` = alternatives; each alternative is a sequence of symbols.
    rules: Vec<Vec<Vec<SymbolRef>>>,
    start: usize,
}

impl Cfg {
    /// Creates an empty grammar; the first added nonterminal becomes the start.
    #[must_use]
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Adds a nonterminal and returns its index.
    pub fn add_nonterminal(&mut self, name: &str) -> usize {
        self.names.push(name.to_owned());
        self.rules.push(Vec::new());
        self.names.len() - 1
    }

    /// Adds an alternative to a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `nt` is out of range.
    pub fn add_rule(&mut self, nt: usize, rhs: Vec<SymbolRef>) {
        assert!(nt < self.rules.len(), "unknown nonterminal");
        if !self.rules[nt].contains(&rhs) {
            self.rules[nt].push(rhs);
        }
    }

    /// Sets the start nonterminal.
    pub fn set_start(&mut self, nt: usize) {
        self.start = nt;
    }

    /// The start nonterminal.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of nonterminals.
    #[must_use]
    pub fn nonterminal_count(&self) -> usize {
        self.names.len()
    }

    /// Number of rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// The alternatives of a nonterminal.
    #[must_use]
    pub fn alternatives(&self, nt: usize) -> &[Vec<SymbolRef>] {
        &self.rules[nt]
    }

    /// Mutable access to the alternatives of a nonterminal (used by learners when
    /// merging nonterminals).
    pub fn alternatives_mut(&mut self, nt: usize) -> &mut Vec<Vec<SymbolRef>> {
        &mut self.rules[nt]
    }

    /// Returns `true` if the grammar derives `input` from the start symbol.
    #[must_use]
    pub fn accepts(&self, input: &str) -> bool {
        if self.rules.is_empty() {
            return false;
        }
        let chars: Vec<char> = input.chars().collect();
        let n = chars.len();
        // reach[nt][i] = set of j such that nt ⇒* chars[i..j]
        let mut reach: HashMap<(usize, usize), BTreeSet<usize>> = HashMap::new();
        loop {
            let mut changed = false;
            for nt in 0..self.rules.len() {
                for i in 0..=n {
                    let mut ends: BTreeSet<usize> = BTreeSet::new();
                    for alt in &self.rules[nt] {
                        let mut positions: BTreeSet<usize> = BTreeSet::from([i]);
                        for sym in alt {
                            let mut next: BTreeSet<usize> = BTreeSet::new();
                            for &p in &positions {
                                match sym {
                                    SymbolRef::Terminal(c) => {
                                        if p < n && chars[p] == *c {
                                            next.insert(p + 1);
                                        }
                                    }
                                    SymbolRef::Nonterminal(m) => {
                                        if let Some(set) = reach.get(&(*m, p)) {
                                            next.extend(set.iter().copied());
                                        }
                                    }
                                }
                            }
                            positions = next;
                            if positions.is_empty() {
                                break;
                            }
                        }
                        ends.extend(positions);
                    }
                    let entry = reach.entry((nt, i)).or_default();
                    let before = entry.len();
                    entry.extend(ends);
                    if entry.len() != before {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reach.get(&(self.start, 0)).is_some_and(|set| set.contains(&n))
    }

    /// Minimum derivable length per nonterminal (`None` = unproductive).
    #[must_use]
    pub fn min_lengths(&self) -> Vec<Option<usize>> {
        let mut min = vec![None; self.rules.len()];
        loop {
            let mut changed = false;
            for (nt, alts) in self.rules.iter().enumerate() {
                for alt in alts {
                    let mut total = Some(0usize);
                    for sym in alt {
                        total = match (total, sym) {
                            (Some(t), SymbolRef::Terminal(_)) => Some(t + 1),
                            (Some(t), SymbolRef::Nonterminal(m)) => min[*m].map(|x| t + x),
                            (None, _) => None,
                        };
                    }
                    if let Some(t) = total {
                        if min[nt].is_none_or(|cur| t < cur) {
                            min[nt] = Some(t);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return min;
            }
        }
    }

    /// Samples a random derivation (budget-bounded).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, budget: usize) -> Option<String> {
        let min = self.min_lengths();
        min[self.start]?;
        let mut out = String::new();
        self.expand(self.start, rng, budget, &min, &mut out, 0)?;
        Some(out)
    }

    fn expand<R: Rng + ?Sized>(
        &self,
        nt: usize,
        rng: &mut R,
        budget: usize,
        min: &[Option<usize>],
        out: &mut String,
        depth: usize,
    ) -> Option<usize> {
        if depth > 64 {
            return None;
        }
        let alt_min = |alt: &Vec<SymbolRef>| -> Option<usize> {
            alt.iter()
                .map(|s| match s {
                    SymbolRef::Terminal(_) => Some(1usize),
                    SymbolRef::Nonterminal(m) => min[*m],
                })
                .try_fold(0usize, |acc, x| x.map(|v| acc + v))
        };
        let alts: Vec<(&Vec<SymbolRef>, usize)> =
            self.rules[nt].iter().filter_map(|a| alt_min(a).map(|m| (a, m))).collect();
        if alts.is_empty() {
            return None;
        }
        let fitting: Vec<&(&Vec<SymbolRef>, usize)> =
            alts.iter().filter(|(_, m)| *m <= budget).collect();
        let (alt, _) = if fitting.is_empty() {
            *alts.iter().min_by_key(|(_, m)| *m).expect("nonempty")
        } else {
            *fitting[rng.gen_range(0..fitting.len())]
        };
        let mut remaining = budget;
        for sym in alt {
            match sym {
                SymbolRef::Terminal(c) => {
                    out.push(*c);
                    remaining = remaining.saturating_sub(1);
                }
                SymbolRef::Nonterminal(m) => {
                    remaining = self.expand(*m, rng, remaining, min, out, depth + 1)?;
                }
            }
        }
        Some(remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dyck_cfg() -> Cfg {
        // S → ε | ( S ) S | x S
        let mut g = Cfg::new();
        let s = g.add_nonterminal("S");
        g.set_start(s);
        g.add_rule(s, vec![]);
        g.add_rule(
            s,
            vec![
                SymbolRef::Terminal('('),
                SymbolRef::Nonterminal(s),
                SymbolRef::Terminal(')'),
                SymbolRef::Nonterminal(s),
            ],
        );
        g.add_rule(s, vec![SymbolRef::Terminal('x'), SymbolRef::Nonterminal(s)]);
        g
    }

    #[test]
    fn recognition() {
        let g = dyck_cfg();
        assert!(g.accepts(""));
        assert!(g.accepts("x"));
        assert!(g.accepts("(x)"));
        assert!(g.accepts("((x)x)x"));
        assert!(!g.accepts("("));
        assert!(!g.accepts("(x))"));
        assert!(!g.accepts("y"));
    }

    #[test]
    fn left_recursive_grammar_recognition() {
        // E → E + a | a
        let mut g = Cfg::new();
        let e = g.add_nonterminal("E");
        g.set_start(e);
        g.add_rule(
            e,
            vec![SymbolRef::Nonterminal(e), SymbolRef::Terminal('+'), SymbolRef::Terminal('a')],
        );
        g.add_rule(e, vec![SymbolRef::Terminal('a')]);
        assert!(g.accepts("a"));
        assert!(g.accepts("a+a"));
        assert!(g.accepts("a+a+a"));
        assert!(!g.accepts("+a"));
        assert!(!g.accepts("a+"));
    }

    #[test]
    fn sampling_members() {
        let g = dyck_cfg();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = g.sample(&mut rng, 16).unwrap();
            assert!(g.accepts(&s), "{s:?}");
        }
    }

    #[test]
    fn min_lengths_and_counts() {
        let g = dyck_cfg();
        assert_eq!(g.min_lengths()[0], Some(0));
        assert_eq!(g.nonterminal_count(), 1);
        assert_eq!(g.rule_count(), 3);
        assert_eq!(g.alternatives(0).len(), 3);
    }

    #[test]
    fn empty_grammar_rejects() {
        let g = Cfg::new();
        assert!(!g.accepts(""));
    }
}
