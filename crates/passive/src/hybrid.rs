//! Hybrid learning: passive construction first, active refinement second.
//!
//! The passive learner ([`crate::learner`]) is cheap but approximate; the
//! active pipeline (`VStar::learn_refined`) is exact on its test pool but
//! pays for every membership query. The hybrid path spends the corpus twice
//! to make the active run cheaper:
//!
//! 1. Every corpus word is preloaded into the [`Mat`] as a known member
//!    ([`Mat::assume`]) — a positive corpus *is* a bag of already-answered
//!    membership queries, so the corpus-evidence refinement loop never pays
//!    for them again.
//! 2. The passive automaton's merged classes and mined contexts are distilled
//!    into an [`ObservationSeed`](vstar::ObservationSeed), so the k-SEVPA
//!    learner starts from corpus-shaped distinctions instead of discovering
//!    them one counterexample at a time.
//!
//! The oracle is still the authority: seeding is filtered by the learner's
//! separability guard and refinement replays any divergence between the
//! hypothesis and the corpus, so warm starts change the query bill, not the
//! learned language.

use vstar::refine::CorpusEvidence;
use vstar::token_infer::token_infer;
use vstar::{Mat, RefineConfig, RefineLog, VStar, VStarConfig, VStarError, VStarResult};

use crate::learner::{learn_from_converted, PassiveLearnerConfig, PassiveStats};

/// Tuning knobs for [`learn_hybrid`].
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Base pipeline configuration (token-inference knobs, learner caps, …).
    pub vstar: VStarConfig,
    /// Refinement-loop configuration for the corpus-evidence rounds.
    pub refine: RefineConfig,
    /// Passive-construction knobs.
    pub passive: PassiveLearnerConfig,
    /// Per-module cap on seeded access words.
    pub access_cap: usize,
    /// Per-module cap on seeded test contexts.
    pub test_cap: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            vstar: VStarConfig::default(),
            refine: RefineConfig::default(),
            passive: PassiveLearnerConfig::default(),
            access_cap: 2,
            test_cap: 1,
        }
    }
}

/// What a hybrid run produced, with enough bookkeeping to audit the warm
/// start.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// The actively refined result (same type as a cold `learn_refined`).
    pub result: VStarResult,
    /// The refinement loop's log.
    pub log: RefineLog,
    /// Statistics of the passive construction that seeded the run.
    pub passive_stats: PassiveStats,
    /// Access words offered to the learner (before its separability guard).
    pub seeded_access_words: usize,
    /// Test contexts offered to the learner.
    pub seeded_tests: usize,
}

/// Learns `mat`'s language with a corpus-warmed active run.
///
/// The corpus must consist of members of the target language (they are
/// preloaded as positive answers); `seeds` and `alphabet` are the usual
/// active-learning inputs. Corpus words whose conversion under the inferred
/// tokenizer is not well matched are skipped by the passive stage — the
/// refinement loop still sees them through [`CorpusEvidence`].
///
/// # Errors
///
/// Propagates pipeline errors ([`VStarError`]) from token inference and the
/// active run.
pub fn learn_hybrid(
    mat: &Mat<'_>,
    alphabet: &[char],
    seeds: &[String],
    corpus: &[String],
    config: &HybridConfig,
) -> Result<HybridOutcome, VStarError> {
    for word in corpus {
        mat.assume(word, true);
    }

    let tokenizer = token_infer(mat, seeds, alphabet, &config.vstar.token_config)
        .ok_or(VStarError::NoCompatibleTagging { max_k: config.vstar.token_config.max_k })?;
    let tagging = tokenizer.marker_tagging();
    let converted: Vec<String> = corpus.iter().map(|w| tokenizer.convert(mat, w)).collect();
    let passive = learn_from_converted(&converted, &tagging, &config.passive);
    let seed = passive.observation_seed(config.access_cap, config.test_cap);
    let seeded_access_words = seed.access_words();
    let seeded_tests = seed.tests();

    let vstar_config = VStarConfig {
        tokenizer_override: Some(tokenizer),
        hypothesis_seed: Some(seed),
        ..config.vstar.clone()
    };
    let mut evidence = CorpusEvidence::new(corpus.to_vec());
    let (result, log) = VStar::new(vstar_config).learn_refined(
        mat,
        alphabet,
        seeds,
        &mut evidence,
        config.refine.clone(),
    )?;
    Ok(HybridOutcome {
        result,
        log,
        passive_stats: passive.stats,
        seeded_access_words,
        seeded_tests,
    })
}
