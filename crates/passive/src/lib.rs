//! Passive and hybrid k-SEVPA learning from positive sample corpora.
//!
//! Active V-Star (the `vstar` crate) needs a membership oracle; in many
//! deployments all that exists is a *corpus* — a directory of inputs the
//! target program is known to accept. This crate learns from that weaker
//! signal and escalates gracefully when an oracle appears:
//!
//! * **Pure passive** ([`learn_passive`]): infer bracket-like character
//!   pairs from distributional balance evidence ([`structure`]), convert the
//!   corpus with LIFO marker insertion ([`convert`]), and build a merged
//!   k-SEVPA-shaped automaton whose language contains every training sample
//!   and grows monotonically with the corpus ([`learner`]).
//! * **Hybrid** ([`hybrid::learn_hybrid`]): preload the corpus into the
//!   [`Mat`](vstar::Mat) as answered membership queries, distil the passive
//!   construction into an observation seed, and run the full active
//!   `learn_refined` pipeline warm — same result type, smaller query bill.
//! * **Tokenizer re-inference** ([`reinfer::repair_with_corpus`]): diff a
//!   finished active run against the corpus, re-derive the tokenizer from
//!   rejected members, and re-learn under the repaired tokenizer with the
//!   corpus as refinement evidence.
//!
//! ```
//! use vstar_passive::{learn_passive, PassiveConfig};
//!
//! let corpus: Vec<String> =
//!     ["(a)", "((a)b)", "(ab)"].iter().map(|s| (*s).to_string()).collect();
//! let result = learn_passive(&corpus, &PassiveConfig::default());
//! assert_eq!(result.pairs, vec![('(', ')')]);
//! for word in &corpus {
//!     assert!(result.accepts_raw(word));
//! }
//! assert!(result.accepts_raw("(b)")); // letter classes generalise
//! assert!(!result.accepts_raw("(a")); // unbalanced stays out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod hybrid;
pub mod learner;
pub mod reinfer;
pub mod structure;

pub use convert::{marker_tagging, passive_convert, Conversion};
pub use hybrid::{learn_hybrid, HybridConfig, HybridOutcome};
pub use learner::{learn_from_converted, PassiveAutomaton, PassiveLearnerConfig, PassiveStats};
pub use reinfer::{repair_with_corpus, ReinferConfig, ReinferReport, RepairedLearning};
pub use structure::{infer_char_pairs, StructureConfig};

/// Tuning knobs for the pure-passive pipeline ([`learn_passive`]).
#[derive(Clone, Debug, Default)]
pub struct PassiveConfig {
    /// Character-pair inference knobs.
    pub structure: StructureConfig,
    /// Merging knobs.
    pub learner: PassiveLearnerConfig,
}

/// A pure-passive learning result: inferred pairs plus the merged automaton.
#[derive(Clone, Debug)]
pub struct PassiveResult {
    /// Character pairs inferred from the corpus (empty when it exhibits no
    /// character-level nesting; the automaton is then finite-state).
    pub pairs: Vec<(char, char)>,
    /// The merged automaton, grammar and statistics.
    pub automaton: PassiveAutomaton,
    /// Bracket-character occurrences demoted to plain across the corpus.
    pub demoted_occurrences: usize,
}

impl PassiveResult {
    /// Whether the hypothesis accepts a raw (unconverted) string.
    #[must_use]
    pub fn accepts_raw(&self, word: &str) -> bool {
        self.automaton.accepts(&passive_convert(&self.pairs, word).converted)
    }

    /// Converts a raw string under the inferred pairs.
    #[must_use]
    pub fn convert(&self, word: &str) -> String {
        passive_convert(&self.pairs, word).converted
    }
}

/// Learns a language from a positive corpus alone: structure inference,
/// conversion, merged construction.
#[must_use]
pub fn learn_passive(corpus: &[String], config: &PassiveConfig) -> PassiveResult {
    let pairs = infer_char_pairs(corpus, &config.structure);
    let tagging = marker_tagging(&pairs);
    let mut demoted = 0usize;
    let converted: Vec<String> = corpus
        .iter()
        .map(|w| {
            let conv = passive_convert(&pairs, w);
            demoted += conv.demoted;
            conv.converted
        })
        .collect();
    let automaton = learn_from_converted(&converted, &tagging, &config.learner);
    PassiveResult { pairs, automaton, demoted_occurrences: demoted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_passive_is_consistent_on_a_noisy_bracket_corpus() {
        let corpus: Vec<String> = [
            "{\"a\":1}",
            "{\"a\":{\"b\":[1,2]}}",
            "{}",
            "{\"x\":[{\"y\":0}]}",
            "{\"k\":[]}",
            "{\"n\":{\"m\":7}}",
            "{\"p\":[0]}",
            "{\"q\":{\"r\":[5,6]}}",
            "{\"s\":8}",
            "{\"a\":\"}\"}", // stray '}' inside a string literal: demoted, not fatal
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let result = learn_passive(&corpus, &PassiveConfig::default());
        assert!(!result.pairs.is_empty());
        for word in &corpus {
            assert!(result.accepts_raw(word), "training word {word:?} rejected");
        }
        assert_eq!(result.automaton.stats.train_accepted, corpus.len());
        assert!(result.demoted_occurrences > 0);
    }

    #[test]
    fn corpus_without_nesting_degenerates_to_finite_state() {
        let corpus: Vec<String> =
            ["ab", "abab", "ababab"].iter().map(|s| (*s).to_string()).collect();
        let result = learn_passive(&corpus, &PassiveConfig::default());
        assert!(result.pairs.is_empty());
        assert_eq!(result.automaton.vpa.tagging().pair_count(), 0);
        for word in &corpus {
            assert!(result.accepts_raw(word));
        }
    }
}
