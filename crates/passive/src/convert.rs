//! Oracle-free conversion of raw corpus words into marker-tagged words.
//!
//! Mirrors `PartialTokenizer::convert` (paper §5.1, `conv_τ`): the call
//! marker `U+E000+j` is inserted *before* a structural occurrence of pair
//! `j`'s call character and the return marker `U+E800+j` *after* a structural
//! occurrence of its return character, so passively converted words
//! interoperate with `strip_markers`, marker taggings and the grammar
//! sampler exactly like actively converted ones.
//!
//! Without an oracle, "structural" is decided by strict LIFO matching: a
//! return occurrence is structural only when the innermost open occurrence
//! belongs to the *same* pair; anything left unmatched (a `}` inside a JSON
//! string literal, an unclosed bracket) is demoted to a plain character.
//! Demotion guarantees the converted word is well matched under the marker
//! tagging, at the price of occasionally mis-structuring noisy words — the
//! corpus-level tolerance already accepted by [`crate::structure`].

use std::collections::BTreeMap;

use vstar::tokenizer::{call_marker, return_marker};
use vstar_vpl::Tagging;

/// A conversion together with how many bracket-character occurrences had to
/// be demoted to plain.
#[derive(Clone, Debug)]
pub struct Conversion {
    /// The marker-tagged word.
    pub converted: String,
    /// Call/return character occurrences left LIFO-unmatched and demoted.
    pub demoted: usize,
}

/// The marker tagging under which passively converted words are well matched:
/// pair `j` of `pairs` becomes the marker pair `(U+E000+j, U+E800+j)`.
///
/// # Panics
///
/// Panics if `pairs` is large enough for marker code points to collide
/// (> 2048 pairs), which no corpus-driven inference produces.
#[must_use]
pub fn marker_tagging(pairs: &[(char, char)]) -> Tagging {
    Tagging::from_pairs((0..pairs.len()).map(|j| (call_marker(j), return_marker(j))))
        .expect("marker pairs are distinct")
}

/// Converts `word` under the inferred character `pairs`, inserting markers
/// around LIFO-matched occurrences and demoting the rest.
#[must_use]
pub fn passive_convert(pairs: &[(char, char)], word: &str) -> Conversion {
    let call_idx: BTreeMap<char, usize> =
        pairs.iter().enumerate().map(|(j, &(c, _))| (c, j)).collect();
    let ret_idx: BTreeMap<char, usize> =
        pairs.iter().enumerate().map(|(j, &(_, r))| (r, j)).collect();

    let chars: Vec<char> = word.chars().collect();
    // role[i] = Some((pair, is_call)) when occurrence i is structural.
    let mut role: Vec<Option<(usize, bool)>> = vec![None; chars.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (pair, position)
    let mut candidates = 0usize;
    for (pos, &c) in chars.iter().enumerate() {
        if let Some(&j) = call_idx.get(&c) {
            candidates += 1;
            stack.push((j, pos));
        } else if let Some(&j) = ret_idx.get(&c) {
            candidates += 1;
            // Strict LIFO: only the innermost open occurrence can match; a
            // mismatched innermost pair demotes this return, not the call
            // (the call may still close later).
            if let Some(&(top_pair, top_pos)) = stack.last() {
                if top_pair == j {
                    stack.pop();
                    role[top_pos] = Some((j, true));
                    role[pos] = Some((j, false));
                }
            }
        }
    }

    let matched = role.iter().filter(|r| r.is_some()).count();
    let mut converted = String::with_capacity(word.len() + matched);
    for (pos, &c) in chars.iter().enumerate() {
        match role[pos] {
            Some((j, true)) => {
                converted.push(call_marker(j));
                converted.push(c);
            }
            Some((j, false)) => {
                converted.push(c);
                converted.push(return_marker(j));
            }
            None => converted.push(c),
        }
    }
    Conversion { converted, demoted: candidates - matched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar::tokenizer::strip_markers;

    const PAIRS: &[(char, char)] = &[('(', ')'), ('[', ']')];

    #[test]
    fn matched_occurrences_get_markers_in_tokenizer_order() {
        let conv = passive_convert(PAIRS, "(a[b])");
        let c0 = call_marker(0);
        let r0 = return_marker(0);
        let c1 = call_marker(1);
        let r1 = return_marker(1);
        assert_eq!(conv.converted, format!("{c0}(a{c1}[b]{r1}){r0}"));
        assert_eq!(conv.demoted, 0);
        assert!(marker_tagging(PAIRS).is_well_matched(&conv.converted));
        assert_eq!(strip_markers(&conv.converted), "(a[b])");
    }

    #[test]
    fn unmatched_occurrences_are_demoted() {
        // The ')' closes nothing; the '[' never closes; '(' then closes fine.
        let conv = passive_convert(PAIRS, ")a[(x)");
        assert_eq!(conv.demoted, 2);
        assert!(marker_tagging(PAIRS).is_well_matched(&conv.converted));
        assert_eq!(strip_markers(&conv.converted), ")a[(x)");
    }

    #[test]
    fn interleaved_pairs_follow_strict_lifo() {
        // "[(])": ']' arrives while '(' is innermost → ']' demoted; ')' then
        // matches '(', and '[' stays open → demoted.
        let conv = passive_convert(PAIRS, "[(])");
        assert_eq!(conv.demoted, 2);
        assert!(marker_tagging(PAIRS).is_well_matched(&conv.converted));
    }

    #[test]
    fn conversion_is_always_well_matched() {
        for word in ["", "((((", "))))", "([)]", "a(b[c)d]e", "(()"] {
            let conv = passive_convert(PAIRS, word);
            assert!(
                marker_tagging(PAIRS).is_well_matched(&conv.converted),
                "word {word:?} converted to {:?}",
                conv.converted
            );
            assert_eq!(strip_markers(&conv.converted), word);
        }
    }
}
