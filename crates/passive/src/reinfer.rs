//! Corpus-driven tokenizer re-inference ("repair").
//!
//! Active V-Star infers its tokenizer from a handful of seed strings
//! (paper §5.2); a corpus is a much richer witness. After a base run, this
//! module diffs the learned language against the corpus:
//!
//! * Members the hypothesis rejects whose conversion is **not well matched**
//!   are direct evidence the tokenizer itself is wrong — their structure was
//!   never representable. They are promoted to token-inference seeds and the
//!   tokenizer is re-derived from corpus evidence.
//! * Rejected members that *do* convert well-matched witness hypothesis
//!   incompleteness, not a tokenizer fault; re-learning under the (possibly
//!   unchanged) tokenizer with the corpus as refinement evidence replays
//!   them as counterexamples.
//!
//! Either way the repaired run is a full `learn_refined` under
//! `tokenizer_override` with [`CorpusEvidence`], so the result closes every
//! corpus-witnessed gap the test pool missed — this is the mechanism that
//! takes the JSON recall of the base Table-1 run from 0.915 to 1.00.
//!
//! When the base hypothesis already accepts the whole corpus there is
//! nothing to repair and [`repair_with_corpus`] returns `Ok(None)`.

use serde::Serialize;
use vstar::refine::CorpusEvidence;
use vstar::token_infer::token_infer;
use vstar::{Mat, RefineConfig, RefineLog, VStar, VStarConfig, VStarError, VStarResult};

/// Tuning knobs for [`repair_with_corpus`].
#[derive(Clone, Debug)]
pub struct ReinferConfig {
    /// Base pipeline configuration for the repaired run.
    pub vstar: VStarConfig,
    /// Refinement-loop configuration for the repaired run.
    pub refine: RefineConfig,
    /// Cap on rejected corpus members promoted to token-inference seeds
    /// (re-inference cost grows with the seed set).
    pub max_reseeds: usize,
}

impl Default for ReinferConfig {
    fn default() -> Self {
        ReinferConfig {
            vstar: VStarConfig::default(),
            refine: RefineConfig::default(),
            max_reseeds: 12,
        }
    }
}

/// What the re-inference diagnosis saw, for benches and analysis cards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ReinferReport {
    /// Corpus members the base hypothesis rejected.
    pub rejected_members: usize,
    /// Of those, how many convert to ill-matched words under the base
    /// tokenizer (tokenizer faults, not learner gaps).
    pub ill_matched: usize,
    /// Whether re-derivation produced a tokenizer different from the base
    /// one (compared on their canonical descriptions).
    pub tokenizer_changed: bool,
    /// Token pairs of the base tokenizer.
    pub pairs_before: usize,
    /// Token pairs of the repaired tokenizer.
    pub pairs_after: usize,
}

/// A repaired learning run.
#[derive(Clone, Debug)]
pub struct RepairedLearning {
    /// The re-learned result under the repaired tokenizer.
    pub result: VStarResult,
    /// The refinement log of the repaired run.
    pub log: RefineLog,
    /// The diagnosis that triggered the repair.
    pub report: ReinferReport,
}

/// Diagnoses `base` against `corpus` and re-learns when the corpus witnesses
/// a gap. Returns `Ok(None)` when every corpus word is already accepted.
///
/// Rejected members are only promoted to token-inference seeds when the
/// oracle confirms them (a corpus may be stale); if re-inference fails to
/// produce a tokenizer from the enriched seed set, the base tokenizer is
/// kept and the repair degenerates to corpus-evidence refinement.
///
/// # Errors
///
/// Propagates pipeline errors ([`VStarError`]) from the repaired run.
pub fn repair_with_corpus(
    mat: &Mat<'_>,
    alphabet: &[char],
    seeds: &[String],
    base: &VStarResult,
    corpus: &[String],
    config: &ReinferConfig,
) -> Result<Option<RepairedLearning>, VStarError> {
    let rejected: Vec<&String> = corpus.iter().filter(|w| !base.accepts(mat, w)).collect();
    if rejected.is_empty() {
        return Ok(None);
    }
    let ill_matched =
        rejected.iter().filter(|w| !base.tokenizer.converts_to_well_matched(mat, w)).count();

    let mut reseed: Vec<String> = seeds.to_vec();
    for w in rejected.iter().filter(|w| mat.member(w)).take(config.max_reseeds) {
        if !reseed.contains(*w) {
            reseed.push((*w).clone());
        }
    }
    let repaired_tokenizer = token_infer(mat, &reseed, alphabet, &config.vstar.token_config)
        .unwrap_or_else(|| base.tokenizer.clone());
    let tokenizer_changed = repaired_tokenizer.to_string() != base.tokenizer.to_string();
    let report = ReinferReport {
        rejected_members: rejected.len(),
        ill_matched,
        tokenizer_changed,
        pairs_before: base.tokenizer.pair_count(),
        pairs_after: repaired_tokenizer.pair_count(),
    };

    let vstar_config =
        VStarConfig { tokenizer_override: Some(repaired_tokenizer), ..config.vstar.clone() };
    let mut evidence = CorpusEvidence::new(corpus.to_vec());
    let (result, log) = VStar::new(vstar_config).learn_refined(
        mat,
        alphabet,
        seeds,
        &mut evidence,
        config.refine.clone(),
    )?;
    Ok(Some(RepairedLearning { result, log, report }))
}
