//! Passive k-SEVPA construction from converted corpus words.
//!
//! Given marker-tagged words (from [`crate::convert`] or an active
//! tokenizer's `conv_τ`), this builds a deterministic partial VPA whose runs
//! are exactly the corpus-witnessed behaviours, then generalises by a
//! *windowed suffix congruence*: two module-local prefixes are merged when
//! they end in the same `merge_window` shape items, where a shape item is a
//! plain character collapsed to its class (letters → `a`, digits → `0`,
//! punctuation kept verbatim) and a complete call…return segment collapsed to
//! its pair index. The state space is the quotient, transitions are the
//! witnessed steps, and accepting states are the classes of complete corpus
//! words.
//!
//! Two properties fall out of this construction *by construction*, and the
//! proptests in `tests/` lean on both:
//!
//! * **Training consistency** — every well-matched training word's own run
//!   walks witnessed transitions into an accepting class, so the hypothesis
//!   never rejects a training sample, regardless of how aggressively the
//!   window merges.
//! * **Monotonicity** — the key function is corpus-independent, so witness
//!   sets and accepting sets only grow as the corpus grows: `C₁ ⊆ C₂`
//!   implies `L(passive(C₁)) ⊆ L(passive(C₂))`.
//!
//! The same structure doubles as the warm start for hybrid learning: the
//! shortest exact local word of each merged class and the call/return
//! contexts mined while parsing become an
//! [`ObservationSeed`] for the active learner.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;
use vstar::{ModuleSeed, ObservationSeed};
use vstar_vpl::{vpa_to_vpg, Kind, StackSymId, Tagging, Vpa, VpaBuilder, Vpg};

/// Tuning knobs for [`learn_from_converted`].
#[derive(Clone, Debug)]
pub struct PassiveLearnerConfig {
    /// How many trailing shape items identify a state. Smaller windows merge
    /// harder (higher recall, lower precision); `0` collapses each module to
    /// a single state.
    pub merge_window: usize,
}

impl Default for PassiveLearnerConfig {
    fn default() -> Self {
        PassiveLearnerConfig { merge_window: 2 }
    }
}

/// Run statistics of a passive construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PassiveStats {
    /// Words offered to the learner.
    pub corpus_size: usize,
    /// Offered words skipped because they were not well matched under the
    /// tagging (never happens for [`crate::convert`] output).
    pub skipped_ill_matched: usize,
    /// States of the unmerged prefix tree (distinct module-local prefixes).
    pub tree_states: usize,
    /// States after the windowed suffix merge.
    pub merged_states: usize,
    /// Distinct plain characters witnessed.
    pub plain_alphabet: usize,
    /// Training words accepted by the merged automaton (equals
    /// `corpus_size - skipped_ill_matched` by the consistency property).
    pub train_accepted: usize,
}

/// One element of a module-local shape: a plain character class, or a
/// complete nested segment collapsed to its pair index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Item {
    Plain(char),
    Nest(usize),
}

type Window = Vec<Item>;
/// Merged state identity: `(module, trailing shape window)`.
type Key = (usize, Window);

/// The fixed, corpus-independent character class map. Keeping it independent
/// of the corpus is what makes the learned language monotone in the corpus.
fn canon(c: char) -> char {
    if c.is_ascii_alphabetic() {
        'a'
    } else if c.is_ascii_digit() {
        '0'
    } else {
        c
    }
}

fn push_window(window: &Window, item: Item, k: usize) -> Window {
    let mut w = window.clone();
    w.push(item);
    while w.len() > k {
        w.remove(0);
    }
    w
}

/// An in-flight module activation while parsing one corpus word.
struct Frame {
    key: Key,
    text: String,
    caller_key: Key,
    pair: usize,
    /// Global prefix up to and including the call symbol — the `u` of a
    /// mined test context `(u, v)`.
    prefix: String,
}

/// The result of a passive construction: the merged automaton, its grammar,
/// and the evidence needed to warm-start an active learner.
#[derive(Clone, Debug)]
pub struct PassiveAutomaton {
    /// The merged, deterministic, partial VPA over the input tagging.
    pub vpa: Vpa,
    /// The well-matched VPG extracted from [`Self::vpa`].
    pub vpg: Vpg,
    /// Construction statistics.
    pub stats: PassiveStats,
    /// Per module: the shortest exact local word of each merged class.
    module_access: Vec<Vec<String>>,
    /// Per module: test contexts `(u, v)` mined from the corpus.
    module_contexts: Vec<Vec<(String, String)>>,
}

impl PassiveAutomaton {
    /// Whether the merged automaton accepts a converted (marker-tagged) word.
    #[must_use]
    pub fn accepts(&self, converted: &str) -> bool {
        self.vpa.accepts(converted)
    }

    /// Distils the construction into seed evidence for
    /// [`SevpaLearner::seed_observations`](vstar::SevpaLearner::seed_observations):
    /// per module, up to `test_cap` shortest mined contexts and up to
    /// `access_cap` shortest non-empty class representatives.
    #[must_use]
    pub fn observation_seed(&self, access_cap: usize, test_cap: usize) -> ObservationSeed {
        let modules = self
            .module_access
            .iter()
            .zip(&self.module_contexts)
            .map(|(access, contexts)| ModuleSeed {
                access: access.iter().filter(|a| !a.is_empty()).take(access_cap).cloned().collect(),
                tests: contexts.iter().take(test_cap).cloned().collect(),
            })
            .collect();
        ObservationSeed { modules }
    }
}

/// Builds the merged passive automaton from converted corpus words.
///
/// Words that are not well matched under `tagging` are skipped (and counted
/// in [`PassiveStats::skipped_ill_matched`]); every other word is accepted by
/// the result.
///
/// # Panics
///
/// Panics only if the VPA builder rejects the construction, which the
/// deterministic quotient rules out.
#[must_use]
pub fn learn_from_converted(
    words: &[String],
    tagging: &Tagging,
    config: &PassiveLearnerConfig,
) -> PassiveAutomaton {
    let k = config.merge_window;
    let module_count = tagging.pair_count() + 1;
    let entry_key: Key = (0, Vec::new());

    let mut keys: BTreeSet<Key> = BTreeSet::new();
    let mut tree: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut reps: BTreeMap<Key, String> = BTreeMap::new();
    let mut plain_alpha: BTreeSet<char> = BTreeSet::new();
    let mut plain_wit: BTreeSet<(Key, char)> = BTreeSet::new();
    let mut call_wit: BTreeSet<(Key, usize)> = BTreeSet::new();
    let mut ret_wit: BTreeSet<(Key, usize, Key)> = BTreeSet::new();
    let mut accepting: BTreeSet<Key> = BTreeSet::new();
    let mut contexts: Vec<BTreeSet<(String, String)>> = vec![BTreeSet::new(); module_count];
    contexts[0].insert((String::new(), String::new()));

    let register = |keys: &mut BTreeSet<Key>,
                    tree: &mut BTreeSet<(usize, String)>,
                    reps: &mut BTreeMap<Key, String>,
                    frame: &Frame| {
        keys.insert(frame.key.clone());
        tree.insert((frame.key.0, frame.text.clone()));
        let best = reps.entry(frame.key.clone()).or_insert_with(|| frame.text.clone());
        if frame.text.len() < best.len() || (frame.text.len() == best.len() && frame.text < *best) {
            best.clone_from(&frame.text);
        }
    };

    keys.insert(entry_key.clone());
    reps.entry(entry_key.clone()).or_default();
    tree.insert((0, String::new()));

    let mut skipped = 0usize;
    for word in words {
        if !tagging.is_well_matched(word) {
            skipped += 1;
            continue;
        }
        let mut stack: Vec<Frame> = Vec::new();
        let mut cur = Frame {
            key: entry_key.clone(),
            text: String::new(),
            caller_key: entry_key.clone(),
            pair: 0,
            prefix: String::new(),
        };
        for (pos, c) in word.char_indices() {
            match tagging.kind(c) {
                Kind::Plain => {
                    plain_alpha.insert(c);
                    plain_wit.insert((cur.key.clone(), canon(c)));
                    cur.key = (cur.key.0, push_window(&cur.key.1, Item::Plain(canon(c)), k));
                    cur.text.push(c);
                    register(&mut keys, &mut tree, &mut reps, &cur);
                }
                Kind::Call => {
                    let j = tagging.call_pair_index(c).expect("call symbol has a pair");
                    call_wit.insert((cur.key.clone(), j));
                    let caller = cur.key.clone();
                    stack.push(cur);
                    cur = Frame {
                        key: (j + 1, Vec::new()),
                        text: String::new(),
                        caller_key: caller,
                        pair: j,
                        prefix: word[..pos + c.len_utf8()].to_owned(),
                    };
                    register(&mut keys, &mut tree, &mut reps, &cur);
                }
                Kind::Return => {
                    let j = tagging.return_pair_index(c).expect("return symbol has a pair");
                    // Well-matchedness guarantees the innermost frame is the
                    // matching one; this is a defensive invariant, not a path.
                    assert_eq!(cur.pair, j, "well-matched word closes the open pair");
                    let inner = cur;
                    ret_wit.insert((inner.key.clone(), j, inner.caller_key.clone()));
                    contexts[j + 1].insert((inner.prefix.clone(), word[pos..].to_owned()));
                    cur = stack.pop().expect("well-matched word has an open frame");
                    cur.key = (cur.key.0, push_window(&cur.key.1, Item::Nest(j), k));
                    let (call_sym, ret_sym) = tagging.pairs()[j];
                    cur.text.push(call_sym);
                    cur.text.push_str(&inner.text);
                    cur.text.push(ret_sym);
                    register(&mut keys, &mut tree, &mut reps, &cur);
                    if cur.key.0 == 0 {
                        contexts[0].insert((String::new(), word[pos + c.len_utf8()..].to_owned()));
                    }
                }
            }
        }
        accepting.insert(cur.key.clone());
    }

    // Materialize the quotient automaton from the witness sets.
    let sorted_keys: Vec<Key> = keys.iter().cloned().collect();
    let mut builder = VpaBuilder::new(tagging.clone());
    let ids = builder.add_states(sorted_keys.len());
    let id_of: BTreeMap<&Key, _> = sorted_keys.iter().zip(ids).collect();
    let mut syms: BTreeMap<(Key, usize), StackSymId> = BTreeMap::new();
    for (key, j) in &call_wit {
        syms.insert((key.clone(), *j), builder.add_stack_symbol());
    }
    builder.set_initial(id_of[&entry_key]);
    for key in &accepting {
        builder.add_accepting(id_of[key]);
    }
    for (key, class) in &plain_wit {
        let to = (key.0, push_window(&key.1, Item::Plain(*class), k));
        for &c in &plain_alpha {
            if canon(c) == *class {
                builder.plain(id_of[key], c, id_of[&to]).expect("quotient is deterministic");
            }
        }
    }
    for (key, j) in &call_wit {
        let (call_sym, _) = tagging.pairs()[*j];
        let entry = (*j + 1, Vec::new());
        builder
            .call(id_of[key], call_sym, id_of[&entry], syms[&(key.clone(), *j)])
            .expect("quotient is deterministic");
    }
    for (inner, j, caller) in &ret_wit {
        let (_, ret_sym) = tagging.pairs()[*j];
        let to = (caller.0, push_window(&caller.1, Item::Nest(*j), k));
        builder
            .ret(id_of[inner], ret_sym, syms[&(caller.clone(), *j)], id_of[&to])
            .expect("quotient is deterministic");
    }
    let vpa = builder.build().expect("passive automaton builds");
    let vpg = vpa_to_vpg(&vpa);

    let train_accepted = words.iter().filter(|w| vpa.accepts(w)).count();
    let stats = PassiveStats {
        corpus_size: words.len(),
        skipped_ill_matched: skipped,
        tree_states: tree.len(),
        merged_states: sorted_keys.len(),
        plain_alphabet: plain_alpha.len(),
        train_accepted,
    };

    let mut module_access: Vec<Vec<String>> = vec![Vec::new(); module_count];
    for ((module, _), text) in reps {
        module_access[module].push(text);
    }
    for access in &mut module_access {
        access.sort_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)));
        access.dedup();
    }
    let module_contexts: Vec<Vec<(String, String)>> = contexts
        .into_iter()
        .map(|set| {
            let mut v: Vec<(String, String)> = set.into_iter().collect();
            v.sort_by(|a, b| (a.0.len() + a.1.len()).cmp(&(b.0.len() + b.1.len())).then(a.cmp(b)));
            v
        })
        .collect();

    PassiveAutomaton { vpa, vpg, stats, module_access, module_contexts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{marker_tagging, passive_convert};

    const PAIRS: &[(char, char)] = &[('(', ')')];

    fn converted(words: &[&str]) -> (Vec<String>, Tagging) {
        let conv = words.iter().map(|w| passive_convert(PAIRS, w).converted).collect();
        (conv, marker_tagging(PAIRS))
    }

    #[test]
    fn accepts_every_training_word_and_generalises_by_class() {
        let (words, tagging) = converted(&["(a)", "(ab)", "((a)b)", "a"]);
        let auto = learn_from_converted(&words, &tagging, &PassiveLearnerConfig::default());
        for w in &words {
            assert!(auto.accepts(w), "training word {w:?} rejected");
        }
        assert_eq!(auto.stats.train_accepted, words.len());
        assert_eq!(auto.stats.skipped_ill_matched, 0);
        // Letter classes generalise: 'z' behaves like 'a'… but only over the
        // witnessed alphabet, so an unseen character is still rejected.
        let same_shape = passive_convert(PAIRS, "(b)").converted;
        assert!(auto.accepts(&same_shape));
        let digits = passive_convert(PAIRS, "(1)").converted;
        assert!(!auto.accepts(&digits), "digit class was never witnessed");
    }

    #[test]
    fn partiality_rejects_unwitnessed_shapes() {
        let (words, tagging) = converted(&["(a)", "(aa)"]);
        let auto = learn_from_converted(&words, &tagging, &PassiveLearnerConfig::default());
        // No word ever nested, so nesting is not in the language.
        let nested = passive_convert(PAIRS, "((a))").converted;
        assert!(!auto.accepts(&nested));
        // ε was never a complete word.
        assert!(!auto.accepts(""));
    }

    #[test]
    fn language_is_monotone_in_the_corpus() {
        let all = ["(a)", "((a)a)", "(aa)", "((aa)(a))", "(((a)))"];
        let (converted_all, tagging) = converted(&all);
        let probes: Vec<String> = ["(a)", "((a))", "(((a)))", "((a)(a))", "(aaa)", "a"]
            .iter()
            .map(|w| passive_convert(&[('(', ')')], w).converted)
            .collect();
        let mut prev: Vec<bool> = vec![false; probes.len()];
        for n in 1..=all.len() {
            let auto = learn_from_converted(
                &converted_all[..n],
                &tagging,
                &PassiveLearnerConfig::default(),
            );
            let now: Vec<bool> = probes.iter().map(|p| auto.accepts(p)).collect();
            for (i, (&before, &after)) in prev.iter().zip(&now).enumerate() {
                assert!(!before || after, "probe {i} left the language at corpus size {n}");
            }
            prev = now;
        }
    }

    #[test]
    fn merge_window_zero_collapses_each_module() {
        let (words, tagging) = converted(&["(a)", "((ab)b)"]);
        let auto =
            learn_from_converted(&words, &tagging, &PassiveLearnerConfig { merge_window: 0 });
        // One class per module: module 0 and module 1.
        assert_eq!(auto.stats.merged_states, 2);
        for w in &words {
            assert!(auto.accepts(w));
        }
    }

    #[test]
    fn observation_seed_mines_access_words_and_contexts() {
        let (words, tagging) = converted(&["(a)", "((a)b)"]);
        let auto = learn_from_converted(&words, &tagging, &PassiveLearnerConfig::default());
        let seed = auto.observation_seed(4, 2);
        assert_eq!(seed.modules.len(), 2);
        assert!(!seed.is_empty());
        // Module 1 access words are local words of the parenthesized module
        // (the original bracket characters stay in them as plain text).
        assert!(seed.modules[1].access.iter().any(|a| a == "(a)"), "{:?}", seed.modules[1].access);
        // Module 1 contexts embed the call marker prefix and return suffix.
        let (u, v) = &seed.modules[1].tests[0];
        assert!(u.ends_with('\u{e000}'), "{u:?}");
        assert!(v.starts_with('\u{e800}'), "{v:?}");
        // Module 0 always carries the trivial context.
        assert!(seed.modules[0].tests.contains(&(String::new(), String::new())));
    }

    #[test]
    fn ill_matched_words_are_skipped_not_fatal() {
        let tagging = marker_tagging(PAIRS);
        let words = vec!["\u{e000}(a".to_owned(), passive_convert(PAIRS, "(a)").converted];
        let auto = learn_from_converted(&words, &tagging, &PassiveLearnerConfig::default());
        assert_eq!(auto.stats.skipped_ill_matched, 1);
        assert_eq!(auto.stats.train_accepted, 1);
    }
}
