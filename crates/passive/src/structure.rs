//! Corpus-only call/return structure inference.
//!
//! Active V-Star discovers nesting structure by *pumping* candidate splits
//! against the oracle (paper §4). With nothing but a positive corpus there is
//! no oracle to pump against, so this module falls back to distributional
//! evidence: a character pair `(a, b)` is treated as a call/return pair when,
//! across the corpus, occurrences of `a` and `b` balance like brackets —
//! every prefix of (almost) every word that mentions them has at least as
//! many `a`s as `b`s, the word ends balanced, and at least one word nests
//! them at depth ≥ 2 (depth-1 "pairs" are indistinguishable from alternating
//! plain tokens, e.g. `:` and `,` in JSON).
//!
//! The tolerance `min_fraction` exists because real corpora are noisy in
//! exactly the way the paper's tokenizer section predicts: a JSON corpus
//! contains `"}"` *inside string literals*, so `('{', '}')` does not balance
//! in every member. Words that fail the balance scan are handled later by the
//! converter, which demotes LIFO-unmatched occurrences to plain characters
//! (see [`crate::convert`]).
//!
//! Multi-character delimiters (XML's `<a>`/`</a>`, `while`/`done`) are out of
//! reach of character-level pairing by construction; on such corpora this
//! returns no pairs and the passive learner degenerates to a finite-state
//! approximation. That gap is what the *hybrid* path ([`crate::hybrid`]) is
//! for.

use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs for [`infer_char_pairs`].
#[derive(Clone, Debug)]
pub struct StructureConfig {
    /// Fraction of pair-relevant corpus words that must pass the balance scan
    /// for the pair to qualify (`0.9` tolerates string-literal noise).
    pub min_fraction: f64,
    /// Minimum number of corpus words that nest the pair at depth ≥ 2.
    pub min_depth_evidence: usize,
    /// Maximum number of pairs to select.
    pub max_pairs: usize,
}

impl Default for StructureConfig {
    fn default() -> Self {
        StructureConfig { min_fraction: 0.9, min_depth_evidence: 1, max_pairs: 4 }
    }
}

/// Per-candidate balance evidence, used for deterministic ranking.
#[derive(Clone, Copy, Debug, Default)]
struct PairEvidence {
    /// Words containing the call or the return character.
    relevant: usize,
    /// Relevant words whose balance scan succeeds (prefixes ≥ 0, ends at 0,
    /// at least one occurrence).
    consistent: usize,
    /// Consistent words reaching nesting depth ≥ 2.
    deep: usize,
    /// Words bracketed by the pair outright (first char the call, last char
    /// the return). True delimiters enclose whole inputs; alternating tokens
    /// that happen to balance (`:` against `}` in a small JSON corpus) never
    /// do, so this breaks ranking ties in favour of real brackets.
    outermost: usize,
}

/// Scans one word for the candidate pair; returns `(consistent, deep)`.
fn scan_word(word: &str, call: char, ret: char) -> (bool, bool) {
    let mut balance: i64 = 0;
    let mut max_depth: i64 = 0;
    let mut occurrences = 0usize;
    for c in word.chars() {
        if c == call {
            balance += 1;
            occurrences += 1;
            max_depth = max_depth.max(balance);
        } else if c == ret {
            balance -= 1;
            occurrences += 1;
            if balance < 0 {
                return (false, false);
            }
        }
    }
    let consistent = balance == 0 && occurrences > 0;
    (consistent, consistent && max_depth >= 2)
}

/// Infers bracket-like character pairs from a positive corpus alone.
///
/// Returns pairs ordered by evidence strength (most deeply nested first),
/// with pairwise-disjoint character sets; the order is deterministic for a
/// given corpus. An empty result means the corpus exhibits no character-level
/// nesting — the passive learner then treats every character as plain.
#[must_use]
pub fn infer_char_pairs(corpus: &[String], config: &StructureConfig) -> Vec<(char, char)> {
    let mut alphabet: BTreeSet<char> = BTreeSet::new();
    for word in corpus {
        alphabet.extend(word.chars());
    }

    let mut scored: BTreeMap<(char, char), PairEvidence> = BTreeMap::new();
    for &call in &alphabet {
        for &ret in &alphabet {
            if call == ret {
                continue;
            }
            let mut ev = PairEvidence::default();
            for word in corpus {
                if !word.contains(call) && !word.contains(ret) {
                    continue;
                }
                ev.relevant += 1;
                let (consistent, deep) = scan_word(word, call, ret);
                if consistent {
                    ev.consistent += 1;
                }
                if deep {
                    ev.deep += 1;
                }
                if consistent
                    && word.starts_with(call)
                    && word.ends_with(ret)
                    && word.chars().count() >= 2
                {
                    ev.outermost += 1;
                }
            }
            let enough = ev.relevant > 0
                && ev.deep >= config.min_depth_evidence
                && (ev.consistent as f64) >= config.min_fraction * (ev.relevant as f64);
            if enough {
                scored.insert((call, ret), ev);
            }
        }
    }

    // Strongest evidence first; ties broken by the pair itself so the result
    // is a pure function of the corpus.
    let mut ranked: Vec<((char, char), PairEvidence)> = scored.into_iter().collect();
    ranked.sort_by(|(pa, ea), (pb, eb)| {
        eb.outermost
            .cmp(&ea.outermost)
            .then(eb.deep.cmp(&ea.deep))
            .then(eb.consistent.cmp(&ea.consistent))
            .then(pa.cmp(pb))
    });

    let mut used: BTreeSet<char> = BTreeSet::new();
    let mut pairs = Vec::new();
    for ((call, ret), _) in ranked {
        if pairs.len() >= config.max_pairs {
            break;
        }
        if used.contains(&call) || used.contains(&ret) {
            continue;
        }
        used.insert(call);
        used.insert(ret);
        pairs.push((call, ret));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn finds_nested_parentheses() {
        let c = corpus(&["(x)", "((x)x)", "(()())", "x", "((x))"]);
        let pairs = infer_char_pairs(&c, &StructureConfig::default());
        assert_eq!(pairs, vec![('(', ')')]);
    }

    #[test]
    fn rejects_alternating_tokens_without_nesting() {
        // ':' and ',' alternate (balance-consistent at depth 1) but never nest.
        let c = corpus(&[":,", ":,:,", ":,:,:,"]);
        let pairs = infer_char_pairs(&c, &StructureConfig::default());
        assert!(pairs.is_empty(), "{pairs:?}");
    }

    #[test]
    fn tolerates_string_literal_noise() {
        // One word breaks the balance ('}' inside a "string"); nine don't.
        let mut words = vec!["{\"a\":{\"b\":1}}".to_owned(); 9];
        words.push("{\"}\":1}".to_owned());
        let pairs = infer_char_pairs(&words, &StructureConfig::default());
        assert_eq!(pairs, vec![('{', '}')]);
    }

    #[test]
    fn selected_pairs_have_disjoint_characters() {
        let c = corpus(&["{[{[]}]}", "[]", "{}", "[[{}]]"]);
        let pairs = infer_char_pairs(&c, &StructureConfig::default());
        assert!(pairs.len() >= 2, "{pairs:?}");
        let mut seen = BTreeSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert(*a), "reused call {a:?}");
            assert!(seen.insert(*b), "reused return {b:?}");
        }
        assert!(pairs.contains(&('{', '}')));
        assert!(pairs.contains(&('[', ']')));
    }

    #[test]
    fn empty_corpus_yields_no_pairs() {
        assert!(infer_char_pairs(&[], &StructureConfig::default()).is_empty());
    }
}
