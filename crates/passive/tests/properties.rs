//! Property tests for the passive learner, driven by corpora sampled from
//! *refined* Table-1 grammars via `GrammarSampler` (proptest):
//!
//! * **training consistency** — whatever corpus the sampler draws, the
//!   passive hypothesis accepts every training sample;
//! * **corpus monotonicity** — at a fixed sampling seed, growing the corpus
//!   (same-seed corpora are nested by construction here) never shrinks the
//!   hypothesis language: the acceptance rate on a fixed held-out draw from
//!   the refined grammar never decreases. This is the corpus-side accuracy
//!   direction that *is* monotone; precision against the target can
//!   legitimately drop as character classes generalise (see the curve in
//!   `BENCH_passive.json`), so it is reported by the bench, not pinned here.
//!
//! The five refined grammars are learned once (OnceLock) with
//! corpus-evidence refinement — repeating a debug-build refinement per
//! property case would dominate the suite's runtime.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::refine::CorpusEvidence;
use vstar::tokenizer::strip_markers;
use vstar::{Mat, RefineConfig, VStar, VStarConfig, VStarResult};
use vstar_oracles::table1_languages;
use vstar_parser::GrammarSampler;
use vstar_passive::{learn_passive, PassiveConfig};

/// Sentence-size budget for sampling (matches the bench corpora).
const SAMPLE_BUDGET: usize = 18;
/// Evidence-corpus size for the one-time refinement (kept modest: this runs
/// in a debug build).
const EVIDENCE_CORPUS: usize = 80;

fn refined_results() -> &'static Vec<(String, VStarResult)> {
    static CELL: OnceLock<Vec<(String, VStarResult)>> = OnceLock::new();
    CELL.get_or_init(|| {
        table1_languages()
            .iter()
            .map(|lang| {
                let oracle = |s: &str| lang.accepts(s);
                let mat = Mat::new(&oracle);
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ lang.name().len() as u64);
                let corpus = lang.generate_corpus(&mut rng, SAMPLE_BUDGET, EVIDENCE_CORPUS);
                let mut evidence = CorpusEvidence::new(corpus);
                let (result, _log) = VStar::new(VStarConfig::default())
                    .learn_refined(
                        &mat,
                        &lang.alphabet(),
                        &lang.seeds(),
                        &mut evidence,
                        RefineConfig::default(),
                    )
                    .unwrap_or_else(|e| panic!("{}: refined learning failed: {e}", lang.name()));
                (lang.name().to_string(), result)
            })
            .collect()
    })
}

/// Draws `count` raw words from the refined grammar: sampler output is a
/// converted word, so stripping the markers recovers the raw string.
fn sample_raw_corpus(result: &VStarResult, seed: u64, count: usize) -> Vec<String> {
    let learned = result.as_learned_language();
    let sampler = GrammarSampler::new(learned.vpg());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while words.len() < count && attempts < count * 20 {
        attempts += 1;
        if let Some(converted) = sampler.sample(&mut rng, SAMPLE_BUDGET) {
            words.push(strip_markers(&converted));
        }
    }
    assert!(
        words.len() == count,
        "sampler starved: {} of {count} words after {attempts} attempts",
        words.len(),
    );
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Consistency invariant: the passive hypothesis accepts every training
    /// sample, whatever refined grammar the corpus was drawn from.
    #[test]
    fn passive_hypothesis_accepts_every_training_sample(seed in 0u64..10_000) {
        let grammars = refined_results();
        let (name, result) = &grammars[(seed % grammars.len() as u64) as usize];
        let size = 20 + (seed / grammars.len() as u64 % 41) as usize;
        let corpus = sample_raw_corpus(result, seed, size);
        let passive = learn_passive(&corpus, &PassiveConfig::default());
        prop_assert_eq!(passive.automaton.stats.skipped_ill_matched, 0);
        for word in &corpus {
            prop_assert!(
                passive.accepts_raw(word),
                "{}: training sample {:?} rejected (corpus size {})",
                name, word, size,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Monotonicity: at a fixed seed, same-seed corpora are nested prefixes,
    /// and a larger corpus only adds witnesses — so the acceptance rate on a
    /// fixed held-out draw from the refined grammar never decreases.
    #[test]
    fn held_out_acceptance_never_decreases_as_corpus_grows(seed in 0u64..10_000) {
        let grammars = refined_results();
        let (name, result) = &grammars[(seed % grammars.len() as u64) as usize];
        let pool = sample_raw_corpus(result, seed, 96);
        let held_out = sample_raw_corpus(result, seed ^ 0x5A5A_5A5A, 60);
        let mut previous = 0usize;
        for size in [12usize, 24, 48, 96] {
            let passive = learn_passive(&pool[..size], &PassiveConfig::default());
            let accepted = held_out.iter().filter(|w| passive.accepts_raw(w)).count();
            prop_assert!(
                accepted >= previous,
                "{}: held-out acceptance dropped {previous} -> {accepted} at corpus size {size}",
                name,
            );
            previous = accepted;
        }
    }
}
