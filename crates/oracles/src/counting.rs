//! Query-counting and caching wrapper around a membership oracle.
//!
//! The paper's "#Queries" column counts *unique* membership queries: "Since a
//! particular string might be queried multiple times, we cache the result after the
//! first query, and only count unique queries" (§6). [`CountingOracle`] implements
//! exactly that policy and additionally exposes a snapshot counter so that the
//! V-Star pipeline can attribute queries to its phases (%Q(Token) vs %Q(VPA)).

use std::cell::RefCell;
use std::collections::HashMap;

/// A caching, counting membership oracle.
///
/// Cloning is intentionally not provided: all users of a learning run should share
/// one `CountingOracle` (by reference) so that the query count is global.
pub struct CountingOracle<'a> {
    inner: Box<dyn Fn(&str) -> bool + 'a>,
    state: RefCell<CountingState>,
}

#[derive(Default)]
struct CountingState {
    cache: HashMap<String, bool>,
    unique_queries: usize,
    total_queries: usize,
}

impl<'a> CountingOracle<'a> {
    /// Wraps a membership function.
    pub fn new(f: impl Fn(&str) -> bool + 'a) -> Self {
        CountingOracle { inner: Box::new(f), state: RefCell::new(CountingState::default()) }
    }

    /// Answers a membership query, consulting the cache first.
    #[must_use]
    pub fn member(&self, input: &str) -> bool {
        {
            let mut state = self.state.borrow_mut();
            state.total_queries += 1;
            if let Some(&v) = state.cache.get(input) {
                return v;
            }
        }
        let v = (self.inner)(input);
        let mut state = self.state.borrow_mut();
        state.unique_queries += 1;
        state.cache.insert(input.to_owned(), v);
        v
    }

    /// Number of unique (cache-missing) membership queries so far.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.state.borrow().unique_queries
    }

    /// Number of membership calls including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.state.borrow().total_queries
    }

    /// Clears counters and the cache (the wrapped function is kept).
    pub fn reset(&self) {
        let mut state = self.state.borrow_mut();
        state.cache.clear();
        state.unique_queries = 0;
        state.total_queries = 0;
    }
}

impl std::fmt::Debug for CountingOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("CountingOracle")
            .field("unique_queries", &state.unique_queries)
            .field("total_queries", &state.total_queries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_queries_are_cached() {
        let calls = std::cell::Cell::new(0usize);
        let oracle = CountingOracle::new(|s: &str| {
            calls.set(calls.get() + 1);
            s.len() % 2 == 0
        });
        assert!(oracle.member("ab"));
        assert!(oracle.member("ab"));
        assert!(!oracle.member("abc"));
        assert_eq!(oracle.unique_queries(), 2);
        assert_eq!(oracle.total_queries(), 3);
        assert_eq!(calls.get(), 2, "cached query must not call the program again");
    }

    #[test]
    fn reset_clears_counters() {
        let oracle = CountingOracle::new(|_: &str| true);
        let _ = oracle.member("x");
        oracle.reset();
        assert_eq!(oracle.unique_queries(), 0);
        assert_eq!(oracle.total_queries(), 0);
        let _ = oracle.member("x");
        assert_eq!(oracle.unique_queries(), 1);
    }

    #[test]
    fn debug_output_mentions_counts() {
        let oracle = CountingOracle::new(|_: &str| false);
        let _ = oracle.member("a");
        let text = format!("{oracle:?}");
        assert!(text.contains("unique_queries"));
    }
}
