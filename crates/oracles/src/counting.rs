//! Query-counting and caching wrapper around a membership oracle.
//!
//! The paper's "#Queries" column counts *unique* membership queries: "Since a
//! particular string might be queried multiple times, we cache the result after the
//! first query, and only count unique queries" (§6). [`CountingOracle`] implements
//! exactly that policy and additionally exposes a snapshot counter so that the
//! V-Star pipeline can attribute queries to its phases (%Q(Token) vs %Q(VPA)).

use std::cell::RefCell;

use vstar_automata::QueryCache;

/// A caching, counting membership oracle.
///
/// The cache/counter policy is the shared [`QueryCache`]: `CountingOracle` is
/// a thin interior-mutability adapter over a cache labelled with the
/// telemetry site `oracle`, so every lookup is also reported as
/// `query.oracle.hit` / `query.oracle.miss` when a `vstar_telemetry`
/// collector is installed — the public counters below and the telemetry
/// counters are two views of the same single lookup path. Cloning is
/// intentionally not provided: all users of a learning run should share one
/// `CountingOracle` (by reference) so that the query count is global.
pub struct CountingOracle<'a> {
    inner: Box<dyn Fn(&str) -> bool + 'a>,
    state: RefCell<QueryCache>,
}

impl<'a> CountingOracle<'a> {
    /// Wraps a membership function. The function must not (transitively) query
    /// this `CountingOracle` itself, as the cache is borrowed while it runs.
    pub fn new(f: impl Fn(&str) -> bool + 'a) -> Self {
        CountingOracle { inner: Box::new(f), state: RefCell::new(QueryCache::for_site("oracle")) }
    }

    /// Answers a membership query, consulting the cache first.
    #[must_use]
    pub fn member(&self, input: &str) -> bool {
        self.state.borrow_mut().query(input, &self.inner)
    }

    /// Number of unique (cache-missing) membership queries so far.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.state.borrow().unique_queries()
    }

    /// Number of membership calls including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.state.borrow().total_queries()
    }

    /// Number of cache hits (total minus unique queries).
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.state.borrow().hits()
    }

    /// Clears counters and the cache (the wrapped function is kept).
    pub fn reset(&self) {
        self.state.borrow_mut().reset();
    }
}

/// A [`Language`](crate::Language) view whose membership answers route
/// through a shared [`CountingOracle`].
///
/// Every consumer that judges strings through this view — a learner's MAT, a
/// differential fuzz campaign, an evidence-collection loop — draws on the
/// *same* cache and the same unique-query counter, so the oracle's
/// `unique_queries()` is the ground-truth count of distinct strings the
/// underlying program ever answered, across all phases of a run. Everything
/// else (name, alphabet, seeds, generation) delegates to the wrapped
/// language untouched.
pub struct CountedLanguage<'a> {
    inner: &'a dyn crate::Language,
    oracle: &'a CountingOracle<'a>,
}

impl<'a> CountedLanguage<'a> {
    /// Wraps `inner` so its membership answers are served by `oracle`.
    ///
    /// `oracle` should wrap `inner.accepts` (or an equivalent function);
    /// nothing enforces that, but a mismatched pair answers queries for a
    /// different language than it reports metadata for.
    #[must_use]
    pub fn new(inner: &'a dyn crate::Language, oracle: &'a CountingOracle<'a>) -> Self {
        CountedLanguage { inner, oracle }
    }
}

impl crate::Language for CountedLanguage<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn accepts(&self, input: &str) -> bool {
        self.oracle.member(input)
    }

    fn alphabet(&self) -> Vec<char> {
        self.inner.alphabet()
    }

    fn seeds(&self) -> Vec<String> {
        self.inner.seeds()
    }

    fn generate(&self, rng: &mut dyn rand::RngCore, budget: usize) -> String {
        self.inner.generate(rng, budget)
    }
}

impl std::fmt::Debug for CountingOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("CountingOracle")
            .field("unique_queries", &state.unique_queries())
            .field("total_queries", &state.total_queries())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_queries_are_cached() {
        let calls = std::cell::Cell::new(0usize);
        let oracle = CountingOracle::new(|s: &str| {
            calls.set(calls.get() + 1);
            s.len() % 2 == 0
        });
        assert!(oracle.member("ab"));
        assert!(oracle.member("ab"));
        assert!(!oracle.member("abc"));
        assert_eq!(oracle.unique_queries(), 2);
        assert_eq!(oracle.total_queries(), 3);
        assert_eq!(calls.get(), 2, "cached query must not call the program again");
    }

    #[test]
    fn reset_clears_counters() {
        let oracle = CountingOracle::new(|_: &str| true);
        let _ = oracle.member("x");
        oracle.reset();
        assert_eq!(oracle.unique_queries(), 0);
        assert_eq!(oracle.total_queries(), 0);
        let _ = oracle.member("x");
        assert_eq!(oracle.unique_queries(), 1);
    }

    #[test]
    fn adapter_counters_match_telemetry_counters() {
        // Regression test for the unification of the query-counting
        // mechanisms: the adapter's public counter semantics are unchanged,
        // and they agree exactly with the telemetry `query.oracle.*` view.
        let guard = vstar_telemetry::install();
        let oracle = CountingOracle::new(|s: &str| s.len() < 2);
        for input in ["a", "bb", "a", "ccc", "bb", "a"] {
            let _ = oracle.member(input);
        }
        assert_eq!(oracle.unique_queries(), 3);
        assert_eq!(oracle.total_queries(), 6);
        assert_eq!(oracle.cache_hits(), 3);
        let report = guard.finish();
        assert_eq!(report.facts.counter("query.oracle.miss"), oracle.unique_queries() as u64);
        assert_eq!(report.facts.counter("query.oracle.hit"), oracle.cache_hits() as u64);
    }

    #[test]
    fn reset_preserves_the_telemetry_site() {
        let oracle = CountingOracle::new(|_: &str| true);
        let _ = oracle.member("x");
        oracle.reset();
        let guard = vstar_telemetry::install();
        let _ = oracle.member("x");
        let report = guard.finish();
        assert_eq!(report.facts.counter("query.oracle.miss"), 1, "site label survives reset");
        assert_eq!(oracle.cache_hits(), 0);
    }

    #[test]
    fn counted_language_routes_membership_through_the_shared_oracle() {
        use crate::Language;
        use rand::SeedableRng;
        let lang = crate::Lisp::new();
        let oracle = CountingOracle::new(|s: &str| lang.accepts(s));
        let counted = CountedLanguage::new(&lang, &oracle);
        assert_eq!(counted.name(), lang.name());
        assert_eq!(counted.alphabet(), lang.alphabet());
        assert_eq!(counted.seeds(), lang.seeds());
        for seed in counted.seeds() {
            assert!(counted.accepts(&seed));
            assert!(counted.accepts(&seed)); // second ask is a cache hit
        }
        assert_eq!(oracle.unique_queries(), counted.seeds().len());
        assert_eq!(oracle.cache_hits(), counted.seeds().len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = counted.generate(&mut rng, 12);
        assert!(lang.accepts(&s), "delegated generator must produce members");
    }

    #[test]
    fn debug_output_mentions_counts() {
        let oracle = CountingOracle::new(|_: &str| false);
        let _ = oracle.member("a");
        let text = format!("{oracle:?}");
        assert!(text.contains("unique_queries"));
    }
}
