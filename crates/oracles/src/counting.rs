//! Query-counting and caching wrapper around a membership oracle.
//!
//! The paper's "#Queries" column counts *unique* membership queries: "Since a
//! particular string might be queried multiple times, we cache the result after the
//! first query, and only count unique queries" (§6). [`CountingOracle`] implements
//! exactly that policy and additionally exposes a snapshot counter so that the
//! V-Star pipeline can attribute queries to its phases (%Q(Token) vs %Q(VPA)).

use std::cell::RefCell;

use vstar_automata::QueryCache;

/// A caching, counting membership oracle.
///
/// The cache/counter policy is the shared [`QueryCache`]. Cloning is
/// intentionally not provided: all users of a learning run should share one
/// `CountingOracle` (by reference) so that the query count is global.
pub struct CountingOracle<'a> {
    inner: Box<dyn Fn(&str) -> bool + 'a>,
    state: RefCell<QueryCache>,
}

impl<'a> CountingOracle<'a> {
    /// Wraps a membership function. The function must not (transitively) query
    /// this `CountingOracle` itself, as the cache is borrowed while it runs.
    pub fn new(f: impl Fn(&str) -> bool + 'a) -> Self {
        CountingOracle { inner: Box::new(f), state: RefCell::new(QueryCache::new()) }
    }

    /// Answers a membership query, consulting the cache first.
    #[must_use]
    pub fn member(&self, input: &str) -> bool {
        self.state.borrow_mut().query(input, &self.inner)
    }

    /// Number of unique (cache-missing) membership queries so far.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.state.borrow().unique_queries()
    }

    /// Number of membership calls including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.state.borrow().total_queries()
    }

    /// Clears counters and the cache (the wrapped function is kept).
    pub fn reset(&self) {
        self.state.borrow_mut().reset();
    }
}

impl std::fmt::Debug for CountingOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("CountingOracle")
            .field("unique_queries", &state.unique_queries())
            .field("total_queries", &state.total_queries())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_queries_are_cached() {
        let calls = std::cell::Cell::new(0usize);
        let oracle = CountingOracle::new(|s: &str| {
            calls.set(calls.get() + 1);
            s.len() % 2 == 0
        });
        assert!(oracle.member("ab"));
        assert!(oracle.member("ab"));
        assert!(!oracle.member("abc"));
        assert_eq!(oracle.unique_queries(), 2);
        assert_eq!(oracle.total_queries(), 3);
        assert_eq!(calls.get(), 2, "cached query must not call the program again");
    }

    #[test]
    fn reset_clears_counters() {
        let oracle = CountingOracle::new(|_: &str| true);
        let _ = oracle.member("x");
        oracle.reset();
        assert_eq!(oracle.unique_queries(), 0);
        assert_eq!(oracle.total_queries(), 0);
        let _ = oracle.member("x");
        assert_eq!(oracle.unique_queries(), 1);
    }

    #[test]
    fn debug_output_mentions_counts() {
        let oracle = CountingOracle::new(|_: &str| false);
        let _ = oracle.member("a");
        let text = format!("{oracle:?}");
        assert!(text.contains("unique_queries"));
    }
}
