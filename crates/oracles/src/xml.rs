//! The XML oracle (paper Table 1, row "xml").
//!
//! ```text
//! doc     := element
//! element := open content close
//! open    := '<' name attr? '>'
//! close   := '</' name '>'
//! attr    := ' ' name '="' [a-z]* '"'
//! content := (element | text)*
//! text    := [a-z]+
//! name    := [a-z]+
//! ```
//!
//! Open and close tags are multi-character *tokens* — the situation §5 of the paper
//! is about: the call token `OPEN` and return token `CLOSE` must be inferred
//! together with their lexical rules (including the optional attribute). Close-tag
//! names are not required to match the open-tag name, which keeps the token-level
//! language a visibly pushdown language with a single call/return token pair
//! (matching names would need unboundedly many token pairs).

use rand::{Rng, RngCore};

use crate::Language;

/// Configuration of the XML oracle.
#[derive(Clone, Debug)]
pub struct XmlConfig {
    /// Whether open tags may carry one `name="value"` attribute.
    pub allow_attributes: bool,
    /// Maximum tag-name length used by the generator (recognition allows any length).
    pub max_name_len: usize,
}

impl Default for XmlConfig {
    fn default() -> Self {
        XmlConfig { allow_attributes: true, max_name_len: 3 }
    }
}

/// The XML oracle language.
#[derive(Clone, Debug, Default)]
pub struct Xml {
    config: XmlConfig,
}

impl Xml {
    /// Creates the XML oracle with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Xml::default()
    }

    /// Creates the XML oracle with a custom configuration.
    #[must_use]
    pub fn with_config(config: XmlConfig) -> Self {
        Xml { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &XmlConfig {
        &self.config
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    allow_attributes: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.s.get(self.pos + 1).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z')) {
            self.pos += 1;
        }
        self.pos > start
    }

    fn open_tag(&mut self) -> bool {
        if !self.eat(b'<') {
            return false;
        }
        if !self.name() {
            return false;
        }
        if self.allow_attributes && self.peek() == Some(b' ') {
            self.pos += 1;
            if !self.name() || !self.eat(b'=') || !self.eat(b'"') {
                return false;
            }
            while matches!(self.peek(), Some(b'a'..=b'z')) {
                self.pos += 1;
            }
            if !self.eat(b'"') {
                return false;
            }
        }
        self.eat(b'>')
    }

    fn close_tag(&mut self) -> bool {
        self.eat(b'<') && self.eat(b'/') && self.name() && self.eat(b'>')
    }

    fn element(&mut self) -> bool {
        if !self.open_tag() {
            return false;
        }
        // content: (element | text)* until a close tag starts.
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.peek2() == Some(b'/') {
                        return self.close_tag();
                    }
                    if !self.element() {
                        return false;
                    }
                }
                Some(b'a'..=b'z') => {
                    while matches!(self.peek(), Some(b'a'..=b'z')) {
                        self.pos += 1;
                    }
                }
                _ => return false,
            }
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.s.len()
    }
}

impl Language for Xml {
    fn name(&self) -> &'static str {
        "xml"
    }

    fn accepts(&self, input: &str) -> bool {
        if !input.is_ascii() {
            return false;
        }
        let mut p =
            Parser { s: input.as_bytes(), pos: 0, allow_attributes: self.config.allow_attributes };
        p.element() && p.at_end()
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = vec!['<', '>', '/', ' ', '=', '"'];
        a.extend('a'..='z');
        a
    }

    fn seeds(&self) -> Vec<String> {
        let mut seeds = vec![
            "<a>x</a>".to_string(),
            "<a><b>y</b></a>".to_string(),
            "<p>hi<q>z</q></p>".to_string(),
            "<ab></ab>".to_string(),
            "<r>no<u>w</u>go</r>".to_string(),
        ];
        if self.config.allow_attributes {
            seeds.push("<a k=\"v\">x</a>".to_string());
        }
        seeds
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        gen_element(rng, budget, &self.config)
    }
}

fn gen_name(rng: &mut dyn RngCore, max_len: usize) -> String {
    let len = rng.gen_range(1..=max_len.max(1));
    (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26u8))).collect()
}

fn gen_element(rng: &mut dyn RngCore, budget: usize, config: &XmlConfig) -> String {
    let name = gen_name(rng, config.max_name_len);
    let attr = if config.allow_attributes && rng.gen_bool(0.3) {
        format!(
            " {}=\"{}\"",
            gen_name(rng, config.max_name_len),
            gen_name(rng, config.max_name_len)
        )
    } else {
        String::new()
    };
    let close_name = gen_name(rng, config.max_name_len);
    let mut content = String::new();
    if budget > 8 {
        let pieces = rng.gen_range(0..=2);
        let mut remaining = budget.saturating_sub(name.len() + close_name.len() + 5);
        for _ in 0..pieces {
            if rng.gen_bool(0.5) && remaining > 8 {
                let child = remaining / 2;
                content.push_str(&gen_element(rng, child, config));
                remaining = remaining.saturating_sub(child);
            } else {
                content.push_str(&gen_name(rng, 4));
                remaining = remaining.saturating_sub(4);
            }
        }
    } else if rng.gen_bool(0.7) {
        content = gen_name(rng, 3);
    }
    format!("<{name}{attr}>{content}</{close_name}>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_simple_documents() {
        let x = Xml::new();
        for ok in [
            "<a></a>",
            "<a>x</a>",
            "<a><b>y</b></a>",
            "<p>hi<q>z</q>bye</p>",
            "<a>x</b>", // close-tag names need not match
            "<tag k=\"v\">t</tag>",
            "<a k=\"\">x</a>",
            "<a><b></b><c></c></a>",
        ] {
            assert!(x.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        let x = Xml::new();
        for bad in [
            "",
            "x",
            "<a>",
            "</a>",
            "<a>x",
            "<a>x</a",
            "<a>x</a>y",
            "<a>x</a><b></b>",
            "<>x</a>",
            "<a >x</a>",
            "<a k=>x</a>",
            "<a k=\"V\">x</a>",
            "<a><b>x</a>",
            "<A>x</A>",
        ] {
            assert!(!x.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn attribute_free_configuration() {
        let x = Xml::with_config(XmlConfig { allow_attributes: false, max_name_len: 2 });
        assert!(x.accepts("<a>x</a>"));
        assert!(!x.accepts("<a k=\"v\">x</a>"));
        assert!(!x.config().allow_attributes);
    }

    #[test]
    fn toy_xml_string_from_paper() {
        // Figure 2 seed (with tag name "p"): <p><p>p</p></p>
        let x = Xml::new();
        assert!(x.accepts("<p><p>p</p></p>"));
    }

    #[test]
    fn generator_members() {
        let x = Xml::new();
        let mut rng = StdRng::seed_from_u64(23);
        let corpus = x.generate_corpus(&mut rng, 40, 80);
        assert!(corpus.len() > 20);
        for s in &corpus {
            assert!(x.accepts(s), "{s}");
        }
        assert!(corpus.iter().any(|s| s.contains('=')), "some sample should carry an attribute");
    }
}
