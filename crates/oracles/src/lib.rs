//! Black-box program-input oracles for the V-Star reproduction.
//!
//! The paper instantiates the minimally adequate teacher with black-box programs:
//! an input string is "in the language" iff the program accepts it. This crate
//! provides from-scratch recursive-descent recognizers for the five evaluation
//! grammars of the paper's Table 1 — JSON, LISP (S-expressions), XML, While and
//! MathExpr — plus the two illustrative toy languages (Figure 1 and Figure 2) and a
//! Dyck-style warm-up language.
//!
//! Each language implements the [`Language`] trait:
//!
//! * [`Language::accepts`] — the membership oracle (what the black-box program answers),
//! * [`Language::seeds`] — the seed strings given to the learners,
//! * [`Language::generate`] — a random sentence generator used to build recall
//!   datasets (the paper samples its recall datasets from the ARVADA artifact; we
//!   sample from reference generators instead, see DESIGN.md §5),
//! * [`Language::alphabet`] — the character alphabet Σ.
//!
//! [`CountingOracle`] wraps any membership function with caching and unique-query
//! counting, which is how the paper's "#Queries" column is measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod json;
pub mod lisp;
pub mod mathexpr;
pub mod toy;
pub mod while_lang;
pub mod xml;

pub use counting::{CountedLanguage, CountingOracle};
pub use json::Json;
pub use lisp::Lisp;
pub use mathexpr::MathExpr;
pub use toy::{Dyck, Fig1, ToyXml};
pub use while_lang::WhileLang;
pub use xml::Xml;

use rand::RngCore;

/// A black-box program-input language: the oracle of the active-learning problem.
pub trait Language {
    /// A short identifier ("json", "xml", …) used in reports.
    fn name(&self) -> &'static str;

    /// The membership oracle `χ_L` (paper §4.1): `true` iff `input` is a valid
    /// program input.
    fn accepts(&self, input: &str) -> bool;

    /// The character alphabet Σ from which valid strings draw characters.
    fn alphabet(&self) -> Vec<char>;

    /// The seed strings handed to the grammar learners.
    fn seeds(&self) -> Vec<String>;

    /// Generates one random sentence of the language. `budget` loosely bounds the
    /// sentence size; generated sentences are always members of the language.
    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String;

    /// Generates `count` random sentences (deduplicated, best effort).
    fn generate_corpus(&self, rng: &mut dyn RngCore, budget: usize, count: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            let s = self.generate(rng, budget);
            debug_assert!(self.accepts(&s), "generator produced a non-member: {s:?}");
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }
}

/// Returns every bundled Table-1 language, in the paper's row order.
#[must_use]
pub fn table1_languages() -> Vec<Box<dyn Language>> {
    vec![
        Box::new(Json::new()),
        Box::new(Lisp::new()),
        Box::new(Xml::new()),
        Box::new(WhileLang::new()),
        Box::new(MathExpr::new()),
    ]
}

/// Looks up one Table-1 language by its [`Language::name`], the shared resolver
/// of every binary that takes a grammar name on the command line.
#[must_use]
pub fn language_by_name(name: &str) -> Option<Box<dyn Language>> {
    table1_languages().into_iter().find(|l| l.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_table1_languages_accept_their_seeds() {
        for lang in table1_languages() {
            for seed in lang.seeds() {
                assert!(lang.accepts(&seed), "{} rejects its own seed {seed:?}", lang.name());
            }
        }
    }

    #[test]
    fn all_table1_generators_produce_members() {
        let mut rng = StdRng::seed_from_u64(1);
        for lang in table1_languages() {
            for _ in 0..50 {
                let s = lang.generate(&mut rng, 20);
                assert!(lang.accepts(&s), "{} rejects generated {s:?}", lang.name());
            }
        }
    }

    #[test]
    fn seeds_use_only_alphabet_characters() {
        for lang in table1_languages() {
            let alphabet = lang.alphabet();
            for seed in lang.seeds() {
                for c in seed.chars() {
                    assert!(
                        alphabet.contains(&c),
                        "{}: seed char {c:?} missing from alphabet",
                        lang.name()
                    );
                }
            }
        }
    }

    #[test]
    fn languages_resolve_by_name() {
        for lang in table1_languages() {
            let found = language_by_name(lang.name()).expect("bundled language resolves");
            assert_eq!(found.name(), lang.name());
        }
        assert!(language_by_name("cobol").is_none());
    }

    #[test]
    fn corpus_generation_dedups() {
        let mut rng = StdRng::seed_from_u64(3);
        let lang = Json::new();
        let corpus = lang.generate_corpus(&mut rng, 15, 30);
        let unique: std::collections::BTreeSet<_> = corpus.iter().collect();
        assert_eq!(unique.len(), corpus.len());
        assert!(!corpus.is_empty());
    }
}
