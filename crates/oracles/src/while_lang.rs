//! The While-language oracle (paper Table 1, row "while").
//!
//! A compact imperative toy language with explicit block braces, so that loops and
//! conditionals introduce the nesting structure V-Star exploits:
//!
//! ```text
//! program := stmt
//! stmt    := basic (';' basic)*
//! basic   := "skip"
//!          | id ":=" aexp
//!          | "while" '(' bexp ')' '{' stmt '}'
//!          | "if" '(' bexp ')' '{' stmt '}' "else" '{' stmt '}'
//! bexp    := "true" | "false" | aexp ('<' | '=' | '>') aexp
//! aexp    := term (('+' | '-') term)*
//! term    := id | num | '(' aexp ')'
//! id      := [a-z]  (single letter)
//! num     := [0-9]+
//! ```
//!
//! No whitespace is allowed. Example: `x:=1;while(x<3){x:=x+1}`.

use rand::{Rng, RngCore};

use crate::Language;

/// The While-language oracle.
#[derive(Clone, Debug, Default)]
pub struct WhileLang {
    _private: (),
}

impl WhileLang {
    /// Creates the While-language oracle.
    #[must_use]
    pub fn new() -> Self {
        WhileLang::default()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn stmt(&mut self) -> bool {
        if !self.basic() {
            return false;
        }
        while self.peek() == Some(b';') {
            self.pos += 1;
            if !self.basic() {
                return false;
            }
        }
        true
    }

    fn basic(&mut self) -> bool {
        // Keywords first; they never collide with assignments because assignments
        // are a single id character followed by ':'.
        if self.s[self.pos..].starts_with(b"skip") {
            self.pos += 4;
            return true;
        }
        if self.s[self.pos..].starts_with(b"while(") {
            self.pos += 5;
            return self.eat(b'(')
                && self.bexp()
                && self.eat(b')')
                && self.eat(b'{')
                && self.stmt()
                && self.eat(b'}');
        }
        if self.s[self.pos..].starts_with(b"if(") {
            self.pos += 2;
            return self.eat(b'(')
                && self.bexp()
                && self.eat(b')')
                && self.eat(b'{')
                && self.stmt()
                && self.eat(b'}')
                && self.eat_keyword("else")
                && self.eat(b'{')
                && self.stmt()
                && self.eat(b'}');
        }
        // assignment: id ":=" aexp
        match self.peek() {
            Some(b'a'..=b'z') => {
                self.pos += 1;
                self.eat(b':') && self.eat(b'=') && self.aexp()
            }
            _ => false,
        }
    }

    fn bexp(&mut self) -> bool {
        if self.s[self.pos..].starts_with(b"true") {
            self.pos += 4;
            return true;
        }
        if self.s[self.pos..].starts_with(b"false") {
            self.pos += 5;
            return true;
        }
        if !self.aexp() {
            return false;
        }
        match self.peek() {
            Some(b'<') | Some(b'=') | Some(b'>') => {
                self.pos += 1;
                self.aexp()
            }
            _ => false,
        }
    }

    fn aexp(&mut self) -> bool {
        if !self.term() {
            return false;
        }
        while matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
            if !self.term() {
                return false;
            }
        }
        true
    }

    fn term(&mut self) -> bool {
        match self.peek() {
            Some(b'a'..=b'z') => {
                self.pos += 1;
                true
            }
            Some(b'0'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                true
            }
            Some(b'(') => {
                self.pos += 1;
                self.aexp() && self.eat(b')')
            }
            _ => false,
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.s.len()
    }
}

impl Language for WhileLang {
    fn name(&self) -> &'static str {
        "while"
    }

    fn accepts(&self, input: &str) -> bool {
        if !input.is_ascii() {
            return false;
        }
        let mut p = Parser { s: input.as_bytes(), pos: 0 };
        p.stmt() && p.at_end()
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = vec!['(', ')', '{', '}', ';', ':', '=', '<', '>', '+', '-'];
        a.extend('a'..='z');
        a.extend('0'..='9');
        a
    }

    fn seeds(&self) -> Vec<String> {
        vec![
            "x:=1".to_string(),
            "skip;x:=2".to_string(),
            "while(x<3){x:=x+1}".to_string(),
            "if(x=0){skip}else{y:=7}".to_string(),
            "x:=(y+1)-2".to_string(),
            "skip".to_string(),
            "i:=e+2".to_string(),
            "while(true){skip}".to_string(),
            "f:=5;d:=o".to_string(),
            "while(false){skip}".to_string(),
            "z:=(4)".to_string(),
            "if(2<14){skip}else{k:=9}".to_string(),
        ]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        gen_stmt(rng, budget)
    }
}

fn gen_id(rng: &mut dyn RngCore) -> char {
    char::from(b'a' + rng.gen_range(0..26u8))
}

fn gen_num(rng: &mut dyn RngCore) -> String {
    format!("{}", rng.gen_range(0..20u32))
}

fn gen_term(rng: &mut dyn RngCore, budget: usize) -> String {
    match rng.gen_range(0..3) {
        0 => gen_id(rng).to_string(),
        1 => gen_num(rng),
        _ if budget > 4 => format!("({})", gen_aexp(rng, budget - 2)),
        _ => gen_id(rng).to_string(),
    }
}

fn gen_aexp(rng: &mut dyn RngCore, budget: usize) -> String {
    let mut s = gen_term(rng, budget / 2);
    if budget > 3 && rng.gen_bool(0.4) {
        s.push(if rng.gen_bool(0.5) { '+' } else { '-' });
        s.push_str(&gen_term(rng, budget / 2));
    }
    s
}

fn gen_bexp(rng: &mut dyn RngCore, budget: usize) -> String {
    match rng.gen_range(0..4) {
        0 => "true".to_string(),
        1 => "false".to_string(),
        _ => {
            let op = ['<', '=', '>'][rng.gen_range(0..3)];
            format!("{}{op}{}", gen_aexp(rng, budget / 2), gen_aexp(rng, budget / 2))
        }
    }
}

fn gen_basic(rng: &mut dyn RngCore, budget: usize) -> String {
    let choice = if budget < 14 { rng.gen_range(0..2) } else { rng.gen_range(0..4) };
    match choice {
        0 => "skip".to_string(),
        1 => format!("{}:={}", gen_id(rng), gen_aexp(rng, budget.saturating_sub(3))),
        2 => format!(
            "while({}){{{}}}",
            gen_bexp(rng, budget / 3),
            gen_stmt(rng, budget.saturating_sub(10))
        ),
        _ => format!(
            "if({}){{{}}}else{{{}}}",
            gen_bexp(rng, budget / 4),
            gen_stmt(rng, budget / 4),
            gen_stmt(rng, budget / 4)
        ),
    }
}

fn gen_stmt(rng: &mut dyn RngCore, budget: usize) -> String {
    let mut s = gen_basic(rng, budget);
    if budget > 10 && rng.gen_bool(0.35) {
        s.push(';');
        s.push_str(&gen_basic(rng, budget / 2));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_valid_programs() {
        let w = WhileLang::new();
        for ok in [
            "skip",
            "x:=1",
            "x:=y",
            "x:=1;y:=2",
            "x:=(1+2)-z",
            "while(x<3){x:=x+1}",
            "while(true){skip}",
            "if(x=0){skip}else{y:=7}",
            "if(false){x:=1}else{while(y>0){y:=y-1}}",
            "s:=1", // 's' id does not clash with "skip"
            "w:=2",
        ] {
            assert!(w.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_invalid_programs() {
        let w = WhileLang::new();
        for bad in [
            "",
            "x:=",
            ":=1",
            "x=1",
            "x:=1;",
            ";x:=1",
            "while(x<3)x:=1",
            "while(x<3){x:=1",
            "whilex<3){x:=1}",
            "if(x=0){skip}",
            "if(x=0){skip}else",
            "skip skip",
            "x:=1 ;y:=2",
            "x:=+1",
            "while(x){skip}",
            "X:=1",
        ] {
            assert!(!w.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn nested_loops() {
        let w = WhileLang::new();
        assert!(w.accepts("while(x<3){while(y<2){y:=y+1};x:=x+1}"));
        assert!(w.accepts("if(x<1){if(y<1){skip}else{skip}}else{skip}"));
    }

    #[test]
    fn seeds_accepted() {
        let w = WhileLang::new();
        for s in w.seeds() {
            assert!(w.accepts(&s), "{s}");
        }
    }

    #[test]
    fn generator_members() {
        let w = WhileLang::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..150 {
            let s = w.generate(&mut rng, 30);
            assert!(w.accepts(&s), "{s}");
        }
    }
}
