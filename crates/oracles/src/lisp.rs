//! The LISP / S-expression oracle (paper Table 1, row "lisp").
//!
//! ```text
//! expr := atom | list
//! list := '(' ')' | '(' expr (' ' expr)* ')'
//! atom := [a-z]+ | [0-9]+
//! ```
//!
//! A single space separates sibling expressions inside a list; no other whitespace
//! is allowed. Parentheses are the call/return pair of the underlying VPL.

use rand::{Rng, RngCore};

use crate::Language;

/// The S-expression oracle language.
#[derive(Clone, Debug, Default)]
pub struct Lisp {
    _private: (),
}

impl Lisp {
    /// Creates the LISP oracle.
    #[must_use]
    pub fn new() -> Self {
        Lisp::default()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> bool {
        match self.peek() {
            Some(b'(') => self.list(),
            Some(b'a'..=b'z') => {
                while matches!(self.peek(), Some(b'a'..=b'z')) {
                    self.pos += 1;
                }
                true
            }
            Some(b'0'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                true
            }
            _ => false,
        }
    }

    fn list(&mut self) -> bool {
        if !self.eat(b'(') {
            return false;
        }
        if self.eat(b')') {
            return true;
        }
        loop {
            if !self.expr() {
                return false;
            }
            if self.eat(b')') {
                return true;
            }
            if !self.eat(b' ') {
                return false;
            }
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.s.len()
    }
}

impl Language for Lisp {
    fn name(&self) -> &'static str {
        "lisp"
    }

    fn accepts(&self, input: &str) -> bool {
        if !input.is_ascii() {
            return false;
        }
        let mut p = Parser { s: input.as_bytes(), pos: 0 };
        p.expr() && p.at_end()
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = vec!['(', ')', ' '];
        a.extend('a'..='z');
        a.extend('0'..='9');
        a
    }

    fn seeds(&self) -> Vec<String> {
        vec![
            "(add 1 2)".to_string(),
            "(f (g x) y)".to_string(),
            "()".to_string(),
            "(cons a (cons b nil))".to_string(),
            "42".to_string(),
            "xyz".to_string(),
            "(q)".to_string(),
        ]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        gen_expr(rng, budget)
    }
}

fn gen_expr(rng: &mut dyn RngCore, budget: usize) -> String {
    if budget < 4 || rng.gen_bool(0.4) {
        gen_atom(rng)
    } else {
        let n = rng.gen_range(0..=3.min(budget / 3));
        let mut remaining = budget.saturating_sub(2);
        let mut parts = Vec::new();
        for _ in 0..n {
            let child = remaining / 2;
            parts.push(gen_expr(rng, child));
            remaining = remaining.saturating_sub(child + 1);
        }
        format!("({})", parts.join(" "))
    }
}

fn gen_atom(rng: &mut dyn RngCore) -> String {
    if rng.gen_bool(0.5) {
        let len = rng.gen_range(1..=3);
        (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26u8))).collect()
    } else {
        format!("{}", rng.gen_range(0..100u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_atoms_and_lists() {
        let l = Lisp::new();
        for ok in
            ["x", "abc", "42", "()", "(x)", "(add 1 2)", "(f (g x) y)", "((()))", "(a (b (c)))"]
        {
            assert!(l.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_expressions() {
        let l = Lisp::new();
        for bad in [
            "", "(", ")", "(x", "x)", "( x)", "(x )", "(x  y)", "(x y) ", "a b", "(a,b)", "(A)",
            "()()",
        ] {
            assert!(!l.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn seeds_accepted() {
        let l = Lisp::new();
        for s in l.seeds() {
            assert!(l.accepts(&s), "{s}");
        }
    }

    #[test]
    fn generator_members() {
        let l = Lisp::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = l.generate(&mut rng, 20);
            assert!(l.accepts(&s), "{s}");
        }
    }

    #[test]
    fn deep_nesting() {
        let l = Lisp::new();
        let deep = format!("{}{}{}", "(".repeat(30), "x", ")".repeat(30));
        assert!(l.accepts(&deep));
        let unbalanced = format!("{}{}{}", "(".repeat(30), "x", ")".repeat(29));
        assert!(!l.accepts(&unbalanced));
    }
}
