//! Toy oracles used as running examples throughout the paper.
//!
//! * [`Fig1`] — the character-based VPL of Figure 1
//!   (`L → ‹a A b› L | c B | ε`, `A → ‹g L h› E`, `B → d L`, `E → ε`).
//! * [`ToyXml`] — the token-based toy XML of Figure 2
//!   (`L → OPEN L CLOSE | TEXT` with `OPEN = <p>`, `CLOSE = </p>`, `TEXT = [a-z]+`).
//! * [`Dyck`] — balanced parentheses with plain `x` bodies, a minimal warm-up
//!   language for the VPA learner.

use rand::{Rng, RngCore};
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::Vpg;

use crate::Language;

/// The Figure-1 running-example language.
#[derive(Clone, Debug)]
pub struct Fig1 {
    grammar: Vpg,
}

impl Default for Fig1 {
    fn default() -> Self {
        Fig1 { grammar: figure1_grammar() }
    }
}

impl Fig1 {
    /// Creates the Figure-1 oracle.
    #[must_use]
    pub fn new() -> Self {
        Fig1::default()
    }

    /// The reference VPG (with the oracle tagging `{(a,b),(g,h)}`).
    #[must_use]
    pub fn grammar(&self) -> &Vpg {
        &self.grammar
    }
}

impl Language for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn accepts(&self, input: &str) -> bool {
        self.grammar.accepts(input)
    }

    fn alphabet(&self) -> Vec<char> {
        vec!['a', 'b', 'c', 'd', 'g', 'h']
    }

    fn seeds(&self) -> Vec<String> {
        // The single seed string used in the paper's §4.3 walkthrough.
        vec!["agcdcdhbcd".to_string()]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        // Direct reference generator for `L → ‹a A b› L | c B | ε`,
        // `A → ‹g L h› E`, `B → d L`: like the other oracles, generation is
        // independent of any learned-grammar machinery.
        fn gen_l(rng: &mut dyn RngCore, budget: usize, out: &mut String) {
            let mut remaining = budget;
            loop {
                let choice = if remaining >= 6 {
                    rng.gen_range(0..3)
                } else if remaining >= 2 {
                    rng.gen_range(0..2)
                } else {
                    0
                };
                match choice {
                    0 => return,
                    1 => {
                        out.push_str("cd");
                        remaining -= 2;
                    }
                    _ => {
                        out.push_str("ag");
                        gen_l(rng, (remaining - 6) / 2, out);
                        out.push_str("hb");
                        remaining = remaining.saturating_sub(6) / 2;
                    }
                }
            }
        }
        let mut out = String::new();
        gen_l(rng, budget, &mut out);
        out
    }
}

/// The Figure-2 toy XML language over the multi-character tokens `<p>` / `</p>`.
#[derive(Clone, Debug, Default)]
pub struct ToyXml {
    _private: (),
}

impl ToyXml {
    /// Creates the toy-XML oracle.
    #[must_use]
    pub fn new() -> Self {
        ToyXml::default()
    }
}

impl Language for ToyXml {
    fn name(&self) -> &'static str {
        "toy_xml"
    }

    fn accepts(&self, input: &str) -> bool {
        // L := "<p>" L "</p>" | [a-z]+
        fn parse(s: &[u8], pos: usize) -> Option<usize> {
            if s[pos..].starts_with(b"<p>") {
                let inner = parse(s, pos + 3)?;
                if s[inner..].starts_with(b"</p>") {
                    Some(inner + 4)
                } else {
                    None
                }
            } else {
                let mut i = pos;
                while i < s.len() && s[i].is_ascii_lowercase() {
                    i += 1;
                }
                if i > pos {
                    Some(i)
                } else {
                    None
                }
            }
        }
        if !input.is_ascii() {
            return false;
        }
        parse(input.as_bytes(), 0) == Some(input.len())
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = vec!['<', '>', '/'];
        a.extend('a'..='z');
        a
    }

    fn seeds(&self) -> Vec<String> {
        vec!["<p><p>p</p></p>".to_string()]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        let depth = rng.gen_range(0..=(budget / 7).min(4));
        let text_len = rng.gen_range(1..=3);
        let text: String =
            (0..text_len).map(|_| char::from(b'a' + rng.gen_range(0..26u8))).collect();
        format!("{}{}{}", "<p>".repeat(depth), text, "</p>".repeat(depth))
    }
}

/// Balanced parentheses with `x` bodies.
#[derive(Clone, Debug, Default)]
pub struct Dyck {
    _private: (),
}

impl Dyck {
    /// Creates the Dyck oracle.
    #[must_use]
    pub fn new() -> Self {
        Dyck::default()
    }
}

impl Language for Dyck {
    fn name(&self) -> &'static str {
        "dyck"
    }

    fn accepts(&self, input: &str) -> bool {
        let mut depth: i64 = 0;
        for c in input.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn alphabet(&self) -> Vec<char> {
        vec!['(', ')', 'x']
    }

    fn seeds(&self) -> Vec<String> {
        vec!["(x(x))x".to_string(), "()".to_string()]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        let mut remaining = budget.max(2);
        while remaining > 0 {
            match rng.gen_range(0..3) {
                0 if remaining > depth + 1 => {
                    out.push('(');
                    depth += 1;
                }
                1 if depth > 0 => {
                    out.push(')');
                    depth -= 1;
                }
                _ => out.push('x'),
            }
            remaining -= 1;
        }
        out.push_str(&")".repeat(depth));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_matches_reference_grammar() {
        let f = Fig1::new();
        assert!(f.accepts("agcdcdhbcd"));
        assert!(f.accepts(""));
        assert!(f.accepts("cd"));
        assert!(!f.accepts("ab"));
        assert!(!f.accepts("ag"));
        assert_eq!(f.grammar().nonterminal_count(), 4);
    }

    #[test]
    fn fig1_generation() {
        let f = Fig1::new();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let s = f.generate(&mut rng, 20);
            assert!(f.accepts(&s), "{s:?}");
        }
    }

    #[test]
    fn toy_xml_examples() {
        let t = ToyXml::new();
        assert!(t.accepts("p"));
        assert!(t.accepts("hello"));
        assert!(t.accepts("<p>p</p>"));
        assert!(t.accepts("<p><p>p</p></p>"));
        assert!(!t.accepts("<p></p>")); // the innermost body must be text
        assert!(!t.accepts("<p>p"));
        assert!(!t.accepts("<p>p</p></p>"));
        assert!(!t.accepts(""));
        assert!(!t.accepts("<q>p</q>"));
    }

    #[test]
    fn toy_xml_generation() {
        let t = ToyXml::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = t.generate(&mut rng, 25);
            assert!(t.accepts(&s), "{s:?}");
        }
    }

    #[test]
    fn dyck_examples() {
        let d = Dyck::new();
        assert!(d.accepts(""));
        assert!(d.accepts("()"));
        assert!(d.accepts("(x(x))x"));
        assert!(!d.accepts("("));
        assert!(!d.accepts(")("));
        assert!(!d.accepts("(y)"));
    }

    #[test]
    fn dyck_generation() {
        let d = Dyck::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = d.generate(&mut rng, 12);
            assert!(d.accepts(&s), "{s:?}");
        }
    }

    #[test]
    fn toy_seeds_accepted() {
        for lang in [&Fig1::new() as &dyn Language, &ToyXml::new(), &Dyck::new()] {
            for s in lang.seeds() {
                assert!(lang.accepts(&s), "{} seed {s:?}", lang.name());
            }
        }
    }
}
