//! The MathExpr oracle (paper Table 1, row "mathexpr").
//!
//! Arithmetic expressions with named single-argument functions:
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' | '/') factor)*
//! factor := num | '(' expr ')' | func '(' expr ')'
//! func   := "sin" | "cos" | "tan" | "log" | "exp" | "abs"
//! num    := [0-9]+
//! ```
//!
//! The paper notes that the large pool of constant function names is what makes
//! MathExpr expensive for V-Star (it explores the combinations exhaustively); the
//! function-name pool is configurable so that ablations can vary this cost.

use rand::{Rng, RngCore};

use crate::Language;

/// Default function-name pool.
pub const DEFAULT_FUNCTIONS: &[&str] = &["sin", "cos", "tan", "log", "exp", "abs"];

/// The MathExpr oracle language.
#[derive(Clone, Debug)]
pub struct MathExpr {
    functions: Vec<String>,
}

impl Default for MathExpr {
    fn default() -> Self {
        MathExpr { functions: DEFAULT_FUNCTIONS.iter().map(|s| (*s).to_string()).collect() }
    }
}

impl MathExpr {
    /// Creates the MathExpr oracle with the default function pool.
    #[must_use]
    pub fn new() -> Self {
        MathExpr::default()
    }

    /// Creates the oracle with a custom pool of function names.
    ///
    /// # Panics
    ///
    /// Panics if `functions` is empty or contains non-lowercase-ASCII names.
    #[must_use]
    pub fn with_functions(functions: &[&str]) -> Self {
        assert!(!functions.is_empty(), "function pool must not be empty");
        for f in functions {
            assert!(
                !f.is_empty() && f.chars().all(|c| c.is_ascii_lowercase()),
                "function names must be lowercase ASCII"
            );
        }
        MathExpr { functions: functions.iter().map(|s| (*s).to_string()).collect() }
    }

    /// The configured function names.
    #[must_use]
    pub fn functions(&self) -> &[String] {
        &self.functions
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    functions: &'a [String],
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> bool {
        if !self.term() {
            return false;
        }
        while matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
            if !self.term() {
                return false;
            }
        }
        true
    }

    fn term(&mut self) -> bool {
        if !self.factor() {
            return false;
        }
        while matches!(self.peek(), Some(b'*') | Some(b'/')) {
            self.pos += 1;
            if !self.factor() {
                return false;
            }
        }
        true
    }

    fn factor(&mut self) -> bool {
        match self.peek() {
            Some(b'0'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                true
            }
            Some(b'(') => {
                self.pos += 1;
                self.expr() && self.eat(b')')
            }
            Some(b'a'..=b'z') => {
                for f in self.functions {
                    if self.s[self.pos..].starts_with(f.as_bytes()) {
                        self.pos += f.len();
                        return self.eat(b'(') && self.expr() && self.eat(b')');
                    }
                }
                false
            }
            _ => false,
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.s.len()
    }
}

impl Language for MathExpr {
    fn name(&self) -> &'static str {
        "mathexpr"
    }

    fn accepts(&self, input: &str) -> bool {
        if !input.is_ascii() {
            return false;
        }
        let mut p = Parser { s: input.as_bytes(), pos: 0, functions: &self.functions };
        p.expr() && p.at_end()
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a = vec!['(', ')', '+', '-', '*', '/'];
        a.extend('0'..='9');
        let mut letters: Vec<char> = self.functions.iter().flat_map(|f| f.chars()).collect();
        letters.sort_unstable();
        letters.dedup();
        a.extend(letters);
        a
    }

    fn seeds(&self) -> Vec<String> {
        vec![
            "1+2*3".to_string(),
            "sin(4)".to_string(),
            "(1+2)/3".to_string(),
            "cos(sin(5)+1)".to_string(),
            "12-7".to_string(),
            "0".to_string(),
            "tan(8)*2".to_string(),
            "log(1)-exp(0)".to_string(),
            "abs(9)".to_string(),
        ]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        gen_expr(rng, budget, &self.functions)
    }
}

fn gen_expr(rng: &mut dyn RngCore, budget: usize, functions: &[String]) -> String {
    let mut s = gen_term(rng, budget / 2, functions);
    if budget > 4 && rng.gen_bool(0.4) {
        s.push(if rng.gen_bool(0.5) { '+' } else { '-' });
        s.push_str(&gen_term(rng, budget / 2, functions));
    }
    s
}

fn gen_term(rng: &mut dyn RngCore, budget: usize, functions: &[String]) -> String {
    let mut s = gen_factor(rng, budget / 2, functions);
    if budget > 4 && rng.gen_bool(0.3) {
        s.push(if rng.gen_bool(0.5) { '*' } else { '/' });
        s.push_str(&gen_factor(rng, budget / 2, functions));
    }
    s
}

fn gen_factor(rng: &mut dyn RngCore, budget: usize, functions: &[String]) -> String {
    let choice = if budget < 6 { 0 } else { rng.gen_range(0..3) };
    match choice {
        0 => format!("{}", rng.gen_range(0..100u32)),
        1 => format!("({})", gen_expr(rng, budget.saturating_sub(2), functions)),
        _ => {
            let f = &functions[rng.gen_range(0..functions.len())];
            format!("{f}({})", gen_expr(rng, budget.saturating_sub(f.len() + 2), functions))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_valid_expressions() {
        let m = MathExpr::new();
        for ok in [
            "1",
            "42",
            "1+2",
            "1+2*3",
            "(1+2)*3",
            "sin(4)",
            "cos(sin(5)+1)",
            "1/2/3",
            "abs(7)-exp(0)",
            "((((1))))",
        ] {
            assert!(m.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_invalid_expressions() {
        let m = MathExpr::new();
        for bad in [
            "", "+1", "1+", "1**2", "(1+2", "1+2)", "sin", "sin()", "sin 4", "foo(1)", "1 + 2",
            "sin(4)x", "-1",
        ] {
            assert!(!m.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn custom_function_pool() {
        let m = MathExpr::with_functions(&["f", "gg"]);
        assert!(m.accepts("f(1)"));
        assert!(m.accepts("gg(2+3)"));
        assert!(!m.accepts("sin(1)"));
        assert_eq!(m.functions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "function pool must not be empty")]
    fn empty_function_pool_panics() {
        let _ = MathExpr::with_functions(&[]);
    }

    #[test]
    fn seeds_accepted() {
        let m = MathExpr::new();
        for s in m.seeds() {
            assert!(m.accepts(&s), "{s}");
        }
    }

    #[test]
    fn generator_members() {
        let m = MathExpr::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..150 {
            let s = m.generate(&mut rng, 25);
            assert!(m.accepts(&s), "{s}");
        }
    }
}
