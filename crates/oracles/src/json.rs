//! The JSON oracle (paper Table 1, row "json").
//!
//! A compact JSON dialect chosen to exercise everything the paper's algorithm must
//! handle while keeping the alphabet small:
//!
//! ```text
//! value  := object | array | string | number | "true" | "false" | "null"
//! object := '{' '}' | '{' pair (',' pair)* '}'
//! pair   := string ':' value
//! array  := '[' ']' | '[' value (',' value)* ']'
//! string := '"' [a-z0-9{]* '"'
//! number := '-'? ('0' | [1-9][0-9]*)
//! ```
//!
//! Note that `{` may occur *inside* strings (e.g. `{"{"  : true}` in the paper's
//! §5.1 discussion of the *k*-Repetition property): `{` is a call token of the
//! token-level VPL, yet some of its occurrences are plain text. No whitespace is
//! allowed, mirroring the compact form used for learning.

use rand::{Rng, RngCore};

use crate::Language;

/// The JSON oracle language.
#[derive(Clone, Debug, Default)]
pub struct Json {
    _private: (),
}

impl Json {
    /// Creates the JSON oracle.
    #[must_use]
    pub fn new() -> Self {
        Json::default()
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Option<Self> {
        if !s.is_ascii() {
            return None;
        }
        Some(Parser { s: s.as_bytes(), pos: 0 })
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.eat_keyword("true"),
            Some(b'f') => self.eat_keyword("false"),
            Some(b'n') => self.eat_keyword("null"),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        if !self.eat(b'{') {
            return false;
        }
        if self.eat(b'}') {
            return true;
        }
        loop {
            if !self.pair() {
                return false;
            }
            if self.eat(b'}') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn pair(&mut self) -> bool {
        self.string() && self.eat(b':') && self.value()
    }

    fn array(&mut self) -> bool {
        if !self.eat(b'[') {
            return false;
        }
        if self.eat(b']') {
            return true;
        }
        loop {
            if !self.value() {
                return false;
            }
            if self.eat(b']') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.pos += 1;
                    return true;
                }
                b'a'..=b'z' | b'0'..=b'9' | b'{' => {
                    self.pos += 1;
                }
                _ => return false,
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        let _ = self.eat(b'-');
        match self.bump() {
            Some(b'0') => true,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                true
            }
            _ => false,
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.s.len()
    }
}

impl Language for Json {
    fn name(&self) -> &'static str {
        "json"
    }

    fn accepts(&self, input: &str) -> bool {
        match Parser::new(input) {
            Some(mut p) => p.value() && p.at_end(),
            None => false,
        }
    }

    fn alphabet(&self) -> Vec<char> {
        let mut a: Vec<char> = "{}[],:\"-".chars().collect();
        a.extend('a'..='z');
        a.extend('0'..='9');
        a
    }

    fn seeds(&self) -> Vec<String> {
        vec![
            "{\"a\":1}".to_string(),
            "{\"k\":{\"x\":2}}".to_string(),
            "[1,2]".to_string(),
            "[[true],null]".to_string(),
            "{\"b\":[0,\"s\"]}".to_string(),
            "{\"n\":-7,\"m\":false}".to_string(),
            "{}".to_string(),
            "[]".to_string(),
            "true".to_string(),
            "\"hi\"".to_string(),
            "-35".to_string(),
            "[null,false,10]".to_string(),
            "{\"v\":true,\"w\":null}".to_string(),
            "{\"\":0}".to_string(),
            "[{\"a\":1},\"s\"]".to_string(),
        ]
    }

    fn generate(&self, rng: &mut dyn RngCore, budget: usize) -> String {
        gen_value(rng, budget)
    }
}

fn gen_value(rng: &mut dyn RngCore, budget: usize) -> String {
    let choice = if budget < 4 { rng.gen_range(0..4) } else { rng.gen_range(0..6) };
    match choice {
        0 => gen_number(rng),
        1 => gen_string(rng, budget.min(5)),
        2 => "true".to_string(),
        3 => ["false", "null"][rng.gen_range(0..2)].to_string(),
        4 => {
            // object
            let n = rng.gen_range(0..=2.min(budget / 4));
            let mut parts = Vec::new();
            let mut remaining = budget.saturating_sub(2);
            for _ in 0..n {
                let child_budget = remaining / 2;
                parts.push(format!("{}:{}", gen_string(rng, 3), gen_value(rng, child_budget)));
                remaining = remaining.saturating_sub(child_budget);
            }
            format!("{{{}}}", parts.join(","))
        }
        _ => {
            // array
            let n = rng.gen_range(0..=2.min(budget / 3));
            let mut parts = Vec::new();
            let mut remaining = budget.saturating_sub(2);
            for _ in 0..n {
                let child_budget = remaining / 2;
                parts.push(gen_value(rng, child_budget));
                remaining = remaining.saturating_sub(child_budget);
            }
            format!("[{}]", parts.join(","))
        }
    }
}

fn gen_string(rng: &mut dyn RngCore, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len.max(1));
    let mut s = String::from("\"");
    for _ in 0..len {
        // Occasionally place a '{' inside the string to exercise k-Repetition.
        let c = if rng.gen_ratio(1, 12) { '{' } else { char::from(b'a' + rng.gen_range(0..26u8)) };
        s.push(c);
    }
    s.push('"');
    s
}

fn gen_number(rng: &mut dyn RngCore) -> String {
    let sign = if rng.gen_bool(0.2) { "-" } else { "" };
    let n: u32 = rng.gen_range(0..100);
    format!("{sign}{n}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn json() -> Json {
        Json::new()
    }

    #[test]
    fn accepts_scalars() {
        let j = json();
        for ok in ["0", "7", "-3", "42", "true", "false", "null", "\"\"", "\"abc\"", "\"a1\""] {
            assert!(j.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_bad_scalars() {
        let j = json();
        for bad in ["", "01", "+3", "-", "tru", "truex", "\"abc", "abc\"", "\"A\"", "\" \""] {
            assert!(!j.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn accepts_objects_and_arrays() {
        let j = json();
        for ok in [
            "{}",
            "[]",
            "{\"a\":1}",
            "{\"a\":1,\"b\":[]}",
            "[1,2,3]",
            "[[],[{}]]",
            "{\"k\":{\"x\":2}}",
            "[true,false,null]",
            "{\"s\":\"v\"}",
        ] {
            assert!(j.accepts(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_structures() {
        let j = json();
        for bad in [
            "{",
            "}",
            "{]",
            "[1,]",
            "{\"a\":}",
            "{\"a\"1}",
            "{a:1}",
            "[1 2]",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "[,]",
            "{,}",
            "{\"a\":1 }",
        ] {
            assert!(!j.accepts(bad), "{bad}");
        }
    }

    #[test]
    fn braces_inside_strings_are_plain_text() {
        let j = json();
        // The paper's §5.1 example (restricted to our string alphabet).
        assert!(j.accepts("{\"{\":true}"));
        // k-repeating the inner '{' keeps the string valid (k-Repetition property).
        assert!(j.accepts("{\"{{\":true}"));
        assert!(j.accepts("{\"{{{{\":true}"));
        // But repeating the *structural* brace does not.
        assert!(!j.accepts("{{\"x\":true}"));
    }

    #[test]
    fn no_whitespace_dialect() {
        let j = json();
        assert!(!j.accepts("{ \"a\": 1 }"));
        assert!(!j.accepts(" 1"));
    }

    #[test]
    fn generator_produces_members_and_variety() {
        let j = json();
        let mut rng = StdRng::seed_from_u64(11);
        let corpus = j.generate_corpus(&mut rng, 25, 100);
        assert!(corpus.len() > 20);
        assert!(corpus.iter().any(|s| s.contains('{')));
        assert!(corpus.iter().any(|s| s.contains('[')));
        for s in &corpus {
            assert!(j.accepts(s), "{s}");
        }
    }

    #[test]
    fn seeds_are_structurally_diverse() {
        let seeds = json().seeds();
        assert!(seeds.iter().any(|s| s.contains('[')));
        assert!(seeds.iter().any(|s| s.contains('{')));
        assert!(seeds.iter().any(|s| s.contains("}}")));
    }
}
