//! Integration tests of the counterexample-guided refinement loop: campaign
//! divergences must export as replayable counterexamples, an injected
//! over-generalization must be *repaired* (not just detected) within the
//! round budget, the concrete fuzzer-found precision gaps of the bundled
//! `while`/`json` grammars must close, and a refinement pass must never
//! decrease recall on held-out corpus words.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::equivalence::TestPoolConfig;
use vstar::refine::RefineConfig;
use vstar::tokenizer::PartialTokenizer;
use vstar::{LearnedLanguage, Mat, TokenDiscovery, VStar, VStarConfig, VStarResult};
use vstar_fuzz::{surgery, CampaignEvidence, CaseClass, FuzzCampaign, FuzzConfig};
use vstar_oracles::{Fig1, Json, Language, WhileLang};
use vstar_parser::CompileLearned;
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{NonterminalId, RuleRhs, VpaBuilder, Vpg};

/// Wraps a VPG as a character-mode learned language (as the PR 3 campaign
/// regression tests do).
fn char_mode_learned(vpg: Vpg) -> LearnedLanguage {
    let tagging = vpg.tagging().clone();
    let mut b = VpaBuilder::new(tagging.clone());
    let q0 = b.add_state();
    b.set_initial(q0);
    LearnedLanguage::new(
        b.build().unwrap(),
        vpg,
        PartialTokenizer::from_tagging(&tagging),
        TokenDiscovery::Characters,
    )
}

/// A Fig1 pipeline whose equivalence pool is crippled to the seeds and their
/// shortest pieces — the learning-time analogue of grammar surgery: the
/// learner converges on an over-general hypothesis because the simulated
/// equivalence check cannot see past length-3 probes.
fn weak_fig1_pipeline() -> VStar {
    VStar::new(VStarConfig {
        token_discovery: TokenDiscovery::Characters,
        test_pool: TestPoolConfig { max_test_strings: 1, max_length: Some(3), rng_seed: 1 },
        ..VStarConfig::default()
    })
}

#[test]
fn surgery_divergences_export_as_replayable_counterexamples() {
    // PR 3's fault injection: the campaign must detect the weakened grammar,
    // and its report must export every distinct divergence as refinement
    // evidence with the right direction and provenance.
    let l = NonterminalId(0);
    let weak =
        surgery::with_extra_rule(&figure1_grammar(), l, RuleRhs::Linear { plain: 'd', next: l })
            .unwrap();
    let learned = char_mode_learned(weak);
    let oracle = Fig1::new();
    let config = FuzzConfig { seed: 42, iterations: 150, ..FuzzConfig::default() };
    let report = FuzzCampaign::new(&learned, &oracle, config).run();
    assert!(report.divergences_of(CaseClass::FalsePositive) > 0);

    let evidence = report.evidence();
    assert_eq!(evidence.len(), report.divergences.len());
    for (case, ev) in report.divergences.iter().zip(&evidence) {
        assert_eq!(ev.raw, case.minimized, "evidence replays the minimized witness");
        assert_eq!(ev.class_label(), case.class);
        assert_eq!(ev.learned_accepts, case.class == CaseClass::FalsePositive.label());
        assert_eq!(ev.oracle_accepts, case.class == CaseClass::FalseNegative.label());
        assert_eq!(ev.source, format!("fuzz:{}", case.mutation));
    }
}

#[test]
fn injected_overgeneralization_is_repaired_within_round_budget() {
    let lang = Fig1::new();
    let oracle = |s: &str| lang.accepts(s);
    let vstar = weak_fig1_pipeline();

    // The injected defect is real: the weakly-equivalence-checked hypothesis
    // accepts short non-members.
    let mat = Mat::new(&oracle);
    let base = vstar.learn(&mat, &lang.alphabet(), &lang.seeds()).expect("base learning succeeds");
    let probe: Vec<String> = vstar_vpl::words::all_strings(&lang.alphabet(), 5);
    let base_fp = probe.iter().filter(|w| base.accepts(&mat, w) && !lang.accepts(w)).count();
    assert!(base_fp > 0, "the crippled pool was expected to over-generalize");

    // One refinement loop with campaign evidence repairs it to exactness on
    // the probe set, within the default round budget.
    let mat = Mat::new(&oracle);
    let mut source = CampaignEvidence::new(
        &lang,
        FuzzConfig { seed: 42, iterations: 120, ..FuzzConfig::default() },
    );
    let budget = RefineConfig::default();
    let (refined, log) = vstar
        .learn_refined(&mat, &lang.alphabet(), &lang.seeds(), &mut source, budget.clone())
        .expect("refined learning succeeds");
    assert!(log.fixed_point, "refinement should reach a fixed point: {log:?}");
    assert!(log.campaigns_run <= budget.max_campaigns);
    assert!(log.counterexamples_replayed() > 0, "the repair must come from replayed evidence");
    for w in &probe {
        assert_eq!(refined.accepts(&mat, w), lang.accepts(w), "refined misjudges {w:?}");
    }

    // An independent campaign (different seed than the in-loop window) stays
    // divergence-free against the repaired grammar.
    let learned = refined.as_learned_language();
    let post = FuzzCampaign::new(
        &learned,
        &lang,
        FuzzConfig { seed: 977, iterations: 150, ..FuzzConfig::default() },
    )
    .run();
    assert_eq!(post.counts.divergences(), 0, "post-repair campaign diverged: {post:?}");
}

/// Learns `lang` with the default pipeline plus campaign-backed refinement
/// (the `refine`/`fuzz` binaries' configuration at a 300-iteration loop).
fn refine_bundled(lang: &dyn Language) -> (VStarResult, vstar::refine::RefineLog) {
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let mut source = CampaignEvidence::new(
        lang,
        FuzzConfig { seed: 42, iterations: 300, ..FuzzConfig::default() },
    );
    VStar::new(VStarConfig::default())
        .learn_refined(&mat, &lang.alphabet(), &lang.seeds(), &mut source, RefineConfig::default())
        .expect("refined learning succeeds")
}

#[test]
fn fuzzer_found_precision_gaps_of_while_and_json_are_repaired() {
    // The two over-generalizations the PR 3 fuzzer found in the bundled
    // grammars: learned `while` accepted identifiers in arithmetic positions,
    // learned `json` accepted number/value concatenations. Refinement must
    // repair exactly these witnesses and leave the gate campaign clean.
    let while_lang = WhileLang::new();
    let base = {
        let oracle = |s: &str| while_lang.accepts(s);
        let mat = Mat::new(&oracle);
        VStar::new(VStarConfig::default())
            .learn(&mat, &while_lang.alphabet(), &while_lang.seeds())
            .expect("base learning succeeds")
    };
    let base_compiled = base.compile().expect("compiles");
    assert!(base_compiled.recognize("x:=1-e1"), "the PR 3 witness should reproduce pre-repair");
    assert!(!while_lang.accepts("x:=1-e1"));

    let (refined, log) = refine_bundled(&while_lang);
    let compiled = refined.compile().expect("compiles");
    assert!(!compiled.recognize("x:=1-e1"), "refinement must repair the PR 3 witness");
    assert!(log.counterexamples_replayed() > 0);
    let post = FuzzCampaign::new(
        &refined.as_learned_language(),
        &while_lang,
        FuzzConfig { seed: 42, iterations: 150, ..FuzzConfig::default() },
    )
    .run();
    assert_eq!(post.counts.divergences(), 0, "while gate campaign diverged: {post:?}");

    let json_lang = Json::new();
    let (refined, _log) = refine_bundled(&json_lang);
    let compiled = refined.compile().expect("compiles");
    assert!(!compiled.recognize("7{\"\":0}"), "refinement must repair the PR 3 json witness");
    assert!(compiled.recognize("{\"\":0}"), "repair must not lose valid json");
    let post = FuzzCampaign::new(
        &refined.as_learned_language(),
        &json_lang,
        FuzzConfig { seed: 42, iterations: 150, ..FuzzConfig::default() },
    )
    .run();
    assert_eq!(post.counts.divergences(), 0, "json gate campaign diverged: {post:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A refinement round never decreases recall on held-out corpus words:
    /// for any held-out corpus drawn from the oracle's generator, every
    /// member the weakly-learned hypothesis accepted is still accepted after
    /// campaign-driven refinement.
    #[test]
    fn refinement_never_decreases_recall_on_held_out_corpus(
        corpus_seed in 0u64..1000,
        campaign_seed in 0u64..1000,
    ) {
        let lang = Fig1::new();
        let oracle = |s: &str| lang.accepts(s);
        let vstar = weak_fig1_pipeline();
        let mut rng = StdRng::seed_from_u64(corpus_seed);
        let corpus = lang.generate_corpus(&mut rng, 14, 30);
        prop_assert!(!corpus.is_empty());

        let mat = Mat::new(&oracle);
        let base = vstar
            .learn(&mat, &lang.alphabet(), &lang.seeds())
            .expect("base learning succeeds");
        let base_recall = corpus.iter().filter(|w| base.accepts(&mat, w)).count();

        let mat = Mat::new(&oracle);
        let mut source = CampaignEvidence::new(
            &lang,
            FuzzConfig { seed: campaign_seed, iterations: 100, ..FuzzConfig::default() },
        );
        let (refined, log) = vstar
            .learn_refined(&mat, &lang.alphabet(), &lang.seeds(), &mut source, RefineConfig::default())
            .expect("refined learning succeeds");
        let refined_recall = corpus.iter().filter(|w| refined.accepts(&mat, w)).count();
        prop_assert!(
            refined_recall >= base_recall,
            "refinement decreased recall {base_recall} -> {refined_recall} \
             (corpus seed {corpus_seed}, campaign seed {campaign_seed}, log {log:?})"
        );
    }
}
