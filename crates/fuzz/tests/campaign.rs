//! Campaign-level regression tests: the differential fuzzer must (a) stay
//! silent on a faithful grammar, (b) detect injected divergences in both
//! directions within a small iteration budget, (c) produce minimized cases
//! that still reproduce their classification, and (d) be bit-for-bit
//! deterministic for a fixed seed.

use vstar::tokenizer::PartialTokenizer;
use vstar::{LearnedLanguage, Mat, TokenDiscovery};
use vstar_fuzz::{surgery, CaseClass, FuzzCampaign, FuzzConfig};
use vstar_oracles::{Fig1, Language};
use vstar_parser::LearnedParser;
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{NonterminalId, RuleRhs, VpaBuilder, Vpg};

/// Wraps a VPG as a character-mode learned language (the VPA member is a
/// placeholder; campaigns run the grammar through `LearnedParser`).
fn char_mode_learned(vpg: Vpg) -> LearnedLanguage {
    let tagging = vpg.tagging().clone();
    let mut b = VpaBuilder::new(tagging.clone());
    let q0 = b.add_state();
    b.set_initial(q0);
    LearnedLanguage::new(
        b.build().unwrap(),
        vpg,
        PartialTokenizer::from_tagging(&tagging),
        TokenDiscovery::Characters,
    )
}

fn quick_config(seed: u64) -> FuzzConfig {
    FuzzConfig { seed, iterations: 150, ..FuzzConfig::default() }
}

#[test]
fn faithful_grammar_yields_zero_divergences_and_full_coverage() {
    let learned = char_mode_learned(figure1_grammar());
    let oracle = Fig1::new();
    let report = FuzzCampaign::new(&learned, &oracle, quick_config(42)).run();
    assert_eq!(report.counts.divergences(), 0, "faithful fig1 diverged: {report:?}");
    assert!(report.divergences.is_empty());
    assert_eq!(report.divergences_beyond_cap, 0);
    assert_eq!(report.iterations, 150);
    assert_eq!(report.rules_total, figure1_grammar().rule_count());
    assert_eq!(
        report.rules_covered, report.rules_total,
        "150 grammar-directed iterations must exercise all 6 figure-1 rules"
    );
    assert!(report.corpus_trees > 0);
    assert!((report.precision_estimate - 1.0).abs() < 1e-12);
    assert!((report.recall_estimate - 1.0).abs() < 1e-12);
    // Both agreement classes must be populated: samples/mutations land inside
    // the language, perturbations land outside it.
    assert!(report.counts.agree_accept > 0);
    assert!(report.counts.agree_reject > 0);
}

#[test]
fn injected_overgeneralization_is_detected_as_false_positive() {
    // Weaken the grammar with `L → d L`: it now derives strings the oracle
    // rejects (a bare "d" to start with). The campaign samples from the
    // weakened grammar, so it must find the precision gap quickly.
    let l = NonterminalId(0);
    let weak =
        surgery::with_extra_rule(&figure1_grammar(), l, RuleRhs::Linear { plain: 'd', next: l })
            .unwrap();
    let learned = char_mode_learned(weak);
    let oracle = Fig1::new();
    let report = FuzzCampaign::new(&learned, &oracle, quick_config(42)).run();
    assert!(
        report.divergences_of(CaseClass::FalsePositive) > 0,
        "campaign missed the injected over-generalization: {report:?}"
    );
    assert!(report.counts.false_positive > 0);
    assert!(report.precision_estimate < 1.0);
    // Greedy subtree deletion reaches a witness of the injected rule: a
    // minimal false positive for this weakening is the single character "d".
    let smallest = report
        .divergences
        .iter()
        .filter(|d| d.class == CaseClass::FalsePositive.label())
        .map(|d| d.minimized.len())
        .min()
        .unwrap();
    assert_eq!(smallest, 1, "minimizer should shrink a divergence to one character");
}

#[test]
fn injected_undergeneralization_is_detected_as_false_negative() {
    // Remove `L → c B`: the grammar loses every string containing "cd…", and
    // the oracle's own seed string already witnesses the recall gap.
    let (l, b) = (NonterminalId(0), NonterminalId(2));
    let strict =
        surgery::without_rule(&figure1_grammar(), l, &RuleRhs::Linear { plain: 'c', next: b })
            .unwrap();
    let learned = char_mode_learned(strict);
    let oracle = Fig1::new();
    let report = FuzzCampaign::new(&learned, &oracle, quick_config(42)).run();
    assert!(
        report.divergences_of(CaseClass::FalseNegative) > 0,
        "campaign missed the injected under-generalization: {report:?}"
    );
    assert!(report.counts.false_negative > 0);
    assert!(report.recall_estimate < 1.0);
    // The seed phase alone must catch it (mutation label "seed").
    assert!(report
        .divergences
        .iter()
        .any(|d| d.class == CaseClass::FalseNegative.label() && d.mutation == "seed"));
}

#[test]
fn minimized_divergences_reproduce_their_classification() {
    let l = NonterminalId(0);
    let weak =
        surgery::with_extra_rule(&figure1_grammar(), l, RuleRhs::Linear { plain: 'd', next: l })
            .unwrap();
    let learned = char_mode_learned(weak);
    let oracle = Fig1::new();
    let report = FuzzCampaign::new(&learned, &oracle, quick_config(7)).run();
    assert!(report.found_divergence());

    let oracle_fn = |s: &str| oracle.accepts(s);
    let mat = Mat::new(&oracle_fn);
    let parser = LearnedParser::new(&learned);
    for case in &report.divergences {
        let reclass = CaseClass::from_flags(
            parser.accepts(&mat, &case.minimized),
            oracle.accepts(&case.minimized),
        );
        assert_eq!(
            reclass.label(),
            case.class,
            "minimized witness {:?} no longer reproduces {}",
            case.minimized,
            case.class
        );
        assert!(
            case.minimized.len() <= case.raw.len(),
            "minimization grew {:?} into {:?}",
            case.raw,
            case.minimized
        );
    }
}

#[test]
fn campaigns_are_deterministic_for_a_fixed_seed() {
    let l = NonterminalId(0);
    let weak =
        surgery::with_extra_rule(&figure1_grammar(), l, RuleRhs::Linear { plain: 'd', next: l })
            .unwrap();
    let learned = char_mode_learned(weak);
    let oracle = Fig1::new();
    let a = FuzzCampaign::new(&learned, &oracle, quick_config(1234)).run();
    let b = FuzzCampaign::new(&learned, &oracle, quick_config(1234)).run();
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&b).unwrap(),
        "same seed must reproduce the identical report"
    );
    // A different seed still finds the injected bug (not a fluke of one seed),
    // though the exact report may differ.
    let c = FuzzCampaign::new(&learned, &oracle, quick_config(99)).run();
    assert!(c.counts.false_positive > 0);
}
