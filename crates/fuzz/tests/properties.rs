//! Property tests for the fuzzing subsystem's two core contracts:
//!
//! * the grammar-preserving mutators are *closed under membership* — every
//!   mutated tree's word is still recognized by the source VPG (on random
//!   seeded VPGs, not just the figure-1 example);
//! * the minimizers preserve the predicate they are driven by — in campaign
//!   terms, a minimized divergence still reproduces the original divergence
//!   classification.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vstar_fuzz::{minimize_string, Mutator, RuleCoverage, TreeMinimizer};
use vstar_parser::{GrammarSampler, VpgParser};
use vstar_vpl::{Tagging, Vpg, VpgBuilder};

const CALLS: [char; 2] = ['(', '['];
const RETS: [char; 2] = [')', ']'];
const PLAINS: [char; 3] = ['x', 'y', 'z'];

/// A random small well-matched VPG over two call/return pairs (same generator
/// shape as the parser crate's property suite).
fn random_vpg(seed: u64) -> Vpg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = VpgBuilder::new(Tagging::from_pairs([('(', ')'), ('[', ']')]).unwrap());
    let n = rng.gen_range(1usize..5);
    let nts: Vec<_> = (0..n).map(|i| b.nonterminal(&format!("N{i}"))).collect();
    for &nt in &nts {
        let alts = rng.gen_range(1usize..4);
        for _ in 0..alts {
            match rng.gen_range(0u8..3) {
                0 => {
                    b.empty_rule(nt);
                }
                1 => {
                    let c = PLAINS[rng.gen_range(0..PLAINS.len())];
                    b.linear_rule(nt, c, nts[rng.gen_range(0..n)]);
                }
                _ => {
                    let pair = rng.gen_range(0..CALLS.len());
                    let inner = nts[rng.gen_range(0..n)];
                    let next = nts[rng.gen_range(0..n)];
                    b.match_rule(nt, CALLS[pair], inner, RETS[pair], next);
                }
            }
        }
    }
    b.build(nts[0]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grammar-preserving mutators are closed under membership: whatever the
    /// mutator does to a sampled derivation of a random VPG, the result
    /// validates against the grammar and its yield is recognized.
    #[test]
    fn mutators_are_closed_under_membership(seed in 0u64..4000, fuzz_seed in 0u64..4000, budget in 2usize..28) {
        let vpg = random_vpg(seed);
        let sampler = GrammarSampler::new(&vpg);
        let parser = VpgParser::new(&vpg);
        let mutator = Mutator::new(&vpg);
        let mut rng = StdRng::seed_from_u64(fuzz_seed);
        for _ in 0..6 {
            let Some(tree) = sampler.sample_tree(&mut rng, budget) else { break };
            let mut current = tree;
            // Chains of mutations stay inside the language, not just one step.
            for _ in 0..3 {
                let Some((kind, mutated)) = mutator.mutate(&current, &mut rng, budget) else { break };
                prop_assert!(mutated.validate(&vpg), "{} broke tree validity (vpg seed {})", kind.label(), seed);
                prop_assert!(
                    parser.recognize(&mutated.yielded()),
                    "{} left the language: {:?} (vpg seed {})",
                    kind.label(), mutated.yielded(), seed
                );
                current = mutated;
            }
        }
    }

    /// Tree minimization preserves an arbitrary divergence-style predicate and
    /// never grows the input. The predicate here mimics a campaign's
    /// classification check: "the learned side accepts and a (synthetic)
    /// oracle rejects" — modelled as membership plus containing a marker
    /// character the oracle chokes on.
    #[test]
    fn tree_minimizer_preserves_classification(seed in 0u64..4000, fuzz_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let sampler = GrammarSampler::new(&vpg);
        let parser = VpgParser::new(&vpg);
        let minimizer = TreeMinimizer::new(&vpg);
        let mut rng = StdRng::seed_from_u64(fuzz_seed);
        let Some(tree) = sampler.sample_tree(&mut rng, 24) else { return Ok(()) };
        let marker = 'x';
        // "False positive"-shaped predicate: a member whose yield contains the
        // marker (i.e. the synthetic oracle rejects it, the grammar accepts).
        let classify = |w: &str| parser.recognize(w) && w.contains(marker);
        if !classify(&tree.yielded()) { return Ok(()) }
        let small = minimizer.minimize_tree(&tree, 2_000, |t| classify(&t.yielded()));
        prop_assert!(small.validate(&vpg), "minimized tree invalid (vpg seed {seed})");
        prop_assert!(
            classify(&small.yielded()),
            "minimizer changed the classification: {:?} (vpg seed {seed})",
            small.yielded()
        );
        prop_assert!(small.len() <= tree.len(), "minimizer grew the input");
    }

    /// String minimization preserves its predicate and never grows the input
    /// (the fallback path used for false negatives, which have no derivation).
    #[test]
    fn string_minimizer_preserves_classification(seed in 0u64..4000, fuzz_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let parser = VpgParser::new(&vpg);
        let sampler = GrammarSampler::new(&vpg);
        let mutator = Mutator::new(&vpg);
        let mut rng = StdRng::seed_from_u64(fuzz_seed);
        let Some(member) = sampler.sample(&mut rng, 20) else { return Ok(()) };
        // Perturb the member out of the language; "false negative"-shaped
        // predicate: the grammar rejects (and the synthetic oracle, here "any
        // string", accepts).
        let pool: Vec<char> = vpg.terminals().into_iter().collect();
        let broken = mutator.perturb_chars(&member, &pool, &mut rng);
        let classify = |w: &str| !parser.recognize(w);
        if !classify(&broken) { return Ok(()) }
        let small = minimize_string(&broken, classify);
        prop_assert!(classify(&small), "string minimizer changed the classification");
        prop_assert!(small.chars().count() <= broken.chars().count());
    }

    /// Coverage footprints of sampled derivations only name rules of the
    /// grammar, and merging them can only grow the covered set.
    #[test]
    fn footprints_are_sound(seed in 0u64..4000, fuzz_seed in 0u64..4000) {
        let vpg = random_vpg(seed);
        let sampler = GrammarSampler::new(&vpg);
        let mut rng = StdRng::seed_from_u64(fuzz_seed);
        let mut cov = RuleCoverage::new(&vpg);
        let mut last = 0usize;
        for _ in 0..5 {
            let Some(tree) = sampler.sample_tree(&mut rng, 16) else { break };
            let fp = cov.footprint(&tree);
            prop_assert!(fp.iter().all(|&id| id < vpg.rule_count()));
            // The fast offset path agrees with the reference Vpg::rule_id on
            // every visited rule (soundness of the precomputed offsets).
            tree.visit_rules(|lhs, rhs| {
                assert_eq!(cov.rule_id(lhs, &rhs), vpg.rule_id(lhs, &rhs));
            });
            cov.merge(&fp);
            prop_assert!(cov.covered() >= last);
            prop_assert!(cov.covered() <= cov.total());
            last = cov.covered();
        }
    }
}
