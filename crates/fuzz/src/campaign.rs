//! The differential fuzzing campaign driver.
//!
//! A campaign turns a learned language into its own adversary: inputs are
//! grown from the learned grammar (sampled derivations, tree-level mutations,
//! deliberate character-level corruption), every input is judged by *both* the
//! learned artifact and the ground-truth black-box oracle, and each case lands
//! in one of four classes — agree-accept, agree-reject, false positive
//! (precision gap of the learned grammar) or false negative (recall gap).
//! Divergences are minimized and reported; a rule-coverage-keyed corpus of
//! derivations feeds the mutation loop, AFL-style.
//!
//! Everything is driven by one seeded RNG, so a campaign is a pure function of
//! `(learned language, oracle, config)` — two runs produce identical reports.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use vstar::refine::Evidence;
use vstar::{LearnedLanguage, TokenDiscovery};
use vstar_eval::DifferentialCounts;
use vstar_oracles::Language;
use vstar_parser::{CompileLearned, CompiledGrammar, ParseTree};

use crate::coverage::RuleCoverage;
use crate::minimize::{minimize_string, TreeMinimizer};
use crate::mutate::{MutationKind, Mutator};

/// The four outcomes of one differential case.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseClass {
    /// Learned artifact and oracle both accept.
    AgreeAccept,
    /// Both reject.
    AgreeReject,
    /// Learned accepts, oracle rejects: the learned grammar over-approximates.
    FalsePositive,
    /// Oracle accepts, learned rejects: the learned grammar under-approximates.
    FalseNegative,
}

impl CaseClass {
    /// Classifies from the two verdicts.
    #[must_use]
    pub fn from_flags(learned_accepts: bool, oracle_accepts: bool) -> Self {
        match (learned_accepts, oracle_accepts) {
            (true, true) => CaseClass::AgreeAccept,
            (false, false) => CaseClass::AgreeReject,
            (true, false) => CaseClass::FalsePositive,
            (false, true) => CaseClass::FalseNegative,
        }
    }

    /// `true` for the two disagreement classes.
    #[must_use]
    pub fn is_divergence(self) -> bool {
        matches!(self, CaseClass::FalsePositive | CaseClass::FalseNegative)
    }

    /// Stable label used in reports and corpus files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CaseClass::AgreeAccept => "agree-accept",
            CaseClass::AgreeReject => "agree-reject",
            CaseClass::FalsePositive => "false-positive",
            CaseClass::FalseNegative => "false-negative",
        }
    }

    /// Telemetry counter name for this class (`fuzz.<class>` with underscores).
    #[must_use]
    pub fn counter(self) -> &'static str {
        match self {
            CaseClass::AgreeAccept => "fuzz.agree_accept",
            CaseClass::AgreeReject => "fuzz.agree_reject",
            CaseClass::FalsePositive => "fuzz.false_positive",
            CaseClass::FalseNegative => "fuzz.false_negative",
        }
    }
}

/// Knobs of a [`FuzzCampaign`]. All percentages are in `0..=100` and drive one
/// shared seeded RNG, so any fixed configuration is fully deterministic.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// RNG seed; the campaign is a pure function of it (and the artifacts).
    pub seed: u64,
    /// Number of fuzzing iterations (the oracle's seed strings are classified
    /// up front and do not count against this budget).
    pub iterations: usize,
    /// Size budget for fresh top-level samples.
    pub sample_budget: usize,
    /// Size budget for regrown/spliced fragments.
    pub mutation_budget: usize,
    /// Percentage of iterations that draw a fresh sample instead of mutating.
    pub fresh_percent: u32,
    /// Percentage of iterations that character-perturb a corpus yield
    /// (stepping outside the grammar) instead of tree-mutating inside it.
    pub perturb_percent: u32,
    /// Cap on *distinct minimized* divergences kept (further divergent cases
    /// are still classified and counted, but not minimized; see
    /// [`CampaignReport::divergences_beyond_cap`]).
    pub max_divergences: usize,
    /// Cap on corpus derivations retained for mutation.
    pub max_corpus_trees: usize,
    /// Cap on `keep`-predicate evaluations per tree minimization.
    pub minimizer_checks: usize,
    /// In token mode, number of draws spent per iteration looking for a
    /// generated derivation worth classifying: one whose raw yield the
    /// compiled artifact re-accepts (the `conv ∘ strip` fixed points and
    /// their servable closure) or the oracle accepts (a false negative).
    /// Draws rejected by both sides are guaranteed agree-rejects — grammar
    /// words that correspond to no servable input — and classifying them
    /// wastes the iteration. `0` disables the filter.
    pub fixed_point_attempts: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iterations: 500,
            sample_budget: 24,
            mutation_budget: 16,
            fresh_percent: 20,
            perturb_percent: 25,
            max_divergences: 32,
            max_corpus_trees: 256,
            minimizer_checks: 400,
            fixed_point_attempts: 8,
        }
    }
}

/// One distinct (post-minimization) divergence found by a campaign.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DivergenceCase {
    /// Divergence class label ([`CaseClass::label`]).
    pub class: String,
    /// Label of the generation step that produced the first witness.
    pub mutation: String,
    /// Iteration of the first witness (`0` and up; seed-phase cases use the
    /// iteration value `0` too and are distinguished by `mutation == "seed"`).
    pub iteration: usize,
    /// The first raw witness input, exactly as handed to the oracle.
    pub raw: String,
    /// The minimized witness (still classifies identically).
    pub minimized: String,
    /// How many evaluated cases minimized to this same witness.
    pub occurrences: usize,
}

impl DivergenceCase {
    /// Exports the minimized witness as refinement evidence
    /// ([`vstar::refine::Evidence`]): the raw string, the direction of the
    /// disagreement, and a `fuzz:<mutation>` provenance tag — ready to replay
    /// into the learner as a counterexample.
    #[must_use]
    pub fn as_evidence(&self) -> Evidence {
        let false_positive = self.class == CaseClass::FalsePositive.label();
        Evidence {
            raw: self.minimized.clone(),
            learned_accepts: false_positive,
            oracle_accepts: !false_positive,
            source: format!("fuzz:{}", self.mutation),
        }
    }
}

/// The machine-readable outcome of one campaign.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CampaignReport {
    /// Oracle language name.
    pub language: String,
    /// RNG seed the campaign ran with.
    pub seed: u64,
    /// Fuzzing iterations executed.
    pub iterations: usize,
    /// Per-class case tallies.
    pub counts: DifferentialCounts,
    /// Empirical precision over the campaign distribution
    /// ([`DifferentialCounts::precision_estimate`]).
    pub precision_estimate: f64,
    /// Empirical recall over the campaign distribution
    /// ([`DifferentialCounts::recall_estimate`]).
    pub recall_estimate: f64,
    /// Grammar rules exercised by at least one corpus derivation.
    pub rules_covered: usize,
    /// Total grammar rules (bitmap width).
    pub rules_total: usize,
    /// Derivations retained in the mutation corpus.
    pub corpus_trees: usize,
    /// Distinct minimized divergences, in discovery order.
    pub divergences: Vec<DivergenceCase>,
    /// Divergent cases evaluated after [`FuzzConfig::max_divergences`] distinct
    /// ones were already collected (counted in `counts`, not minimized).
    pub divergences_beyond_cap: usize,
}

impl CampaignReport {
    /// Number of distinct minimized divergences.
    #[must_use]
    pub fn distinct_divergences(&self) -> usize {
        self.divergences.len()
    }

    /// `true` if any case (minimized or beyond the cap) diverged.
    #[must_use]
    pub fn found_divergence(&self) -> bool {
        self.counts.divergences() > 0
    }

    /// Distinct minimized divergences of one class.
    #[must_use]
    pub fn divergences_of(&self, class: CaseClass) -> usize {
        self.divergences.iter().filter(|d| d.class == class.label()).count()
    }

    /// Exports every distinct minimized divergence as refinement evidence,
    /// in discovery order ([`DivergenceCase::as_evidence`]).
    #[must_use]
    pub fn evidence(&self) -> Vec<Evidence> {
        self.divergences.iter().map(DivergenceCase::as_evidence).collect()
    }
}

/// A grammar-directed differential fuzzing campaign over one learned language
/// and its ground-truth oracle.
pub struct FuzzCampaign<'a> {
    learned: &'a LearnedLanguage,
    oracle: &'a dyn Language,
    config: FuzzConfig,
}

/// Mutable campaign accumulators, bundled so the per-case path is one call.
struct State<'g> {
    coverage: RuleCoverage<'g>,
    corpus: Vec<ParseTree>,
    footprints: BTreeSet<Vec<usize>>,
    counts: DifferentialCounts,
    divergences: Vec<DivergenceCase>,
    beyond_cap: usize,
}

impl<'a> FuzzCampaign<'a> {
    /// Prepares a campaign; nothing runs until [`FuzzCampaign::run`].
    #[must_use]
    pub fn new(learned: &'a LearnedLanguage, oracle: &'a dyn Language, config: FuzzConfig) -> Self {
        FuzzCampaign { learned, oracle, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// Runs the campaign to completion and reports.
    ///
    /// The learned side is served by the compiled artifact
    /// ([`CompiledGrammar`]): membership and parsing of every fuzz case run
    /// oracle-free, exactly as a production serving path would, while the
    /// black-box [`Language`] oracle judges the other side of the diff.
    ///
    /// # Panics
    ///
    /// Panics when the learned grammar exceeds the compilation state budget —
    /// campaigns fuzz grammars the serving path could actually ship.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        let _campaign_span = vstar_telemetry::span("fuzz-campaign");
        let vpg = self.learned.vpg();
        let compiled = self.learned.compile().expect("learned grammar compiles for serving");
        let mutator = Mutator::new(vpg);
        let minimizer = TreeMinimizer::new(vpg);
        let alphabet = self.oracle.alphabet();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut st = State {
            coverage: RuleCoverage::new(vpg),
            corpus: Vec::new(),
            footprints: BTreeSet::new(),
            counts: DifferentialCounts::default(),
            divergences: Vec::new(),
            beyond_cap: 0,
        };

        // Seed phase: the oracle's own seed strings anchor the corpus and give
        // an immediate recall check (a sound learner accepts all of them).
        for seed in self.oracle.seeds() {
            self.process(&mut st, &compiled, &minimizer, "seed", 0, None, seed);
        }

        // In token mode a derivation of the converted grammar corresponds to
        // a real serving-path input only when its *raw* yield is re-accepted
        // by the compiled artifact (the `conv ∘ strip` fixed points, plus
        // the words whose raw form converts to a different but still
        // accepted word — exactly where tokenizer-boundary false positives
        // live). A derivation outside that set is only worth classifying
        // when the *oracle* accepts its raw yield — then it is a false
        // negative, not noise. Draws rejected by both sides are guaranteed
        // agree-rejects and are skipped instead of burning the iteration;
        // the two membership checks are deterministic, so determinism of the
        // campaign is untouched.
        let filter_fixed_points =
            self.learned.mode() == TokenDiscovery::Tokens && self.config.fixed_point_attempts > 0;
        let is_fixed_point = |t: &ParseTree| -> bool {
            let raw = self.learned.strip(&t.yielded());
            compiled.recognize(&raw) || self.oracle.accepts(&raw)
        };

        let mut iterations_run = 0usize;
        for iteration in 0..self.config.iterations {
            // Every iteration consumes budget, classified or skipped — the
            // report's `iterations` must be the denominator a starvation
            // check can trust, so a tail of filtered-out draws still counts.
            iterations_run = iteration + 1;
            let draw = rng.gen_range(0..100u32);
            let fresh = self.config.fresh_percent;
            let perturb = fresh + self.config.perturb_percent;
            let (label, tree, raw) = if st.corpus.is_empty() || draw < fresh {
                let sampled = if filter_fixed_points {
                    mutator.sampler().sample_tree_where(
                        &mut rng,
                        self.config.sample_budget,
                        self.config.fixed_point_attempts,
                        is_fixed_point,
                    )
                } else {
                    mutator.sampler().sample_tree(&mut rng, self.config.sample_budget)
                };
                let Some(t) = sampled else {
                    if !mutator.sampler().is_productive() {
                        break; // unproductive grammar: nothing to generate, ever
                    }
                    vstar_telemetry::counter("fuzz.skipped", 1);
                    continue; // no fixed-point derivation found this round
                };
                let raw = self.learned.strip(&t.yielded());
                (MutationKind::FreshSample.label(), Some(t), raw)
            } else if draw < perturb {
                let t = st.corpus.choose(&mut rng).expect("corpus checked nonempty");
                let member = self.learned.strip(&t.yielded());
                let raw = mutator.perturb_chars(&member, &alphabet, &mut rng);
                (MutationKind::PerturbChars.label(), None, raw)
            } else {
                let t = st.corpus.choose(&mut rng).expect("corpus checked nonempty");
                let attempts =
                    if filter_fixed_points { self.config.fixed_point_attempts } else { 1 };
                let mut found = None;
                for _ in 0..attempts {
                    if let Some((kind, t2)) =
                        mutator.mutate(t, &mut rng, self.config.mutation_budget)
                    {
                        if !filter_fixed_points || is_fixed_point(&t2) {
                            found = Some((kind, t2));
                            break;
                        }
                    }
                }
                let Some((kind, t2)) = found else {
                    vstar_telemetry::counter("fuzz.skipped", 1);
                    continue;
                };
                let raw = self.learned.strip(&t2.yielded());
                (kind.label(), Some(t2), raw)
            };
            self.process(&mut st, &compiled, &minimizer, label, iteration, tree, raw);
        }

        CampaignReport {
            language: self.oracle.name().to_string(),
            seed: self.config.seed,
            iterations: iterations_run,
            precision_estimate: st.counts.precision_estimate(),
            recall_estimate: st.counts.recall_estimate(),
            counts: st.counts,
            rules_covered: st.coverage.covered(),
            rules_total: st.coverage.total(),
            corpus_trees: st.corpus.len(),
            divergences: st.divergences,
            divergences_beyond_cap: st.beyond_cap,
        }
    }

    /// Classifies one raw input, updates coverage/corpus, and minimizes
    /// divergences. `tree` is the derivation that produced the input, when the
    /// generator had one.
    #[allow(clippy::too_many_arguments)]
    fn process(
        &self,
        st: &mut State<'_>,
        compiled: &CompiledGrammar,
        minimizer: &TreeMinimizer<'_>,
        label: &str,
        iteration: usize,
        tree: Option<ParseTree>,
        raw: String,
    ) {
        let learned_ok = compiled.recognize(&raw);
        let oracle_ok = self.oracle.accepts(&raw);
        st.counts.record(learned_ok, oracle_ok);
        let class = CaseClass::from_flags(learned_ok, oracle_ok);
        vstar_telemetry::counter(class.counter(), 1);

        // Coverage feedback: the generating derivation if there was one,
        // otherwise (for accepted perturbations) the parse of the raw input.
        let tree = tree.or_else(|| {
            (class == CaseClass::AgreeAccept).then(|| compiled.parse(&raw).ok()).flatten()
        });
        if let Some(t) = tree {
            let fp = st.coverage.footprint(&t);
            let new_bits = st.coverage.merge(&fp);
            if new_bits > 0 {
                // One journal point per step of the coverage growth curve.
                vstar_telemetry::event(
                    "fuzz.coverage",
                    &[
                        ("iteration", iteration as u64),
                        ("covered", st.coverage.covered() as u64),
                        ("total", st.coverage.total() as u64),
                    ],
                );
            }
            let novel_shape = st.footprints.insert(fp);
            if (new_bits > 0 || novel_shape) && st.corpus.len() < self.config.max_corpus_trees {
                st.corpus.push(t);
            }
        }

        if !class.is_divergence() {
            return;
        }
        // Cheap dedup against known witnesses before paying for minimization.
        if let Some(existing) = st
            .divergences
            .iter_mut()
            .find(|d| d.class == class.label() && (d.minimized == raw || d.raw == raw))
        {
            existing.occurrences += 1;
            return;
        }
        if st.divergences.len() >= self.config.max_divergences {
            st.beyond_cap += 1;
            return;
        }
        let minimized = self.minimize(compiled, minimizer, class, &raw);
        if let Some(existing) =
            st.divergences.iter_mut().find(|d| d.class == class.label() && d.minimized == minimized)
        {
            existing.occurrences += 1;
            return;
        }
        st.divergences.push(DivergenceCase {
            class: class.label().to_string(),
            mutation: label.to_string(),
            iteration,
            raw,
            minimized,
            occurrences: 1,
        });
    }

    /// Minimizes a divergent input, preserving its class: greedy subtree
    /// deletion when the learned side has a derivation (false positives),
    /// then/or greedy string deletion.
    fn minimize(
        &self,
        compiled: &CompiledGrammar,
        minimizer: &TreeMinimizer<'_>,
        class: CaseClass,
        raw: &str,
    ) -> String {
        let keep_str =
            |s: &str| CaseClass::from_flags(compiled.recognize(s), self.oracle.accepts(s)) == class;
        let tree_minimized = if class == CaseClass::FalsePositive {
            compiled.parse(raw).ok().map(|t| {
                let small = minimizer.minimize_tree(&t, self.config.minimizer_checks, |cand| {
                    keep_str(&self.learned.strip(&cand.yielded()))
                });
                self.learned.strip(&small.yielded())
            })
        } else {
            None
        };
        let start = tree_minimized.as_deref().unwrap_or(raw);
        minimize_string(start, keep_str)
    }
}
