//! On-disk corpus management for campaign results.
//!
//! A campaign's divergences are written as a reproducible directory tree, one
//! directory per language:
//!
//! ```text
//! <root>/<language>/
//!   summary.json              — the full CampaignReport (counts, coverage, …)
//!   divergences/
//!     case-0000.txt           — the raw divergent input, byte for byte
//!     case-0000.min.txt       — its minimized form
//!     case-0000.json          — metadata (class, mutation, iteration, counts)
//! ```
//!
//! Cases are numbered in discovery order and the language directory is
//! recreated from scratch on every write, so two identical campaigns produce
//! byte-identical corpora — `diff -r` is the regression test.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Value;
use vstar_eval::DifferentialCounts;

use crate::campaign::{CampaignReport, DivergenceCase};

/// Writes `report` under `root`, replacing any previous corpus for the same
/// language. Returns the language directory.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable root, etc.).
pub fn write_corpus(root: &Path, report: &CampaignReport) -> io::Result<PathBuf> {
    let dir = root.join(&report.language);
    if dir.exists() {
        fs::remove_dir_all(&dir)?;
    }
    let div_dir = dir.join("divergences");
    fs::create_dir_all(&div_dir)?;
    fs::write(
        dir.join("summary.json"),
        serde_json::to_string_pretty(report).expect("report serialises"),
    )?;
    for (i, case) in report.divergences.iter().enumerate() {
        let stem = format!("case-{i:04}");
        fs::write(div_dir.join(format!("{stem}.txt")), &case.raw)?;
        fs::write(div_dir.join(format!("{stem}.min.txt")), &case.minimized)?;
        fs::write(
            div_dir.join(format!("{stem}.json")),
            serde_json::to_string_pretty(case).expect("case serialises"),
        )?;
    }
    Ok(dir)
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> io::Result<&'v Value> {
    v.get(key).ok_or_else(|| bad(format!("missing field {key:?} in {ctx}")))
}

fn usize_field(v: &Value, key: &str, ctx: &str) -> io::Result<usize> {
    let val = field(v, key, ctx)?;
    let n = val.as_u64().ok_or_else(|| bad(format!("field {key:?} in {ctx} is not an integer")))?;
    usize::try_from(n).map_err(|_| bad(format!("field {key:?} in {ctx} overflows usize")))
}

fn str_field(v: &Value, key: &str, ctx: &str) -> io::Result<String> {
    field(v, key, ctx)?
        .as_str()
        .map(ToOwned::to_owned)
        .ok_or_else(|| bad(format!("field {key:?} in {ctx} is not a string")))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> io::Result<f64> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| bad(format!("field {key:?} in {ctx} is not a number")))
}

/// Reads one language's corpus directory (as produced by [`write_corpus`])
/// back into a [`CampaignReport`]: the inverse of the writer on its image,
/// so passive learners and tests can consume fuzz-produced corpora.
///
/// `dir` is the language directory (`<root>/<language>`, the path
/// [`write_corpus`] returns). `summary.json` is authoritative for every
/// field including the divergence witnesses; the per-case `.txt` files exist
/// for humans and external tools.
///
/// # Errors
///
/// Propagates filesystem errors and reports malformed or incomplete
/// summaries as [`io::ErrorKind::InvalidData`].
pub fn read_corpus(dir: &Path) -> io::Result<CampaignReport> {
    let path = dir.join("summary.json");
    let text = fs::read_to_string(&path)?;
    let value = serde_json::from_str(&text)
        .map_err(|e| bad(format!("{}: not valid JSON: {e:?}", path.display())))?;
    let ctx = "summary";
    let counts_value = field(&value, "counts", ctx)?;
    let counts = DifferentialCounts {
        agree_accept: usize_field(counts_value, "agree_accept", "counts")?,
        agree_reject: usize_field(counts_value, "agree_reject", "counts")?,
        false_positive: usize_field(counts_value, "false_positive", "counts")?,
        false_negative: usize_field(counts_value, "false_negative", "counts")?,
    };
    let divergences_value = field(&value, "divergences", ctx)?
        .as_array()
        .ok_or_else(|| bad("field \"divergences\" in summary is not an array".into()))?;
    let mut divergences = Vec::with_capacity(divergences_value.len());
    for (i, case) in divergences_value.iter().enumerate() {
        let case_ctx = format!("divergences[{i}]");
        divergences.push(DivergenceCase {
            class: str_field(case, "class", &case_ctx)?,
            mutation: str_field(case, "mutation", &case_ctx)?,
            iteration: usize_field(case, "iteration", &case_ctx)?,
            raw: str_field(case, "raw", &case_ctx)?,
            minimized: str_field(case, "minimized", &case_ctx)?,
            occurrences: usize_field(case, "occurrences", &case_ctx)?,
        });
    }
    Ok(CampaignReport {
        language: str_field(&value, "language", ctx)?,
        seed: field(&value, "seed", ctx)?
            .as_u64()
            .ok_or_else(|| bad("field \"seed\" in summary is not an integer".into()))?,
        iterations: usize_field(&value, "iterations", ctx)?,
        counts,
        precision_estimate: f64_field(&value, "precision_estimate", ctx)?,
        recall_estimate: f64_field(&value, "recall_estimate", ctx)?,
        rules_covered: usize_field(&value, "rules_covered", ctx)?,
        rules_total: usize_field(&value, "rules_total", ctx)?,
        corpus_trees: usize_field(&value, "corpus_trees", ctx)?,
        divergences,
        divergences_beyond_cap: usize_field(&value, "divergences_beyond_cap", ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_one_case() -> CampaignReport {
        CampaignReport {
            language: "testlang".into(),
            seed: 7,
            iterations: 10,
            counts: DifferentialCounts {
                agree_accept: 8,
                agree_reject: 1,
                false_positive: 1,
                false_negative: 0,
            },
            precision_estimate: 8.0 / 9.0,
            recall_estimate: 1.0,
            rules_covered: 3,
            rules_total: 6,
            corpus_trees: 4,
            divergences: vec![DivergenceCase {
                class: "false-positive".into(),
                mutation: "regrow-nest".into(),
                iteration: 3,
                raw: "dd".into(),
                minimized: "d".into(),
                occurrences: 1,
            }],
            divergences_beyond_cap: 0,
        }
    }

    #[test]
    fn corpus_layout_round_trips_and_is_reproducible() {
        let root = std::env::temp_dir().join(format!("vstar-fuzz-corpus-{}", std::process::id()));
        let report = report_with_one_case();
        let dir = write_corpus(&root, &report).unwrap();
        assert_eq!(dir, root.join("testlang"));
        let summary = fs::read_to_string(dir.join("summary.json")).unwrap();
        assert!(summary.contains("\"false_positive\": 1"));
        assert_eq!(fs::read_to_string(dir.join("divergences/case-0000.txt")).unwrap(), "dd");
        assert_eq!(fs::read_to_string(dir.join("divergences/case-0000.min.txt")).unwrap(), "d");
        let meta = fs::read_to_string(dir.join("divergences/case-0000.json")).unwrap();
        assert!(meta.contains("\"class\": \"false-positive\""));

        // Rewriting replaces the directory wholesale: stale cases disappear.
        let mut smaller = report.clone();
        smaller.divergences.clear();
        write_corpus(&root, &smaller).unwrap();
        assert!(!dir.join("divergences/case-0000.txt").exists());

        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn read_corpus_inverts_write_corpus() {
        let root =
            std::env::temp_dir().join(format!("vstar-fuzz-read-corpus-{}", std::process::id()));
        let mut report = report_with_one_case();
        // Exercise the full field surface, including non-ASCII witnesses and
        // a second case.
        report.divergences.push(DivergenceCase {
            class: "false-negative".into(),
            mutation: "perturb-chars".into(),
            iteration: 7,
            raw: "{\"k\":\"⊳ü\\n\"}".into(),
            minimized: "{\"k\":\"⊳\"}".into(),
            occurrences: 3,
        });
        let dir = write_corpus(&root, &report).unwrap();
        let read = read_corpus(&dir).unwrap();
        assert_eq!(read, report, "read ∘ write must be the identity");

        // The reader rejects a malformed summary instead of guessing.
        fs::write(dir.join("summary.json"), "{\"language\": \"testlang\"}").unwrap();
        let err = read_corpus(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        fs::remove_dir_all(&root).unwrap();
    }
}
