//! On-disk corpus management for campaign results.
//!
//! A campaign's divergences are written as a reproducible directory tree, one
//! directory per language:
//!
//! ```text
//! <root>/<language>/
//!   summary.json              — the full CampaignReport (counts, coverage, …)
//!   divergences/
//!     case-0000.txt           — the raw divergent input, byte for byte
//!     case-0000.min.txt       — its minimized form
//!     case-0000.json          — metadata (class, mutation, iteration, counts)
//! ```
//!
//! Cases are numbered in discovery order and the language directory is
//! recreated from scratch on every write, so two identical campaigns produce
//! byte-identical corpora — `diff -r` is the regression test.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::campaign::CampaignReport;

/// Writes `report` under `root`, replacing any previous corpus for the same
/// language. Returns the language directory.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable root, etc.).
pub fn write_corpus(root: &Path, report: &CampaignReport) -> io::Result<PathBuf> {
    let dir = root.join(&report.language);
    if dir.exists() {
        fs::remove_dir_all(&dir)?;
    }
    let div_dir = dir.join("divergences");
    fs::create_dir_all(&div_dir)?;
    fs::write(
        dir.join("summary.json"),
        serde_json::to_string_pretty(report).expect("report serialises"),
    )?;
    for (i, case) in report.divergences.iter().enumerate() {
        let stem = format!("case-{i:04}");
        fs::write(div_dir.join(format!("{stem}.txt")), &case.raw)?;
        fs::write(div_dir.join(format!("{stem}.min.txt")), &case.minimized)?;
        fs::write(
            div_dir.join(format!("{stem}.json")),
            serde_json::to_string_pretty(case).expect("case serialises"),
        )?;
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::DivergenceCase;
    use vstar_eval::DifferentialCounts;

    fn report_with_one_case() -> CampaignReport {
        CampaignReport {
            language: "testlang".into(),
            seed: 7,
            iterations: 10,
            counts: DifferentialCounts {
                agree_accept: 8,
                agree_reject: 1,
                false_positive: 1,
                false_negative: 0,
            },
            precision_estimate: 8.0 / 9.0,
            recall_estimate: 1.0,
            rules_covered: 3,
            rules_total: 6,
            corpus_trees: 4,
            divergences: vec![DivergenceCase {
                class: "false-positive".into(),
                mutation: "regrow-nest".into(),
                iteration: 3,
                raw: "dd".into(),
                minimized: "d".into(),
                occurrences: 1,
            }],
            divergences_beyond_cap: 0,
        }
    }

    #[test]
    fn corpus_layout_round_trips_and_is_reproducible() {
        let root = std::env::temp_dir().join(format!("vstar-fuzz-corpus-{}", std::process::id()));
        let report = report_with_one_case();
        let dir = write_corpus(&root, &report).unwrap();
        assert_eq!(dir, root.join("testlang"));
        let summary = fs::read_to_string(dir.join("summary.json")).unwrap();
        assert!(summary.contains("\"false_positive\": 1"));
        assert_eq!(fs::read_to_string(dir.join("divergences/case-0000.txt")).unwrap(), "dd");
        assert_eq!(fs::read_to_string(dir.join("divergences/case-0000.min.txt")).unwrap(), "d");
        let meta = fs::read_to_string(dir.join("divergences/case-0000.json")).unwrap();
        assert!(meta.contains("\"class\": \"false-positive\""));

        // Rewriting replaces the directory wholesale: stale cases disappear.
        let mut smaller = report.clone();
        smaller.divergences.clear();
        write_corpus(&root, &smaller).unwrap();
        assert!(!dir.join("divergences/case-0000.txt").exists());

        fs::remove_dir_all(&root).unwrap();
    }
}
