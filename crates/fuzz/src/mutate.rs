//! Tree- and character-level mutations over learned-grammar derivations.
//!
//! The grammar-preserving mutators ([`Mutator::swap_subtrees`],
//! [`Mutator::regrow_nest`], [`Mutator::splice_fragment`]) rewrite a
//! [`ParseTree`] into another derivation of the *same* grammar — their output
//! is a member of the learned language by construction, so any oracle
//! rejection of it is a precision bug of the learned grammar. The
//! character-level perturbation ([`Mutator::perturb_chars`]) deliberately
//! steps *outside* the grammar to probe the opposite direction: strings the
//! learned grammar rejects but the oracle might accept.

use rand::seq::SliceRandom;
use rand::Rng;

use vstar_parser::{GrammarSampler, NestPath, ParseStep, ParseTree};
use vstar_vpl::Vpg;

/// The mutation strategies of a campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Swap the bodies of two nests deriving from the same nonterminal.
    SwapSubtrees,
    /// Regrow one nest body from its nonterminal with the sampler.
    RegrowNest,
    /// Resample the tail of one nesting level from its cut-point nonterminal.
    SpliceFragment,
    /// Character-level edits that step outside the grammar.
    PerturbChars,
    /// A fresh top-level sample (no mutation applied).
    FreshSample,
}

impl MutationKind {
    /// Stable label used in reports and corpus metadata.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::SwapSubtrees => "swap-subtrees",
            MutationKind::RegrowNest => "regrow-nest",
            MutationKind::SpliceFragment => "splice-fragment",
            MutationKind::PerturbChars => "perturb-chars",
            MutationKind::FreshSample => "fresh-sample",
        }
    }
}

/// Seeded mutation engine over one grammar.
#[derive(Clone, Debug)]
pub struct Mutator<'g> {
    sampler: GrammarSampler<'g>,
}

fn step_lhs(step: &ParseStep) -> vstar_vpl::NonterminalId {
    match step {
        ParseStep::Plain { lhs, .. } | ParseStep::Nest { lhs, .. } => *lhs,
    }
}

fn is_prefix(a: &[usize], b: &[usize]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

impl<'g> Mutator<'g> {
    /// Builds a mutator (and its internal sampler) over `vpg`.
    #[must_use]
    pub fn new(vpg: &'g Vpg) -> Self {
        Mutator { sampler: GrammarSampler::new(vpg) }
    }

    /// The grammar mutations stay inside.
    #[must_use]
    pub fn vpg(&self) -> &'g Vpg {
        self.sampler.vpg()
    }

    /// The sampler used to grow replacement fragments.
    #[must_use]
    pub fn sampler(&self) -> &GrammarSampler<'g> {
        &self.sampler
    }

    /// Swaps the bodies of two nests that derive from the same nonterminal
    /// (and are not nested in one another), exercising the "contents of one
    /// occurrence are valid at every compatible occurrence" property of a
    /// context-free derivation. Returns `None` when the tree has no compatible
    /// pair.
    pub fn swap_subtrees<R: Rng + ?Sized>(
        &self,
        tree: &ParseTree,
        rng: &mut R,
    ) -> Option<ParseTree> {
        let sums = tree.nest_summaries();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..sums.len() {
            for j in i + 1..sums.len() {
                if sums[i].inner_root == sums[j].inner_root
                    && !is_prefix(&sums[i].path, &sums[j].path)
                    && !is_prefix(&sums[j].path, &sums[i].path)
                {
                    pairs.push((i, j));
                }
            }
        }
        let &(i, j) = pairs.choose(rng)?;
        let a = tree.level_at(&sums[i].path)?.clone();
        let b = tree.level_at(&sums[j].path)?.clone();
        let mut out = tree.clone();
        out.replace_level(&sums[i].path, b).ok()?;
        out.replace_level(&sums[j].path, a).ok()?;
        Some(out)
    }

    /// Replaces one nest body with a freshly sampled derivation of the same
    /// nonterminal. Returns `None` when the tree has no nests.
    pub fn regrow_nest<R: Rng + ?Sized>(
        &self,
        tree: &ParseTree,
        rng: &mut R,
        budget: usize,
    ) -> Option<ParseTree> {
        let sums = tree.nest_summaries();
        let s = sums.choose(rng)?;
        let fresh = self.sampler.sample_tree_from(s.inner_root, rng, budget)?;
        let mut out = tree.clone();
        out.replace_level(&s.path, fresh).ok()?;
        Some(out)
    }

    /// Cuts one nesting level (the top level included) at a random step and
    /// resamples everything after the cut from the nonterminal required there —
    /// splicing a sampled fragment onto a kept prefix. Cutting at the very end
    /// extends the level from its closing nonterminal.
    pub fn splice_fragment<R: Rng + ?Sized>(
        &self,
        tree: &ParseTree,
        rng: &mut R,
        budget: usize,
    ) -> Option<ParseTree> {
        let mut paths: Vec<NestPath> = vec![Vec::new()];
        paths.extend(tree.nest_summaries().into_iter().map(|s| s.path));
        let path = paths.choose(rng)?;
        let level = tree.level_at(path)?;
        let k = rng.gen_range(0..=level.steps().len());
        let from = level.steps().get(k).map_or_else(|| level.closer(), step_lhs);
        let tail = self.sampler.sample_tree_from(from, rng, budget)?;
        let mut steps: Vec<ParseStep> = level.steps()[..k].to_vec();
        steps.extend(tail.steps().iter().cloned());
        let new_level = ParseTree::new(level.root(), steps, tail.closer());
        let mut out = tree.clone();
        out.replace_level(path, new_level).ok()?;
        Some(out)
    }

    /// Applies 1–3 character-level edits (delete / replace / transpose /
    /// insert, insertions drawn from `pool`) — the precision probe that leaves
    /// the grammar on purpose. Returns the input unchanged when no edit is
    /// possible (empty string and empty pool).
    pub fn perturb_chars<R: Rng + ?Sized>(&self, s: &str, pool: &[char], rng: &mut R) -> String {
        let mut chars: Vec<char> = s.chars().collect();
        let edits = 1 + rng.gen_range(0..3usize);
        for _ in 0..edits {
            match rng.gen_range(0..4u8) {
                0 if !chars.is_empty() => {
                    let i = rng.gen_range(0..chars.len());
                    chars.remove(i);
                }
                1 if !chars.is_empty() && !pool.is_empty() => {
                    let i = rng.gen_range(0..chars.len());
                    chars[i] = *pool.choose(rng).expect("pool checked nonempty");
                }
                2 if chars.len() >= 2 => {
                    let i = rng.gen_range(0..chars.len() - 1);
                    chars.swap(i, i + 1);
                }
                _ => {
                    if let Some(&c) = pool.choose(rng) {
                        let i = rng.gen_range(0..=chars.len());
                        chars.insert(i, c);
                    }
                }
            }
        }
        chars.into_iter().collect()
    }

    /// Draws one grammar-preserving mutation, trying the three tree-level
    /// strategies in a random order and returning the first that applies
    /// (splice applies to every tree of a productive grammar, so this only
    /// returns `None` on pathological grammars).
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        tree: &ParseTree,
        rng: &mut R,
        budget: usize,
    ) -> Option<(MutationKind, ParseTree)> {
        let mut kinds =
            [MutationKind::SwapSubtrees, MutationKind::RegrowNest, MutationKind::SpliceFragment];
        kinds.shuffle(rng);
        for kind in kinds {
            let mutated = match kind {
                MutationKind::SwapSubtrees => self.swap_subtrees(tree, rng),
                MutationKind::RegrowNest => self.regrow_nest(tree, rng, budget),
                _ => self.splice_fragment(tree, rng, budget),
            };
            if let Some(t) = mutated {
                return Some((kind, t));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vstar_parser::VpgParser;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn tree_mutations_stay_inside_the_grammar() {
        let g = figure1_grammar();
        let mutator = Mutator::new(&g);
        let parser = VpgParser::new(&g);
        let mut rng = StdRng::seed_from_u64(42);
        let mut mutated_count = 0;
        for _ in 0..200 {
            let tree = mutator.sampler().sample_tree(&mut rng, 24).unwrap();
            if let Some((kind, t)) = mutator.mutate(&tree, &mut rng, 16) {
                mutated_count += 1;
                assert!(t.validate(&g), "{} broke validity", kind.label());
                assert!(parser.recognize(&t.yielded()), "{} left the language", kind.label());
            }
        }
        assert!(mutated_count > 150, "mutator applied only {mutated_count}/200 times");
    }

    #[test]
    fn swap_needs_a_compatible_pair() {
        let g = figure1_grammar();
        let mutator = Mutator::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        // "cd" has no nests at all: no swap, no regrow, but splice applies.
        let parser = VpgParser::new(&g);
        let flat = parser.parse("cd").unwrap();
        assert!(mutator.swap_subtrees(&flat, &mut rng).is_none());
        assert!(mutator.regrow_nest(&flat, &mut rng, 8).is_none());
        let spliced = mutator.splice_fragment(&flat, &mut rng, 8).unwrap();
        assert!(spliced.validate(&g));
    }

    #[test]
    fn perturbation_edits_the_string() {
        let g = figure1_grammar();
        let mutator = Mutator::new(&g);
        let pool: Vec<char> = g.terminals().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut changed = 0;
        for _ in 0..50 {
            let s = mutator.perturb_chars("agcdcdhbcd", &pool, &mut rng);
            if s != "agcdcdhbcd" {
                changed += 1;
            }
        }
        assert!(changed > 40, "perturbation was a no-op {}/50 times", 50 - changed);
        // No pool and no content: nothing to do, but no panic either.
        assert_eq!(mutator.perturb_chars("", &[], &mut rng), "");
    }
}
