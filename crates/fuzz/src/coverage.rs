//! Rule-coverage bitmaps over a [`Vpg`].
//!
//! A fuzzing campaign wants feedback: which parts of the grammar have the
//! generated inputs actually exercised? For a VPG the natural coverage domain
//! is its *rules* — every derivation is a multiset of rule applications, so a
//! parse tree induces a footprint of rule ids and a corpus can be keyed by the
//! bitmaps those footprints produce, AFL-style.
//!
//! Rule ids follow [`Vpg::rule_id`]; the bitmap precomputes the
//! per-nonterminal offsets once, so extracting a footprint is linear in the
//! tree (not in the grammar — the learned `while` grammar has 37k rules).

use vstar_parser::ParseTree;
use vstar_vpl::{NonterminalId, RuleRhs, Vpg};

/// A bitmap over the rules of one grammar.
#[derive(Clone, Debug)]
pub struct RuleCoverage<'g> {
    vpg: &'g Vpg,
    /// `offsets[nt]` = id of nonterminal `nt`'s first alternative.
    offsets: Vec<usize>,
    bits: Vec<u64>,
    total: usize,
    covered: usize,
}

impl<'g> RuleCoverage<'g> {
    /// An empty bitmap sized for `vpg`.
    #[must_use]
    pub fn new(vpg: &'g Vpg) -> Self {
        let mut offsets = Vec::with_capacity(vpg.nonterminal_count());
        let mut total = 0usize;
        for i in 0..vpg.nonterminal_count() {
            offsets.push(total);
            total += vpg.alternatives(NonterminalId(i)).len();
        }
        RuleCoverage { vpg, offsets, bits: vec![0; total.div_ceil(64)], total, covered: 0 }
    }

    /// Number of rules in the grammar (bitmap width).
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of rules covered so far.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Covered fraction in `[0, 1]` (`1.0` for the empty grammar).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Returns `true` if the rule id is covered.
    #[must_use]
    pub fn contains(&self, rule_id: usize) -> bool {
        rule_id < self.total && self.bits[rule_id / 64] & (1u64 << (rule_id % 64)) != 0
    }

    /// The id of `lhs → rhs` via the precomputed offsets; agrees with
    /// [`Vpg::rule_id`]. `None` for rules outside the grammar.
    #[must_use]
    pub fn rule_id(&self, lhs: NonterminalId, rhs: &RuleRhs) -> Option<usize> {
        let offset = *self.offsets.get(lhs.0)?;
        let pos = self.vpg.alternatives(lhs).iter().position(|r| r == rhs)?;
        Some(offset + pos)
    }

    /// The sorted, deduplicated rule ids a tree's derivation applies — its
    /// coverage footprint. Rules outside the grammar (a foreign tree) are
    /// skipped.
    #[must_use]
    pub fn footprint(&self, tree: &ParseTree) -> Vec<usize> {
        let mut ids = Vec::new();
        tree.visit_rules(|lhs, rhs| {
            if let Some(id) = self.rule_id(lhs, &rhs) {
                ids.push(id);
            }
        });
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Merges a footprint into the bitmap, returning how many of its rules
    /// were new. Out-of-range ids are ignored.
    pub fn merge(&mut self, footprint: &[usize]) -> usize {
        let mut new = 0;
        for &id in footprint {
            if id < self.total && !self.contains(id) {
                self.bits[id / 64] |= 1u64 << (id % 64);
                new += 1;
            }
        }
        self.covered += new;
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_parser::VpgParser;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn footprints_accumulate_into_full_coverage() {
        let g = figure1_grammar();
        let parser = VpgParser::new(&g);
        let mut cov = RuleCoverage::new(&g);
        assert_eq!(cov.total(), g.rule_count());
        assert_eq!(cov.covered(), 0);

        // "" exercises only L → ε.
        let t = parser.parse("").unwrap();
        let fp = cov.footprint(&t);
        assert_eq!(fp.len(), 1);
        assert_eq!(cov.merge(&fp), 1);
        assert_eq!(cov.merge(&fp), 0, "re-merging adds nothing");

        // The paper's seed string exercises every rule of figure 1.
        let t = parser.parse("agcdcdhbcd").unwrap();
        let fp = cov.footprint(&t);
        cov.merge(&fp);
        assert_eq!(cov.covered(), g.rule_count());
        assert!((cov.fraction() - 1.0).abs() < 1e-12);
        for id in 0..g.rule_count() {
            assert!(cov.contains(id));
        }
        assert!(!cov.contains(g.rule_count()));
    }

    #[test]
    fn precomputed_rule_ids_agree_with_vpg_rule_id() {
        let g = figure1_grammar();
        let cov = RuleCoverage::new(&g);
        for (lhs, rhs) in g.rules() {
            assert_eq!(cov.rule_id(lhs, &rhs), g.rule_id(lhs, &rhs));
        }
        assert_eq!(cov.rule_id(NonterminalId(1), &RuleRhs::Empty), None);
        assert_eq!(cov.rule_id(NonterminalId(99), &RuleRhs::Empty), None);
    }
}
