//! Grammar surgery: controlled weakening of a [`Vpg`].
//!
//! A differential fuzzer needs a way to prove it *would* catch a bad grammar —
//! otherwise "zero divergences" is indistinguishable from "looked at nothing".
//! These helpers rebuild a grammar with one rule added (over-generalization:
//! the fuzzer should find false positives) or removed (under-generalization:
//! false negatives), which is exactly the fault-injection knob the campaign
//! regression tests and the `fuzz` benchmark's self-check use, paired with
//! [`vstar::LearnedLanguage::with_vpg`].

use vstar_vpl::{RuleRhs, Vpg, VpgBuilder, VplError};

/// Rebuilds `vpg` with `lhs → rhs` added as a last alternative.
///
/// The resulting language is a superset of the original; whether it is a
/// *strict* superset depends on the rule (the caller picks one that generates
/// new strings, e.g. a plain terminal in a position the language forbids).
///
/// # Errors
///
/// Propagates [`VplError`] when the rule is ill-kinded under the grammar's
/// tagging or refers to unknown nonterminals.
pub fn with_extra_rule(
    vpg: &Vpg,
    lhs: vstar_vpl::NonterminalId,
    rhs: RuleRhs,
) -> Result<Vpg, VplError> {
    rebuild(vpg, |b| {
        push_rule(b, lhs, rhs);
    })
}

/// Rebuilds `vpg` without the rule `lhs → rhs` (a no-op if the rule does not
/// exist). The resulting language is a subset of the original.
///
/// # Errors
///
/// Propagates [`VplError`] from revalidation (cannot normally occur, since
/// every remaining rule was already valid).
pub fn without_rule(
    vpg: &Vpg,
    lhs: vstar_vpl::NonterminalId,
    rhs: &RuleRhs,
) -> Result<Vpg, VplError> {
    let n = vpg.nonterminal_count();
    let mut b = VpgBuilder::new(vpg.tagging().clone());
    for i in 0..n {
        b.nonterminal(vpg.name(vstar_vpl::NonterminalId(i)));
    }
    for (l, r) in vpg.rules() {
        if l == lhs && r == *rhs {
            continue;
        }
        push_rule(&mut b, l, r);
    }
    b.build(vpg.start())
}

/// Rebuilds `vpg` with the first matching rule's return symbol swapped for a
/// return of a *different* tagging pair — the cross-pair discipline fault the
/// static analyzer's `VPG003` lint exists for (the grammar-side shape of the
/// learner bug counterexample-guided refinement fixes).
///
/// Returns `None` when the grammar has no matching rule or its tagging has
/// fewer than two pairs (no foreign return to cross with).
#[must_use]
pub fn with_crossed_returns(vpg: &Vpg) -> Option<Vpg> {
    let tagging = vpg.tagging();
    let target = vpg.rules().find_map(|(lhs, rhs)| match rhs {
        RuleRhs::Match { call, inner, ret, next } => {
            let foreign = tagging.pairs().iter().map(|&(_, r)| r).find(|&r| r != ret)?;
            Some((lhs, RuleRhs::Match { call, inner, ret, next }, foreign))
        }
        _ => None,
    })?;
    let (lhs, original, foreign) = target;
    let crossed = match original {
        RuleRhs::Match { call, inner, next, .. } => {
            RuleRhs::Match { call, inner, ret: foreign, next }
        }
        _ => unreachable!("target is a match rule"),
    };
    let swapped = rebuild(vpg, |b| {
        push_rule(b, lhs, crossed);
    })
    .expect("a foreign return symbol is still return-kinded");
    // Replace rather than add: drop the original rule so the crossed variant
    // is the only way to derive that nesting.
    without_rule(&swapped, lhs, &original).ok()
}

fn rebuild(vpg: &Vpg, extra: impl FnOnce(&mut VpgBuilder)) -> Result<Vpg, VplError> {
    let n = vpg.nonterminal_count();
    let mut b = VpgBuilder::new(vpg.tagging().clone());
    for i in 0..n {
        b.nonterminal(vpg.name(vstar_vpl::NonterminalId(i)));
    }
    for (l, r) in vpg.rules() {
        push_rule(&mut b, l, r);
    }
    extra(&mut b);
    b.build(vpg.start())
}

fn push_rule(b: &mut VpgBuilder, lhs: vstar_vpl::NonterminalId, rhs: RuleRhs) {
    match rhs {
        RuleRhs::Empty => {
            b.empty_rule(lhs);
        }
        RuleRhs::Linear { plain, next } => {
            b.linear_rule(lhs, plain, next);
        }
        RuleRhs::Match { call, inner, ret, next } => {
            b.match_rule(lhs, call, inner, ret, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::NonterminalId;

    #[test]
    fn extra_rule_overgeneralizes() {
        let g = figure1_grammar();
        let l = NonterminalId(0);
        let weak = with_extra_rule(&g, l, RuleRhs::Linear { plain: 'd', next: l }).unwrap();
        assert_eq!(weak.rule_count(), g.rule_count() + 1);
        // "d" is new; everything old is still derivable.
        assert!(!g.accepts("d"));
        assert!(weak.accepts("d"));
        assert!(weak.accepts("agcdcdhbcd"));
        // Ill-kinded rules are rejected (`a` is a call symbol).
        assert!(with_extra_rule(&g, l, RuleRhs::Linear { plain: 'a', next: l }).is_err());
    }

    #[test]
    fn crossed_returns_break_the_pair_discipline() {
        let g = figure1_grammar(); // pairs (a,b) and (g,h)
        let crossed = with_crossed_returns(&g).expect("two pairs available");
        assert_eq!(crossed.rule_count(), g.rule_count());
        // Some match rule now pairs a call with the other pair's return.
        let has_cross = crossed.rules().any(|(_, rhs)| match rhs {
            RuleRhs::Match { call, ret, .. } => {
                crossed.tagging().matching_return(call) != Some(ret)
            }
            _ => false,
        });
        assert!(has_cross, "surgery must produce a cross-pair match rule");
        // A single-pair grammar offers nothing to cross with.
        let tagging = vstar_vpl::Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.empty_rule(s);
        b.match_rule(s, '(', s, ')', s);
        assert!(with_crossed_returns(&b.build(s).unwrap()).is_none());
    }

    #[test]
    fn removed_rule_undergeneralizes() {
        let g = figure1_grammar();
        let (l, b) = (NonterminalId(0), NonterminalId(2));
        let strict = without_rule(&g, l, &RuleRhs::Linear { plain: 'c', next: b }).unwrap();
        assert_eq!(strict.rule_count(), g.rule_count() - 1);
        assert!(g.accepts("cd"));
        assert!(!strict.accepts("cd"));
        assert!(strict.accepts("aghb"));
        // Removing a nonexistent rule is a no-op.
        let same = without_rule(&g, l, &RuleRhs::Linear { plain: 'd', next: l }).unwrap();
        assert_eq!(same.rule_count(), g.rule_count());
    }
}
