//! Grammar-directed differential fuzzing over learned visibly pushdown
//! grammars.
//!
//! V-Star's claim is that the learned VPG *describes the program's input
//! language*; the strongest stress test of that claim is to weaponize the
//! grammar as a fuzzer and hunt for disagreements with the ground-truth
//! oracle, the way Mimid and Arvada validate inferred grammars by generation.
//! This crate turns the `vstar_parser` artifacts into that instrument:
//!
//! * [`Mutator`] — tree-level mutations over [`vstar_parser::ParseTree`]
//!   (subtree swap between compatible nonterminals, nest regrowth, fragment
//!   splicing) that stay inside the grammar by construction, plus
//!   character-level perturbation that deliberately steps outside it;
//! * [`RuleCoverage`] — rule-coverage bitmaps ([`vstar_vpl::Vpg::rule_id`])
//!   extracted from derivations, the feedback signal that keys the corpus;
//! * [`FuzzCampaign`] — the seeded, deterministic differential driver: every
//!   input is judged by both the learned artifact
//!   ([`vstar_parser::LearnedParser`]) and the black-box
//!   [`vstar_oracles::Language`] oracle and classified as agree-accept,
//!   agree-reject, false positive or false negative;
//! * [`TreeMinimizer`] / [`minimize_string`] — greedy subtree/string deletion
//!   that shrinks divergent cases while preserving their classification;
//! * [`corpus::write_corpus`] — a reproducible on-disk corpus per language;
//! * [`surgery`] — fault injection (add/remove one grammar rule) so the
//!   campaign can prove it detects a deliberately weakened grammar;
//! * [`CampaignEvidence`] — the campaign packaged as a
//!   `vstar::refine::EvidenceSource`, so `VStar::learn_refined` can replay
//!   minimized divergences into the learner until the campaigns run dry
//!   (the counterexample-guided refinement loop that *closes* the gaps this
//!   crate finds).
//!
//! # Example
//!
//! ```
//! use vstar::{LearnedLanguage, TokenDiscovery};
//! use vstar::tokenizer::PartialTokenizer;
//! use vstar_fuzz::{FuzzCampaign, FuzzConfig};
//! use vstar_oracles::Fig1;
//! use vstar_vpl::grammar::figure1_grammar;
//! use vstar_vpl::VpaBuilder;
//!
//! // A faithful "learned" artifact for the Figure-1 language (character mode).
//! let vpg = figure1_grammar();
//! let tagging = vpg.tagging().clone();
//! let mut b = VpaBuilder::new(tagging.clone());
//! let q0 = b.add_state();
//! b.set_initial(q0);
//! let learned = LearnedLanguage::new(
//!     b.build().unwrap(),
//!     vpg,
//!     PartialTokenizer::from_tagging(&tagging),
//!     TokenDiscovery::Characters,
//! );
//!
//! let oracle = Fig1::new();
//! let config = FuzzConfig { iterations: 60, ..FuzzConfig::default() };
//! let report = FuzzCampaign::new(&learned, &oracle, config).run();
//! assert!(!report.found_divergence(), "faithful grammar must not diverge");
//! assert!(report.rules_covered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod minimize;
pub mod mutate;
pub mod refine;
pub mod surgery;

pub use campaign::{CampaignReport, CaseClass, DivergenceCase, FuzzCampaign, FuzzConfig};
pub use coverage::RuleCoverage;
pub use minimize::{minimize_string, TreeMinimizer};
pub use mutate::{MutationKind, Mutator};
pub use refine::CampaignEvidence;
