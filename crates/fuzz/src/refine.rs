//! The fuzz campaign as a refinement evidence source.
//!
//! [`CampaignEvidence`] plugs a differential [`FuzzCampaign`] into the
//! counterexample-guided refinement loop of `vstar::refine`: each evidence
//! round compiles the current hypothesis into the serving artifact, fuzzes it
//! against the black-box oracle, and hands the minimized divergences back to
//! the learner as counterexamples. Iterated by
//! [`vstar::VStar::learn_refined`], this is the learn → fuzz → refine loop
//! that turns "the fuzzer found precision gaps" into "the gaps are closed".
//!
//! Determinism: the campaign seed cycles through a window of
//! `clean_passes`-many seeds (`base`, `base + 1`, …), so the consecutive
//! clean rounds that declare a fixed point are genuinely *different*
//! campaigns against the *same* final hypothesis. In particular, with the
//! default window the fixed point certifies that the full campaign at the
//! base seed itself runs divergence-free against the final grammar — which is
//! exactly what the `fuzz --check` CI gate replays.

use vstar::refine::{Evidence, EvidenceSource};
use vstar::{LearnedLanguage, Mat};
use vstar_oracles::Language;

use crate::campaign::{FuzzCampaign, FuzzConfig};

/// An [`EvidenceSource`] that interrogates each hypothesis with a seeded
/// differential fuzz campaign.
pub struct CampaignEvidence<'a> {
    oracle: &'a dyn Language,
    config: FuzzConfig,
    seed_window: u64,
}

impl<'a> CampaignEvidence<'a> {
    /// Wraps `oracle` with a campaign template; `config.seed` is the base of
    /// the per-round seed window.
    ///
    /// The default seed window tracks
    /// `vstar::refine::RefineConfig::default().clean_passes` — callers that
    /// run the loop with a different `clean_passes` should set the window
    /// with [`CampaignEvidence::with_seed_window`] so every consecutive
    /// clean pass probes with a distinct seed.
    #[must_use]
    pub fn new(oracle: &'a dyn Language, config: FuzzConfig) -> Self {
        let window = vstar::refine::RefineConfig::default().clean_passes as u64;
        CampaignEvidence { oracle, config, seed_window: window.max(1) }
    }

    /// Sets the number of distinct per-round campaign seeds (`base` …
    /// `base + window - 1`); rounds cycle through them.
    #[must_use]
    pub fn with_seed_window(mut self, window: u64) -> Self {
        self.seed_window = window.max(1);
        self
    }

    /// The campaign configuration template (per-round runs override `seed`).
    #[must_use]
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// The campaign seed used for evidence round `round`.
    #[must_use]
    pub fn seed_for_round(&self, round: usize) -> u64 {
        self.config.seed.wrapping_add(round as u64 % self.seed_window)
    }
}

impl EvidenceSource for CampaignEvidence<'_> {
    fn name(&self) -> &'static str {
        "fuzz-campaign"
    }

    fn collect(
        &mut self,
        round: usize,
        learned: &LearnedLanguage,
        _mat: &Mat<'_>,
    ) -> Vec<Evidence> {
        let config = FuzzConfig { seed: self.seed_for_round(round), ..self.config.clone() };
        FuzzCampaign::new(learned, self.oracle, config).run().evidence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar::refine::RefineConfig;
    use vstar::{VStar, VStarConfig};
    use vstar_oracles::Fig1;

    #[test]
    fn seed_window_cycles() {
        let oracle = Fig1::new();
        let source =
            CampaignEvidence::new(&oracle, FuzzConfig { seed: 10, ..FuzzConfig::default() });
        assert_eq!(source.seed_for_round(0), 10);
        assert_eq!(source.seed_for_round(1), 11);
        assert_eq!(source.seed_for_round(2), 10);
        let wide = CampaignEvidence::new(&oracle, FuzzConfig { seed: 10, ..FuzzConfig::default() })
            .with_seed_window(3);
        assert_eq!(wide.seed_for_round(2), 12);
        // A zero window is clamped rather than dividing by zero.
        let clamped = CampaignEvidence::new(&oracle, FuzzConfig::default()).with_seed_window(0);
        assert_eq!(clamped.seed_for_round(5), clamped.config().seed);
        assert_eq!(source.name(), "fuzz-campaign");
    }

    #[test]
    fn exactly_learnable_language_reaches_fixed_point_without_evidence() {
        // Fig1 learns exactly in character mode; the campaign-backed loop
        // must simply certify that with `clean_passes` clean campaigns.
        let lang = Fig1::new();
        let oracle_fn = |s: &str| lang.accepts(s);
        let mat = Mat::new(&oracle_fn);
        let mut source =
            CampaignEvidence::new(&lang, FuzzConfig { iterations: 80, ..FuzzConfig::default() });
        let config = VStarConfig {
            token_discovery: vstar::TokenDiscovery::Characters,
            ..VStarConfig::default()
        };
        let (result, log) = VStar::new(config)
            .learn_refined(
                &mat,
                &lang.alphabet(),
                &lang.seeds(),
                &mut source,
                RefineConfig::default(),
            )
            .expect("learning succeeds");
        assert!(log.fixed_point, "{log:?}");
        assert_eq!(log.counterexamples_replayed(), 0);
        assert!(result.accepts(&mat, "agcdcdhbcd"));
    }
}
