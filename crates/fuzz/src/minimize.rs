//! Divergence-case minimization.
//!
//! A divergence found by a campaign is only actionable if it is small. Two
//! greedy reducers are provided, both driven by an arbitrary `keep` predicate
//! ("does this candidate still reproduce the divergence?"):
//!
//! * [`TreeMinimizer::minimize_tree`] — *subtree deletion* for cases that have
//!   a derivation in the learned grammar: nest bodies collapse to the minimal
//!   derivation of their nonterminal and level tails are truncated to their
//!   cheapest completion, so every intermediate candidate is still a member of
//!   the grammar (the false-positive class is preserved structurally, not by
//!   luck).
//! * [`minimize_string`] — ddmin-style greedy chunk deletion for cases with no
//!   derivation (false negatives live outside the learned grammar).

use std::cell::RefCell;
use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar_parser::{GrammarSampler, NestPath, ParseStep, ParseTree};
use vstar_vpl::{NonterminalId, Vpg};

/// Grammar-aware greedy subtree-deletion minimizer.
#[derive(Clone, Debug)]
pub struct TreeMinimizer<'g> {
    sampler: GrammarSampler<'g>,
    /// Memoized minimal derivations — [`TreeMinimizer::minimize_tree`] asks
    /// for the same nonterminals once per candidate per round, and re-deriving
    /// them is pure waste (the result is deterministic).
    minimal: RefCell<BTreeMap<usize, Option<ParseTree>>>,
}

impl<'g> TreeMinimizer<'g> {
    /// Builds a minimizer over `vpg`.
    #[must_use]
    pub fn new(vpg: &'g Vpg) -> Self {
        TreeMinimizer { sampler: GrammarSampler::new(vpg), minimal: RefCell::new(BTreeMap::new()) }
    }

    /// The minimal derivation of `nt`: with a zero budget the sampler always
    /// takes the cheapest completion, so this is deterministic and yields a
    /// shortest string derivable from `nt`. Memoized per nonterminal.
    #[must_use]
    pub fn minimal_level(&self, nt: NonterminalId) -> Option<ParseTree> {
        self.minimal
            .borrow_mut()
            .entry(nt.0)
            .or_insert_with(|| self.sampler.sample_tree_from(nt, &mut StdRng::seed_from_u64(0), 0))
            .clone()
    }

    /// Greedily shrinks `tree` while `keep` holds, trying (per round) to
    /// truncate level tails to their cheapest completion and to collapse nest
    /// bodies to minimal derivations — largest candidates first, restarting
    /// after every committed shrink. Stops at a fixpoint or after `max_checks`
    /// `keep` evaluations. The result is always a tree of the same grammar
    /// with `keep(result)` true (at worst the input itself).
    pub fn minimize_tree(
        &self,
        tree: &ParseTree,
        max_checks: usize,
        mut keep: impl FnMut(&ParseTree) -> bool,
    ) -> ParseTree {
        let mut cur = tree.clone();
        let mut checks = 0usize;
        'rounds: loop {
            // Tail truncation, outermost levels first: replace the level at
            // `path` by `steps[..k]` + the cheapest completion from there.
            let mut level_paths: Vec<NestPath> = vec![Vec::new()];
            level_paths.extend(cur.nest_summaries().into_iter().map(|s| s.path));
            for path in level_paths {
                let Some(level) = cur.level_at(&path) else { continue };
                let n = level.steps().len();
                let mut cuts = vec![0];
                if n >= 2 {
                    cuts.push(n / 2);
                }
                for k in cuts {
                    if k >= n {
                        continue;
                    }
                    let from = match &level.steps()[k] {
                        ParseStep::Plain { lhs, .. } | ParseStep::Nest { lhs, .. } => *lhs,
                    };
                    let Some(tail) = self.minimal_level(from) else { continue };
                    let mut steps: Vec<ParseStep> = level.steps()[..k].to_vec();
                    steps.extend(tail.steps().iter().cloned());
                    let cand_level = ParseTree::new(level.root(), steps, tail.closer());
                    if cand_level.len() >= level.len() {
                        continue; // not a shrink
                    }
                    let mut cand = cur.clone();
                    if cand.replace_level(&path, cand_level).is_err() {
                        continue;
                    }
                    checks += 1;
                    if checks > max_checks {
                        return cur;
                    }
                    if keep(&cand) {
                        cur = cand;
                        continue 'rounds; // paths are stale, rescan
                    }
                }
            }
            // Nest-body collapse, largest spans first.
            let mut sums = cur.nest_summaries();
            sums.sort_by_key(|s| std::cmp::Reverse(s.len));
            for s in sums {
                let Some(body) = cur.level_at(&s.path) else { continue };
                let Some(min) = self.minimal_level(s.inner_root) else { continue };
                if min.len() >= body.len() {
                    continue;
                }
                let mut cand = cur.clone();
                if cand.replace_level(&s.path, min).is_err() {
                    continue;
                }
                checks += 1;
                if checks > max_checks {
                    return cur;
                }
                if keep(&cand) {
                    cur = cand;
                    continue 'rounds;
                }
            }
            return cur;
        }
    }
}

/// Greedy chunked string deletion (a one-pass-per-granularity ddmin): removes
/// ever-smaller chunks while `keep` holds. The result always satisfies `keep`
/// (at worst the input itself).
pub fn minimize_string(s: &str, mut keep: impl FnMut(&str) -> bool) -> String {
    let mut cur: Vec<char> = s.chars().collect();
    let mut chunk = cur.len().div_ceil(2);
    while chunk >= 1 {
        let mut i = 0;
        while i + chunk <= cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            let cand_s: String = cand.iter().collect();
            if keep(&cand_s) {
                cur = cand; // same i: the next chunk slid into place
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    cur.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_parser::VpgParser;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn minimal_levels_are_shortest_completions() {
        let g = figure1_grammar();
        let m = TreeMinimizer::new(&g);
        for (i, &min_len) in g.min_lengths().iter().enumerate() {
            let nt = NonterminalId(i);
            let t = m.minimal_level(nt).expect("figure-1 nonterminals are productive");
            assert_eq!(t.root(), nt);
            assert_eq!(Some(t.len()), min_len, "minimal level of {nt} is not shortest");
        }
    }

    #[test]
    fn tree_minimization_preserves_predicate_and_shrinks() {
        let g = figure1_grammar();
        let parser = VpgParser::new(&g);
        let m = TreeMinimizer::new(&g);
        // Predicate: the derived string contains at least one 'g'. The
        // minimizer must keep one ‹g…h› group but can drop everything else.
        let big = parser.parse("agagcdhbhbcdagaghbhbcd").unwrap();
        let keep = |t: &ParseTree| t.yielded().contains('g');
        let small = m.minimize_tree(&big, 10_000, keep);
        assert!(small.validate(&g), "minimized tree must stay valid");
        assert!(small.yielded().contains('g'));
        assert!(small.len() < big.len(), "no shrink: {:?}", small.yielded());
        assert_eq!(small.yielded(), "aghb", "greedy deletion should reach the minimum");
    }

    #[test]
    fn string_minimization_is_greedy_ddmin() {
        let out = minimize_string("xxxaxxbxx", |s| s.contains('a') && s.contains('b'));
        assert_eq!(out, "ab");
        // The predicate holding on the empty string minimizes to empty.
        assert_eq!(minimize_string("abc", |_| true), "");
        // A predicate only the input satisfies returns the input.
        assert_eq!(minimize_string("ab", |s| s == "ab"), "ab");
    }
}
