//! Criterion bench for Ablation A (DESIGN.md): cost of V-Star learning as a
//! function of the simulated-equivalence test-string budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vstar::equivalence::TestPoolConfig;
use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Language, Lisp};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_teststrings");
    group.sample_size(10);
    let lang = Lisp::new();
    let oracle = |s: &str| lang.accepts(s);
    for budget in [100usize, 1000, 6000] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            b.iter(|| {
                let mat = Mat::new(&oracle);
                let config = VStarConfig {
                    test_pool: TestPoolConfig {
                        max_test_strings: budget,
                        ..TestPoolConfig::default()
                    },
                    ..VStarConfig::default()
                };
                let result = VStar::new(config)
                    .learn(&mat, &lang.alphabet(), &lang.seeds())
                    .expect("learning succeeds");
                black_box(result.stats.test_strings)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
