//! Criterion bench: the paper's running examples.
//!
//! * Figure 1 — character-level tagging inference + VPA learning on the toy VPG
//!   `L → ‹a A b› L | c B | ε` from the single seed `agcdcdhbcd`.
//! * Figure 2 — token-level inference (`<p>` / `</p>`) on the toy XML from the
//!   single seed `<p><p>p</p></p>`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vstar::{Mat, TokenDiscovery, VStar, VStarConfig};
use vstar_oracles::{Fig1, Language, ToyXml};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_examples");
    group.sample_size(10);

    group.bench_function("fig1_character_mode", |b| {
        let lang = Fig1::new();
        let oracle = |s: &str| lang.accepts(s);
        b.iter(|| {
            let mat = Mat::new(&oracle);
            let config = VStarConfig {
                token_discovery: TokenDiscovery::Characters,
                ..VStarConfig::default()
            };
            let result = VStar::new(config)
                .learn(&mat, &lang.alphabet(), &lang.seeds())
                .expect("fig1 learns");
            black_box(result.stats.queries_total)
        });
    });

    group.bench_function("fig2_token_mode", |b| {
        let lang = ToyXml::new();
        let oracle = |s: &str| lang.accepts(s);
        b.iter(|| {
            let mat = Mat::new(&oracle);
            let result = VStar::new(VStarConfig::default())
                .learn(&mat, &lang.alphabet(), &lang.seeds())
                .expect("fig2 learns");
            black_box(result.stats.queries_total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
