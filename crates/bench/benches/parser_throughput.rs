//! Throughput of the derivative-based VPG recognizer/parser (`vstar_parser`)
//! on progressively longer inputs, plus the grammar sampler. The recognizer is
//! the hot path of precision evaluation and of every future fuzzing/serving
//! workload, so its per-character cost is tracked here; comparing the
//! `recognize` series across input sizes also sanity-checks the linear-time
//! claim (time should scale with length, not blow up).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar_parser::{CompiledGrammar, GrammarSampler, VpgParser};
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{vpa_to_vpg, Tagging, VpaBuilder, Vpg};

/// The Dyck VPG (via the VPA → VPG conversion, like learned grammars).
fn dyck_vpg() -> Vpg {
    let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
    let mut b = VpaBuilder::new(tagging);
    let q0 = b.add_state();
    let g = b.add_stack_symbol();
    b.set_initial(q0);
    b.add_accepting(q0);
    b.call(q0, '(', q0, g).unwrap();
    b.ret(q0, ')', g, q0).unwrap();
    b.plain(q0, 'x', q0).unwrap();
    vpa_to_vpg(&b.build().unwrap())
}

/// A pumped member of the Figure-1 language with roughly `target` characters.
fn pumped_fig1(target: usize) -> String {
    let k = (target / 4).max(1);
    format!("{}cdcd{}cd", "ag".repeat(k), "hb".repeat(k))
}

fn bench_parser_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser_throughput");

    let fig1 = figure1_grammar();
    let fig1_parser = VpgParser::new(&fig1);
    let fig1_compiled = CompiledGrammar::from_vpg(&fig1).expect("figure 1 compiles");
    for size in [64usize, 1024, 16 * 1024] {
        let input = pumped_fig1(size);
        group.bench_with_input(
            BenchmarkId::new("recognize_fig1_chars", input.len()),
            &input,
            |b, input| b.iter(|| black_box(fig1_parser.recognize(input))),
        );
        // The compiled serving artifact on the same input: per-position item
        // sets become table lookups (tracked at scale by BENCH_serve.json).
        group.bench_with_input(
            BenchmarkId::new("recognize_fig1_compiled_chars", input.len()),
            &input,
            |b, input| b.iter(|| black_box(fig1_compiled.recognize_word(input))),
        );
        group.bench_with_input(
            BenchmarkId::new("parse_fig1_chars", input.len()),
            &input,
            |b, input| b.iter(|| black_box(fig1_parser.parse(input).unwrap().len())),
        );
    }

    // A conversion-produced grammar (the shape learned grammars have).
    let dyck = dyck_vpg();
    let dyck_parser = VpgParser::new(&dyck);
    let dyck_compiled = CompiledGrammar::from_vpg(&dyck).expect("dyck compiles");
    let dyck_input = "((x)(x(x)))x".repeat(512);
    group.bench_with_input(
        BenchmarkId::new("recognize_dyck_converted_chars", dyck_input.len()),
        &dyck_input,
        |b, input| b.iter(|| black_box(dyck_parser.recognize(input))),
    );
    group.bench_with_input(
        BenchmarkId::new("recognize_dyck_compiled_chars", dyck_input.len()),
        &dyck_input,
        |b, input| b.iter(|| black_box(dyck_compiled.recognize_word(input))),
    );

    let sampler = GrammarSampler::new(&fig1);
    group.bench_function("sample_fig1_budget64", |b| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        b.iter(|| black_box(sampler.sample(&mut rng, 64)))
    });
    group.bench_function("sample_tree_fig1_budget64", |b| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        b.iter(|| black_box(sampler.sample_tree(&mut rng, 64).map(|t| t.len())))
    });

    group.finish();
}

criterion_group!(benches, bench_parser_throughput);
criterion_main!(benches);
