//! Micro-benchmarks of the supporting components: oracle membership, VPA
//! execution, nesting-pattern checking, tokenization/conversion, and the
//! VPA → VPG conversion. These bound the cost of the millions of membership
//! queries reported in Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vstar::nesting::{is_nesting_pattern, NestingPattern};
use vstar::{Mat, PartialTokenizer};
use vstar_oracles::{Json, Language};
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{vpa_to_vpg, Tagging, VpaBuilder};

fn dyck_vpa() -> vstar_vpl::Vpa {
    let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
    let mut b = VpaBuilder::new(tagging);
    let q0 = b.add_state();
    let g = b.add_stack_symbol();
    b.set_initial(q0);
    b.add_accepting(q0);
    b.call(q0, '(', q0, g).unwrap();
    b.ret(q0, ')', g, q0).unwrap();
    b.plain(q0, 'x', q0).unwrap();
    b.build().unwrap()
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");

    let json = Json::new();
    let doc = "{\"k\":{\"x\":[1,2,{\"y\":true}]},\"z\":\"abc\"}";
    group.bench_function("oracle_membership_json", |b| b.iter(|| black_box(json.accepts(doc))));

    let vpa = dyck_vpa();
    let input = "((x)(x(x)))x".repeat(4);
    group.bench_function("vpa_execution", |b| b.iter(|| black_box(vpa.accepts(&input))));

    let fig1 = figure1_grammar();
    group.bench_function("vpg_recognition_fig1", |b| {
        b.iter(|| black_box(fig1.accepts("agagcdhbhbcdagcdcdhbcd")))
    });

    group.bench_function("vpa_to_vpg_conversion", |b| b.iter(|| black_box(vpa_to_vpg(&vpa))));

    let oracle = |s: &str| json.accepts(s);
    group.bench_function("nesting_pattern_check", |b| {
        b.iter(|| {
            let mat = Mat::new(&oracle);
            let p = NestingPattern::new("{\"a\":1}", (0, 1), (6, 7));
            black_box(is_nesting_pattern(&mat, &p, 2))
        })
    });

    group.bench_function("tokenize_and_convert_json", |b| {
        let tagging = Tagging::from_pairs([('{', '}'), ('[', ']')]).unwrap();
        let tokenizer = PartialTokenizer::from_tagging(&tagging);
        b.iter(|| {
            let mat = Mat::new(&oracle);
            black_box(tokenizer.convert(&mat, doc))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
