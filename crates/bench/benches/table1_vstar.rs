//! Criterion bench: the V-Star block of Table 1.
//!
//! Each benchmark learns one Table-1 grammar end-to-end with V-Star (tokenizer
//! inference + VPA learning + grammar extraction). Absolute times are not expected
//! to match the paper (our oracles are in-process recognizers, not external
//! parsers); the interesting comparison is the relative cost across grammars and
//! against the baselines (`table1_baselines`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Language, Lisp, ToyXml};

fn learn(lang: &dyn Language) -> usize {
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("learning succeeds");
    result.stats.queries_total
}

fn bench_vstar(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_vstar");
    group.sample_size(10);
    group.bench_function("lisp", |b| b.iter(|| black_box(learn(&Lisp::new()))));
    group.bench_function("toy_xml", |b| b.iter(|| black_box(learn(&ToyXml::new()))));
    group.finish();
}

criterion_group!(benches, bench_vstar);
criterion_main!(benches);
