//! Criterion bench: the GLADE and ARVADA blocks of Table 1 (learning cost of the
//! two baselines on Table-1 grammars).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vstar_baselines::{Arvada, ArvadaConfig, Glade, GladeConfig, LearnedGrammar};
use vstar_oracles::{Json, Language, Lisp};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_baselines");
    group.sample_size(10);
    for (name, lang) in
        [("json", Box::new(Json::new()) as Box<dyn Language>), ("lisp", Box::new(Lisp::new()))]
    {
        let seeds = lang.seeds();
        let oracle = |s: &str| lang.accepts(s);
        group.bench_function(format!("glade_{name}"), |b| {
            b.iter(|| {
                let g = Glade::learn(&oracle, &seeds, &GladeConfig::default());
                black_box(g.queries_used())
            });
        });
        group.bench_function(format!("arvada_{name}"), |b| {
            b.iter(|| {
                let a = Arvada::learn(&oracle, &seeds, &ArvadaConfig::default());
                black_box(a.queries_used())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
