//! Shared helpers for the benchmark harness and the table-regeneration binaries.
//!
//! The paper's evaluation (§6) has a single table (Table 1) plus two illustrative
//! figures (Figure 1 and Figure 2). `cargo run -p vstar_bench --bin table1
//! --release` regenerates the table against the bundled oracles; the Criterion
//! benches in `benches/` time the individual components and the figure examples;
//! `--bin ablation` runs the two design-choice ablations documented in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vstar_eval::{evaluate_arvada, evaluate_glade, evaluate_vstar, EvalConfig, Table1Report};
use vstar_oracles::table1_languages;

pub mod cli;

/// The evaluation configuration used by the table-regeneration binaries.
#[must_use]
pub fn default_eval_config() -> EvalConfig {
    EvalConfig::default()
}

/// Runs all three tools on every Table-1 grammar and collects the report.
///
/// `tools` selects which tools run ("glade", "arvada", "vstar"); an empty slice
/// runs all three.
#[must_use]
pub fn run_table1(config: &EvalConfig, tools: &[&str]) -> Table1Report {
    let run_all = tools.is_empty();
    let selected = |t: &str| run_all || tools.contains(&t);
    let mut report = Table1Report::new();
    let languages = table1_languages();
    if selected("glade") {
        for lang in &languages {
            report.push(evaluate_glade(lang.as_ref(), config));
        }
    }
    if selected("arvada") {
        for lang in &languages {
            report.push(evaluate_arvada(lang.as_ref(), config));
        }
    }
    if selected("vstar") {
        for lang in &languages {
            report.push(evaluate_vstar(lang.as_ref(), config));
        }
    }
    report
}

/// Runs one tool on one named grammar (used by the Criterion benches to keep each
/// measurement small).
#[must_use]
pub fn run_single(tool: &str, grammar: &str, config: &EvalConfig) -> Table1Report {
    let mut report = Table1Report::new();
    for lang in table1_languages() {
        if lang.name() != grammar {
            continue;
        }
        let row = match tool {
            "glade" => evaluate_glade(lang.as_ref(), config),
            "arvada" => evaluate_arvada(lang.as_ref(), config),
            _ => evaluate_vstar(lang.as_ref(), config),
        };
        report.push(row);
    }
    report
}

/// A small-budget configuration for quick runs (tests and micro benches).
#[must_use]
pub fn quick_eval_config() -> EvalConfig {
    EvalConfig {
        recall_samples: 40,
        precision_samples: 40,
        generation_budget: 14,
        ..EvalConfig::default()
    }
}

/// Learns one bundled language with the default V-Star pipeline and detaches
/// the learned artifacts (the setup step of the `fuzz` binary and the parser
/// throughput benches).
///
/// # Panics
///
/// Panics when learning fails — the bundled Table-1 grammars always learn.
#[must_use]
pub fn learn_learned_language(lang: &dyn vstar_oracles::Language) -> vstar::LearnedLanguage {
    let oracle = |s: &str| lang.accepts(s);
    let mat = vstar::Mat::new(&oracle);
    vstar::VStar::new(vstar::VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("learning the bundled grammars succeeds")
        .as_learned_language()
}

/// The divergence classes a fuzz campaign is *allowed* to report per Table-1
/// language, given the known accuracy of the default-configuration learner
/// (see `BENCH_table1.json`): `lisp`, `xml` and `mathexpr` learn exactly, so
/// any divergence there is a regression; `json` has a known recall gap
/// (≈ 0.92) and `while` a known precision gap (≈ 0.43), so those classes are
/// expected findings, not failures.
#[must_use]
pub fn allowed_divergence_classes(language: &str) -> &'static [&'static str] {
    match language {
        // Precision ≈ 0.99 / recall ≈ 0.92: both gap directions are real.
        "json" => &["false-positive", "false-negative"],
        // Precision ≈ 0.43 but recall 1.0: only over-generalization expected.
        "while" => &["false-positive"],
        _ => &[],
    }
}

/// The divergence classes `report` contains that
/// [`allowed_divergence_classes`] does not allow for its language — the
/// failure condition of `fuzz --check` (CI's fuzz smoke step).
#[must_use]
pub fn unexpected_divergence_classes(report: &vstar_fuzz::CampaignReport) -> Vec<&'static str> {
    let allowed = allowed_divergence_classes(&report.language);
    let mut bad = Vec::new();
    if report.counts.false_positive > 0 && !allowed.contains(&"false-positive") {
        bad.push("false-positive");
    }
    if report.counts.false_negative > 0 && !allowed.contains(&"false-negative") {
        bad.push("false-negative");
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_produces_one_row() {
        let report = run_single("glade", "lisp", &quick_eval_config());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].grammar, "lisp");
    }

    #[test]
    fn unknown_grammar_produces_empty_report() {
        let report = run_single("glade", "cobol", &quick_eval_config());
        assert!(report.rows.is_empty());
    }

    #[test]
    fn divergence_allowances_match_known_accuracy() {
        use vstar_eval::DifferentialCounts;
        use vstar_fuzz::{CampaignReport, FuzzCampaign, FuzzConfig};
        use vstar_oracles::Lisp;

        // Exactly-learned languages allow nothing; the known-gap ones allow
        // exactly their gap direction(s).
        for exact in ["lisp", "xml", "mathexpr"] {
            assert!(allowed_divergence_classes(exact).is_empty());
        }
        assert!(allowed_divergence_classes("while").contains(&"false-positive"));
        assert!(!allowed_divergence_classes("while").contains(&"false-negative"));

        let report = |language: &str, fp: usize, fn_: usize| CampaignReport {
            language: language.into(),
            seed: 0,
            iterations: 10,
            counts: DifferentialCounts {
                agree_accept: 5,
                agree_reject: 5,
                false_positive: fp,
                false_negative: fn_,
            },
            precision_estimate: 1.0,
            recall_estimate: 1.0,
            rules_covered: 1,
            rules_total: 1,
            corpus_trees: 1,
            divergences: Vec::new(),
            divergences_beyond_cap: 0,
        };
        assert!(unexpected_divergence_classes(&report("lisp", 0, 0)).is_empty());
        assert_eq!(unexpected_divergence_classes(&report("lisp", 1, 0)), ["false-positive"]);
        assert_eq!(unexpected_divergence_classes(&report("while", 3, 1)), ["false-negative"]);
        assert!(unexpected_divergence_classes(&report("json", 3, 1)).is_empty());

        // End to end on the fastest exactly-learned language: a real campaign
        // over the real learned grammar stays divergence-free (the `--check`
        // smoke gate in miniature).
        let lang = Lisp::new();
        let learned = learn_learned_language(&lang);
        let config = FuzzConfig { iterations: 60, ..FuzzConfig::default() };
        let run = FuzzCampaign::new(&learned, &lang, config).run();
        assert!(unexpected_divergence_classes(&run).is_empty(), "lisp diverged: {run:?}");
        assert!(run.rules_covered > 0);
    }
}
