//! Shared helpers for the benchmark harness and the table-regeneration binaries.
//!
//! The paper's evaluation (§6) has a single table (Table 1) plus two illustrative
//! figures (Figure 1 and Figure 2). `cargo run -p vstar_bench --bin table1
//! --release` regenerates the table against the bundled oracles; the Criterion
//! benches in `benches/` time the individual components and the figure examples;
//! `--bin ablation` runs the two design-choice ablations documented in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vstar_eval::{evaluate_arvada, evaluate_glade, evaluate_vstar, EvalConfig, Table1Report};
use vstar_oracles::table1_languages;

pub mod cli;

/// The evaluation configuration used by the table-regeneration binaries.
#[must_use]
pub fn default_eval_config() -> EvalConfig {
    EvalConfig::default()
}

/// Runs all three tools on every Table-1 grammar and collects the report.
///
/// `tools` selects which tools run ("glade", "arvada", "vstar"); an empty slice
/// runs all three.
#[must_use]
pub fn run_table1(config: &EvalConfig, tools: &[&str]) -> Table1Report {
    let run_all = tools.is_empty();
    let selected = |t: &str| run_all || tools.contains(&t);
    let mut report = Table1Report::new();
    let languages = table1_languages();
    if selected("glade") {
        for lang in &languages {
            report.push(evaluate_glade(lang.as_ref(), config));
        }
    }
    if selected("arvada") {
        for lang in &languages {
            report.push(evaluate_arvada(lang.as_ref(), config));
        }
    }
    if selected("vstar") {
        for lang in &languages {
            report.push(evaluate_vstar(lang.as_ref(), config));
        }
    }
    report
}

/// Enriches every V-Star row of `report` with post-refinement accuracy: each
/// grammar is re-learned with the counterexample-guided refinement loop
/// ([`learn_refined_language`]) and measured on the *same* deterministic
/// recall/precision datasets as the plain row
/// ([`vstar_eval::measure_vstar_accuracy`]), so `BENCH_table1.json` tracks the
/// pre/post trajectory side by side.
///
/// `fuzz` is the in-loop campaign template; `refine` bounds the loop.
pub fn attach_refined_vstar_metrics(
    report: &mut Table1Report,
    config: &EvalConfig,
    fuzz: &vstar_fuzz::FuzzConfig,
    refine: &vstar::refine::RefineConfig,
) {
    for row in report.rows.iter_mut().filter(|r| r.tool == "vstar") {
        let Some(lang) = vstar_oracles::language_by_name(&row.grammar) else {
            continue;
        };
        let refined = learn_refined_language(lang.as_ref(), fuzz, refine);
        let accuracy = vstar_eval::measure_vstar_accuracy(lang.as_ref(), config, &refined.result);
        row.refined_recall = Some(accuracy.recall);
        row.refined_precision = Some(accuracy.precision);
        row.refined_f1 = Some(accuracy.f1);
        row.refine_counterexamples = Some(refined.log.counterexamples_replayed());
    }
}

/// Runs one tool on one named grammar (used by the Criterion benches to keep each
/// measurement small).
#[must_use]
pub fn run_single(tool: &str, grammar: &str, config: &EvalConfig) -> Table1Report {
    let mut report = Table1Report::new();
    for lang in table1_languages() {
        if lang.name() != grammar {
            continue;
        }
        let row = match tool {
            "glade" => evaluate_glade(lang.as_ref(), config),
            "arvada" => evaluate_arvada(lang.as_ref(), config),
            _ => evaluate_vstar(lang.as_ref(), config),
        };
        report.push(row);
    }
    report
}

/// A small-budget configuration for quick runs (tests and micro benches).
#[must_use]
pub fn quick_eval_config() -> EvalConfig {
    EvalConfig {
        recall_samples: 40,
        precision_samples: 40,
        generation_budget: 14,
        ..EvalConfig::default()
    }
}

/// Learns one bundled language with the default V-Star pipeline and detaches
/// the learned artifacts (the pre-refinement baseline of the `refine` binary
/// and the setup step of the parser throughput benches).
///
/// # Panics
///
/// Panics when learning fails — the bundled Table-1 grammars always learn.
#[must_use]
pub fn learn_learned_language(lang: &dyn vstar_oracles::Language) -> vstar::LearnedLanguage {
    let oracle = |s: &str| lang.accepts(s);
    let mat = vstar::Mat::new(&oracle);
    vstar::VStar::new(vstar::VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("learning the bundled grammars succeeds")
        .as_learned_language()
}

/// Everything a counterexample-guided refinement run produces: the refined
/// artifacts, the full pipeline result and the refinement log.
pub struct RefinedLearning {
    /// The refined learned language, detached for serving/fuzzing.
    pub learned: vstar::LearnedLanguage,
    /// The full pipeline result (stats included).
    pub result: vstar::VStarResult,
    /// What the refinement loop did.
    pub log: vstar::refine::RefineLog,
}

/// Learns one bundled language with counterexample-guided refinement: the
/// default pipeline, with every pool-clean hypothesis interrogated by a
/// differential fuzz campaign (`vstar_fuzz::CampaignEvidence`) whose
/// divergences are replayed into the learner until the campaigns run dry.
///
/// `fuzz` is the in-loop campaign template (its `seed` is the base of the
/// per-round seed window); `refine` bounds the loop.
///
/// # Panics
///
/// Panics when learning fails — the bundled Table-1 grammars always learn.
#[must_use]
pub fn learn_refined_language(
    lang: &dyn vstar_oracles::Language,
    fuzz: &vstar_fuzz::FuzzConfig,
    refine: &vstar::refine::RefineConfig,
) -> RefinedLearning {
    let oracle = |s: &str| lang.accepts(s);
    let mat = vstar::Mat::new(&oracle);
    let mut source = vstar_fuzz::CampaignEvidence::new(lang, fuzz.clone())
        .with_seed_window(refine.clean_passes as u64);
    let (result, log) = vstar::VStar::new(vstar::VStarConfig::default())
        .learn_refined(&mat, &lang.alphabet(), &lang.seeds(), &mut source, refine.clone())
        .expect("refined learning of the bundled grammars succeeds");
    RefinedLearning { learned: result.as_learned_language(), result, log }
}

/// Seed of the deterministic repair corpus the corpus-driven re-inference
/// step diffs a hypothesis against. Deliberately disjoint from the
/// evaluation-dataset seed (`0xEA11_5EED`) so the recall gate never trains on
/// its own test set.
pub const REPAIR_CORPUS_SEED: u64 = 0x9A55_1FE5;
/// Size of the repair corpus.
pub const REPAIR_CORPUS_SIZE: usize = 300;

/// The deterministic positive corpus used by [`repair_learned_language`].
#[must_use]
pub fn repair_corpus(lang: &dyn vstar_oracles::Language, budget: usize) -> Vec<String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(REPAIR_CORPUS_SEED);
    lang.generate_corpus(&mut rng, budget, REPAIR_CORPUS_SIZE)
}

/// What a corpus-driven repair pass produced: the recall trajectory on the
/// standard evaluation dataset plus the re-inference outcome.
pub struct RepairedRun {
    /// Repaired learning + diagnosis; `None` when the base result already
    /// accepted the whole repair corpus and nothing needed repairing.
    pub repaired: Option<vstar_passive::RepairedLearning>,
    /// Recall of the base result on the evaluation dataset.
    pub recall_before: f64,
    /// Recall after the repair (equals `recall_before` when no repair ran).
    pub recall_after: f64,
}

/// Diffs `base` against the deterministic repair corpus
/// ([`repair_corpus`]) and, when the corpus witnesses a gap, re-learns under
/// a corpus-re-inferred tokenizer with the corpus as refinement evidence
/// (`vstar_passive::repair_with_corpus`). Recall is measured before and
/// after on the standard evaluation dataset via the compiled serving
/// artifact, exactly like `measure_vstar_accuracy`.
///
/// # Panics
///
/// Panics when the repaired run fails or a learned grammar does not compile.
#[must_use]
pub fn repair_learned_language(
    lang: &dyn vstar_oracles::Language,
    base: &vstar::VStarResult,
    eval: &EvalConfig,
) -> RepairedRun {
    use vstar_parser::CompileLearned;
    let corpus = repair_corpus(lang, eval.generation_budget);
    let recall_corpus = vstar_eval::recall_dataset(lang, eval);
    let compiled = base.compile().expect("base grammar compiles for serving");
    let recall_before = vstar_eval::recall(|s| compiled.recognize(s), &recall_corpus);

    let oracle = |s: &str| lang.accepts(s);
    let mat = vstar::Mat::new(&oracle);
    let config = vstar_passive::ReinferConfig {
        vstar: eval.vstar.clone(),
        ..vstar_passive::ReinferConfig::default()
    };
    let repaired = vstar_passive::repair_with_corpus(
        &mat,
        &lang.alphabet(),
        &lang.seeds(),
        base,
        &corpus,
        &config,
    )
    .expect("corpus-driven repair succeeds on the bundled grammars");
    let recall_after = match &repaired {
        Some(run) => {
            let compiled = run.result.compile().expect("repaired grammar compiles for serving");
            vstar_eval::recall(|s| compiled.recognize(s), &recall_corpus)
        }
        None => recall_before,
    };
    RepairedRun { repaired, recall_before, recall_after }
}

/// The in-loop campaign iteration floor used by the refined `fuzz`/`refine`
/// binaries: refinement keeps iterating until full campaigns of at least this
/// many iterations run divergence-free, so any shorter (or equal, same-seed)
/// CI gate campaign over the final grammar is certified clean by
/// construction.
pub const REFINE_MIN_ITERATIONS: usize = 300;

/// The divergence classes a fuzz campaign is *allowed* to report per Table-1
/// language. Since counterexample-guided refinement (the `refine` subsystem)
/// closed the gaps the PR 3 fuzzer found — the learned `while` grammar
/// accepting identifiers in arithmetic positions, the learned `json` grammar
/// accepting value concatenations — every language is now held to the same
/// bar: **no divergence class is expected**, and any finding is a regression.
/// (The pre-refinement gaps are still visible as the `pre` campaigns of
/// `BENCH_refine.json`.)
#[must_use]
pub fn allowed_divergence_classes(language: &str) -> &'static [&'static str] {
    let _ = language;
    &[]
}

/// The divergence classes `report` contains that
/// [`allowed_divergence_classes`] does not allow for its language — the
/// failure condition of `fuzz --check` (CI's fuzz smoke step).
#[must_use]
pub fn unexpected_divergence_classes(report: &vstar_fuzz::CampaignReport) -> Vec<&'static str> {
    let allowed = allowed_divergence_classes(&report.language);
    let mut bad = Vec::new();
    if report.counts.false_positive > 0 && !allowed.contains(&"false-positive") {
        bad.push("false-positive");
    }
    if report.counts.false_negative > 0 && !allowed.contains(&"false-negative") {
        bad.push("false-negative");
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_produces_one_row() {
        let report = run_single("glade", "lisp", &quick_eval_config());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].grammar, "lisp");
    }

    #[test]
    fn unknown_grammar_produces_empty_report() {
        let report = run_single("glade", "cobol", &quick_eval_config());
        assert!(report.rows.is_empty());
    }

    #[test]
    fn divergence_allowances_match_known_accuracy() {
        use vstar_eval::DifferentialCounts;
        use vstar_fuzz::{CampaignReport, FuzzCampaign, FuzzConfig};
        use vstar_oracles::Lisp;

        // Post-refinement, every language is held to the same bar: no
        // divergence class is tolerated anywhere.
        for lang in ["json", "lisp", "xml", "while", "mathexpr"] {
            assert!(allowed_divergence_classes(lang).is_empty());
        }

        let report = |language: &str, fp: usize, fn_: usize| CampaignReport {
            language: language.into(),
            seed: 0,
            iterations: 10,
            counts: DifferentialCounts {
                agree_accept: 5,
                agree_reject: 5,
                false_positive: fp,
                false_negative: fn_,
            },
            precision_estimate: 1.0,
            recall_estimate: 1.0,
            rules_covered: 1,
            rules_total: 1,
            corpus_trees: 1,
            divergences: Vec::new(),
            divergences_beyond_cap: 0,
        };
        assert!(unexpected_divergence_classes(&report("lisp", 0, 0)).is_empty());
        assert_eq!(unexpected_divergence_classes(&report("lisp", 1, 0)), ["false-positive"]);
        assert_eq!(unexpected_divergence_classes(&report("while", 3, 0)), ["false-positive"]);
        assert_eq!(
            unexpected_divergence_classes(&report("json", 3, 1)),
            ["false-positive", "false-negative"]
        );

        // End to end on the fastest exactly-learned language: a real campaign
        // over the real learned grammar stays divergence-free (the `--check`
        // smoke gate in miniature).
        let lang = Lisp::new();
        let learned = learn_learned_language(&lang);
        let config = FuzzConfig { iterations: 60, ..FuzzConfig::default() };
        let run = FuzzCampaign::new(&learned, &lang, config).run();
        assert!(unexpected_divergence_classes(&run).is_empty(), "lisp diverged: {run:?}");
        assert!(run.rules_covered > 0);
    }
}
