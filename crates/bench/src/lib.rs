//! Shared helpers for the benchmark harness and the table-regeneration binaries.
//!
//! The paper's evaluation (§6) has a single table (Table 1) plus two illustrative
//! figures (Figure 1 and Figure 2). `cargo run -p vstar_bench --bin table1
//! --release` regenerates the table against the bundled oracles; the Criterion
//! benches in `benches/` time the individual components and the figure examples;
//! `--bin ablation` runs the two design-choice ablations documented in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vstar_eval::{evaluate_arvada, evaluate_glade, evaluate_vstar, EvalConfig, Table1Report};
use vstar_oracles::table1_languages;

/// The evaluation configuration used by the table-regeneration binaries.
#[must_use]
pub fn default_eval_config() -> EvalConfig {
    EvalConfig::default()
}

/// Runs all three tools on every Table-1 grammar and collects the report.
///
/// `tools` selects which tools run ("glade", "arvada", "vstar"); an empty slice
/// runs all three.
#[must_use]
pub fn run_table1(config: &EvalConfig, tools: &[&str]) -> Table1Report {
    let run_all = tools.is_empty();
    let selected = |t: &str| run_all || tools.contains(&t);
    let mut report = Table1Report::new();
    let languages = table1_languages();
    if selected("glade") {
        for lang in &languages {
            report.push(evaluate_glade(lang.as_ref(), config));
        }
    }
    if selected("arvada") {
        for lang in &languages {
            report.push(evaluate_arvada(lang.as_ref(), config));
        }
    }
    if selected("vstar") {
        for lang in &languages {
            report.push(evaluate_vstar(lang.as_ref(), config));
        }
    }
    report
}

/// Runs one tool on one named grammar (used by the Criterion benches to keep each
/// measurement small).
#[must_use]
pub fn run_single(tool: &str, grammar: &str, config: &EvalConfig) -> Table1Report {
    let mut report = Table1Report::new();
    for lang in table1_languages() {
        if lang.name() != grammar {
            continue;
        }
        let row = match tool {
            "glade" => evaluate_glade(lang.as_ref(), config),
            "arvada" => evaluate_arvada(lang.as_ref(), config),
            _ => evaluate_vstar(lang.as_ref(), config),
        };
        report.push(row);
    }
    report
}

/// A small-budget configuration for quick runs (tests and micro benches).
#[must_use]
pub fn quick_eval_config() -> EvalConfig {
    EvalConfig {
        recall_samples: 40,
        precision_samples: 40,
        generation_budget: 14,
        ..EvalConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_produces_one_row() {
        let report = run_single("glade", "lisp", &quick_eval_config());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].grammar, "lisp");
    }

    #[test]
    fn unknown_grammar_produces_empty_report() {
        let report = run_single("glade", "cobol", &quick_eval_config());
        assert!(report.rows.is_empty());
    }
}
