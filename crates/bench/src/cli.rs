//! Shared command-line conventions for the bench binaries.
//!
//! Every binary in this crate (`table1`, `sample`, `ablation`, `fuzz`) takes
//! the same flag shapes — in particular `--seed N` for the run's RNG seed — so
//! the parsing lives here once instead of being hand-rolled per binary.
//!
//! Grammar: `--name value`, `--name=value`, bare `--name` switches, and plain
//! positionals. Which `--name`s expect a value is declared by the caller;
//! every other `--…` argument is a switch.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Display;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses `raw` (without the program name). Flags named in `value_flags`
    /// consume the next argument (or their `=`-suffix) as a value; flags named
    /// in `switch_flags` are bare switches; any other `--…` argument is an
    /// error, so typos (`--sed 5`) fail loudly instead of silently running
    /// with defaults.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message on unknown flags, a value flag without a
    /// value, or a flag given twice.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                args.positionals.push(arg);
                continue;
            };
            let (name, inline) = match name.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (name.to_string(), None),
            };
            if value_flags.contains(&name.as_str()) {
                let value = match inline {
                    Some(v) => v,
                    None => iter.next().ok_or(format!("--{name} expects a value"))?,
                };
                if args.values.insert(name.clone(), value).is_some() {
                    return Err(format!("--{name} given twice"));
                }
            } else if switch_flags.contains(&name.as_str()) {
                if inline.is_some() {
                    return Err(format!("--{name} does not take a value"));
                }
                if !args.switches.insert(name.clone()) {
                    return Err(format!("--{name} given twice"));
                }
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(args)
    }

    /// Like [`Args::parse`] but over the process arguments, exiting with the
    /// given usage line on malformed input (the shared `main()` preamble).
    #[must_use]
    pub fn parse_or_exit(usage: &str, value_flags: &[&str], switch_flags: &[&str]) -> Args {
        match Args::parse(std::env::args().skip(1), value_flags, switch_flags) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}\nusage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// The raw value of `--name`, if given.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed into `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message when the value does not parse.
    pub fn parsed<T: FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: Display,
    {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
        }
    }

    /// `true` if the bare switch `--name` was given.
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The positional (non-flag) arguments, in order.
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The shared `--seed N` convention.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message when the value is not a `u64`.
    pub fn seed(&self, default: u64) -> Result<u64, String> {
        self.parsed("seed", default)
    }

    /// A [`StdRng`] seeded per the shared `--seed N` convention.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message when the value is not a `u64`.
    pub fn seeded_rng(&self, default: u64) -> Result<StdRng, String> {
        Ok(StdRng::seed_from_u64(self.seed(default)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn flags_switches_and_positionals() {
        let a = Args::parse(
            strings(&["json", "--seed", "7", "--check", "--iterations=40", "lisp"]),
            &["seed", "iterations"],
            &["check"],
        )
        .unwrap();
        assert_eq!(a.positionals(), &["json".to_string(), "lisp".to_string()]);
        assert_eq!(a.seed(42).unwrap(), 7);
        assert_eq!(a.parsed::<usize>("iterations", 0).unwrap(), 40);
        assert!(a.switch("check"));
        assert!(!a.switch("json"));
        // Defaults apply when absent; the RNG derives from the same seed.
        assert_eq!(a.parsed::<usize>("budget", 24).unwrap(), 24);
        let _ = a.seeded_rng(42).unwrap();
    }

    #[test]
    fn malformed_flags_are_errors() {
        assert!(Args::parse(strings(&["--seed"]), &["seed"], &[]).is_err());
        assert!(Args::parse(strings(&["--seed", "1", "--seed", "2"]), &["seed"], &[]).is_err());
        assert!(Args::parse(strings(&["--check=yes"]), &[], &["check"]).is_err());
        assert!(Args::parse(strings(&["--check", "--check"]), &[], &["check"]).is_err());
        let a = Args::parse(strings(&["--seed", "x"]), &["seed"], &[]).unwrap();
        assert!(a.seed(0).is_err());
        // Typo'd flags are rejected, not silently absorbed as switches.
        assert_eq!(
            Args::parse(strings(&["--sed", "5"]), &["seed"], &["check"]).unwrap_err(),
            "unknown flag --sed"
        );
    }
}
