//! Regenerates the paper's Table 1: GLADE-style, ARVADA-style and V-Star on the
//! five oracle grammars (json, lisp, xml, while, mathexpr), reporting Recall,
//! Precision, F1, #Queries, %Q(Token), %Q(VPA), #TS and learning time — plus,
//! for the V-Star rows, the post-refinement `Recall+`/`Precision+` columns
//! (the same datasets, measured after the counterexample-guided refinement
//! loop of `vstar::refine` closed the fuzzer-found gaps).
//!
//! Usage:
//!   cargo run -p vstar_bench --bin table1 --release [-- tool ...] [--seed N] [--json]
//! where each optional `tool` is one of `glade`, `arvada`, `vstar` (default: all)
//! and `--seed` overrides the dataset RNG seed (default: the tracked
//! configuration). Pass `--json` to additionally print the report as JSON.
//!
//! Besides the human-readable table on stdout, a full run (all tools, default
//! seed) writes the report as machine-readable JSON to `BENCH_table1.json` in
//! the current directory, so the performance/accuracy trajectory can be
//! tracked across commits; partial or seed-overridden runs leave the tracked
//! file untouched. All numbers except the wall-clock `time_seconds` fields are
//! deterministic for a fixed seed.

use vstar_bench::cli::Args;
use vstar_bench::{
    attach_refined_vstar_metrics, default_eval_config, run_table1, REFINE_MIN_ITERATIONS,
};

/// File the machine-readable report is written to (current directory).
const JSON_REPORT_PATH: &str = "BENCH_table1.json";

const USAGE: &str = "table1 [glade|arvada|vstar ...] [--seed N] [--json]";

fn main() {
    let args = Args::parse_or_exit(USAGE, &["seed"], &["json"]);
    let mut config = default_eval_config();
    let tracked_seed = config.rng_seed;
    config.rng_seed = args.seed(tracked_seed).unwrap_or_else(|e| {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    });
    // Reject unknown tool names: a typo must not silently select "all tools"
    // and overwrite the committed full report with an unintended run.
    if let Some(bad) =
        args.positionals().iter().find(|a| !["glade", "arvada", "vstar"].contains(&a.as_str()))
    {
        eprintln!("unknown tool {bad:?}\nusage: {USAGE}");
        std::process::exit(2);
    }
    let tools: Vec<&str> = args.positionals().iter().map(String::as_str).collect();
    let mut report = run_table1(&config, &tools);
    // Post-refinement columns for the V-Star rows (`Recall+`/`Precision+`):
    // re-learn with the counterexample-guided refinement loop and measure on
    // the same datasets. The in-loop campaigns mirror the `fuzz`/`refine`
    // binaries' default configuration.
    if tools.is_empty() || tools.contains(&"vstar") {
        let fuzz = vstar_fuzz::FuzzConfig {
            seed: 42,
            iterations: REFINE_MIN_ITERATIONS,
            ..vstar_fuzz::FuzzConfig::default()
        };
        attach_refined_vstar_metrics(
            &mut report,
            &config,
            &fuzz,
            &vstar::refine::RefineConfig::default(),
        );
    }
    println!("Table 1 — evaluation on datasets where the oracle grammars are VPGs");
    println!(
        "(recall/precision estimated on {} / {} samples; see EXPERIMENTS.md)",
        config.recall_samples, config.precision_samples
    );
    println!();
    print!("{report}");
    if tools.is_empty() && config.rng_seed == tracked_seed {
        match std::fs::write(JSON_REPORT_PATH, report.to_json()) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !tools.is_empty() {
        // Partial runs must not clobber the committed full-trajectory report.
        println!("partial tool selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default seed: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{}", report.to_json());
    }
}
