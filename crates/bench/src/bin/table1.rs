//! Regenerates the paper's Table 1: GLADE-style, ARVADA-style and V-Star on the
//! five oracle grammars (json, lisp, xml, while, mathexpr), reporting Recall,
//! Precision, F1, #Queries, %Q(Token), %Q(VPA), #TS and learning time.
//!
//! Usage:
//!   cargo run -p vstar_bench --bin table1 --release [-- tool ...]
//! where each optional `tool` is one of `glade`, `arvada`, `vstar` (default: all).
//! Pass `--json` to additionally print the report as JSON.
//!
//! Besides the human-readable table on stdout, the run always writes the report
//! as machine-readable JSON to `BENCH_table1.json` in the current directory, so
//! the performance/accuracy trajectory can be tracked across commits.

use vstar_bench::{default_eval_config, run_table1};

/// File the machine-readable report is written to (current directory).
const JSON_REPORT_PATH: &str = "BENCH_table1.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_json = args.iter().any(|a| a == "--json");
    let tools: Vec<&str> = args
        .iter()
        .filter(|a| ["glade", "arvada", "vstar"].contains(&a.as_str()))
        .map(String::as_str)
        .collect();
    let config = default_eval_config();
    let report = run_table1(&config, &tools);
    println!("Table 1 — evaluation on datasets where the oracle grammars are VPGs");
    println!(
        "(recall/precision estimated on {} / {} samples; see EXPERIMENTS.md)",
        config.recall_samples, config.precision_samples
    );
    println!();
    print!("{report}");
    if tools.is_empty() {
        match std::fs::write(JSON_REPORT_PATH, report.to_json()) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else {
        // Partial runs must not clobber the committed full-trajectory report.
        println!("partial tool selection: {JSON_REPORT_PATH} left untouched");
    }
    if want_json {
        println!("{}", report.to_json());
    }
}
