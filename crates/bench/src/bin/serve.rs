//! Serving-path throughput: compiled artifact vs. uncompiled parser.
//!
//! For each selected Table-1 grammar the binary (1) learns the language with
//! the default V-Star pipeline, (2) compiles the learned grammar into the
//! owned [`vstar_parser::CompiledGrammar`] artifact, (3) builds a
//! deterministic corpus of converted words (grammar samples plus mutated
//! non-members) and (4) measures single-thread recognition throughput of the
//! uncompiled item-set parser against the compiled table-driven automaton,
//! plus the sharded raw-string batch path across threads.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin serve -- \
//!     [grammar ...] [--seed N] [--samples N] [--budget N] [--passes N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars, `--seed 42`, `--samples 300`, `--budget 40`,
//! `--passes 40`. A full-set run at the default configuration rewrites the
//! tracked `BENCH_serve.json`. Corpus shapes, acceptance counts and artifact
//! sizes are deterministic for a fixed seed; the `*_chars_per_sec` and
//! `speedup` fields are wall-clock measurements and are excluded from the
//! determinism claim (the same convention as `BENCH_table1.json`'s
//! `time_seconds`).
//!
//! `--check` turns the run into the CI smoke gate: the process exits nonzero
//! when the compiled artifact disagrees with the uncompiled parser on any
//! corpus word, or when a save → load round trip drifts. Throughput is
//! printed but not gated (CI machines are noisy); the committed
//! `BENCH_serve.json` documents the measured speedups.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use vstar_bench::cli::Args;
use vstar_bench::learn_learned_language;
use vstar_oracles::{language_by_name, table1_languages};
use vstar_parser::{CompileLearned, CompiledGrammar, GrammarSampler, VpgParser};

const JSON_REPORT_PATH: &str = "BENCH_serve.json";

const DEFAULT_SEED: u64 = 42;
const DEFAULT_SAMPLES: usize = 300;
const DEFAULT_BUDGET: usize = 40;
const DEFAULT_PASSES: usize = 40;

const USAGE: &str = "serve [grammar ...] [--seed N] [--samples N] [--budget N] [--passes N] \
                     [--check] [--json]";

/// One grammar's serving measurements. Every field except the
/// `*_chars_per_sec` and `speedup*` wall-clock measurements is deterministic
/// for a fixed seed.
#[derive(Serialize)]
struct ServeRow {
    grammar: String,
    /// Words in the benchmark corpus (members + mutants).
    corpus_words: usize,
    /// Total characters across the corpus (the throughput denominator).
    corpus_chars: usize,
    /// Corpus words the grammar accepts (identical for both engines).
    accepted_words: usize,
    /// Interned item-set states of the compiled derivative automaton.
    automaton_states: usize,
    /// Interned stack symbols of the compiled derivative automaton.
    stack_symbols: usize,
    /// Size of the serialized artifact document in bytes.
    artifact_bytes: usize,
    /// Single-thread throughput of the uncompiled `VpgParser` (wall clock).
    uncompiled_chars_per_sec: f64,
    /// Single-thread throughput of `CompiledGrammar::recognize_word` (wall clock).
    compiled_chars_per_sec: f64,
    /// `compiled_chars_per_sec / uncompiled_chars_per_sec` (wall clock).
    speedup: f64,
    /// Raw-string batch throughput across scoped threads (wall clock).
    batch_chars_per_sec: f64,
    /// `batch_chars_per_sec / compiled single-thread raw throughput` (wall clock).
    batch_scaling: f64,
}

#[derive(Serialize)]
struct ServeBenchReport {
    seed: u64,
    samples: usize,
    budget: usize,
    passes: usize,
    threads: usize,
    rows: Vec<ServeRow>,
}

fn main() {
    let args =
        Args::parse_or_exit(USAGE, &["seed", "samples", "budget", "passes"], &["check", "json"]);
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let samples: usize = args.parsed("samples", DEFAULT_SAMPLES).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));
    let passes: usize = args.parsed("passes", DEFAULT_PASSES).unwrap_or_else(|e| fail(e));

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> =
        if args.positionals().is_empty() { all_names.clone() } else { args.positionals().to_vec() };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config = seed == DEFAULT_SEED
        && samples == DEFAULT_SAMPLES
        && budget == DEFAULT_BUDGET
        && passes == DEFAULT_PASSES;

    let threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut rows = Vec::new();
    let mut check_failed = false;
    for name in &selected {
        let Some(lang) = language_by_name(name) else {
            fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")));
        };
        eprintln!("learning {name} …");
        let learned = learn_learned_language(lang.as_ref());
        let compiled = learned.compile().expect("learned grammars compile");
        let parser = VpgParser::new(learned.vpg());

        // Deterministic corpus of converted words: grammar samples (members
        // by construction) plus single-character mutants (mostly rejects).
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = GrammarSampler::new(learned.vpg());
        let mut words = sampler.sample_many(&mut rng, budget, samples);
        let terminals: Vec<char> = learned.vpg().terminals().into_iter().collect();
        for k in 0..words.len() {
            let mut mutant: Vec<char> = words[k].chars().collect();
            if mutant.is_empty() {
                continue;
            }
            let i = rng.gen_range(0..mutant.len());
            mutant[i] = terminals[rng.gen_range(0..terminals.len())];
            words.push(mutant.into_iter().collect());
        }
        let corpus_chars: usize = words.iter().map(|w| w.chars().count()).sum();

        // Correctness first: the compiled artifact must agree with the
        // uncompiled parser on every corpus word, before and after a
        // serialization round trip.
        let artifact_json = compiled.to_json();
        let reloaded = CompiledGrammar::from_json(&artifact_json).expect("round trip");
        let mut accepted_words = 0usize;
        for w in &words {
            let expect = parser.recognize(w);
            let got = compiled.recognize_word(w);
            let reloaded_got = reloaded.recognize_word(w);
            if got != expect || reloaded_got != expect {
                eprintln!(
                    "FAIL {name}: engines disagree on {w:?} (uncompiled {expect}, compiled {got}, \
                     reloaded {reloaded_got})"
                );
                check_failed = true;
            }
            accepted_words += usize::from(expect);
        }

        // Throughput: repeated full passes over the corpus.
        let time_passes = |f: &dyn Fn(&str) -> bool| -> f64 {
            let start = Instant::now();
            let mut live = 0usize;
            for _ in 0..passes {
                for w in &words {
                    live += usize::from(f(w));
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(live);
            (corpus_chars * passes) as f64 / elapsed.max(1e-9)
        };
        let uncompiled_cps = time_passes(&|w| parser.recognize(w));
        let compiled_cps = time_passes(&|w| compiled.recognize_word(w));

        // Batch path: raw strings across scoped threads vs. one thread.
        let raws: Vec<String> = words.iter().map(|w| learned.strip(w)).collect();
        let raw_refs: Vec<&str> = raws.iter().map(String::as_str).collect();
        let raw_chars: usize = raws.iter().map(|r| r.chars().count()).sum();
        let start = Instant::now();
        let mut single_live = 0usize;
        for _ in 0..passes {
            for r in &raw_refs {
                single_live += usize::from(compiled.recognize(r));
            }
        }
        let single_raw_elapsed = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut batch_live = 0usize;
        for _ in 0..passes {
            batch_live += compiled.recognize_batch(&raw_refs).iter().filter(|&&v| v).count();
        }
        let batch_elapsed = start.elapsed().as_secs_f64();
        assert_eq!(single_live, batch_live, "batch path changed verdicts");
        let single_raw_cps = (raw_chars * passes) as f64 / single_raw_elapsed.max(1e-9);
        let batch_cps = (raw_chars * passes) as f64 / batch_elapsed.max(1e-9);

        rows.push(ServeRow {
            grammar: name.clone(),
            corpus_words: words.len(),
            corpus_chars,
            accepted_words,
            automaton_states: compiled.automaton_states(),
            stack_symbols: compiled.stack_symbols(),
            artifact_bytes: artifact_json.len(),
            uncompiled_chars_per_sec: uncompiled_cps,
            compiled_chars_per_sec: compiled_cps,
            speedup: compiled_cps / uncompiled_cps.max(1e-9),
            batch_chars_per_sec: batch_cps,
            batch_scaling: batch_cps / single_raw_cps.max(1e-9),
        });
    }

    println!("Serving throughput: compiled artifact vs uncompiled parser (seed {seed})");
    println!();
    println!(
        "grammar\twords\tchars\tstates\tuncompiled MB/s\tcompiled MB/s\tspeedup\tbatch-scaling"
    );
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}x\t{:.1}x",
            r.grammar,
            r.corpus_words,
            r.corpus_chars,
            r.automaton_states,
            r.uncompiled_chars_per_sec / 1e6,
            r.compiled_chars_per_sec / 1e6,
            r.speedup,
            r.batch_scaling,
        );
    }

    let report = ServeBenchReport { seed, samples, budget, passes, threads, rows };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        if check_failed {
            std::process::exit(1);
        }
        println!("check passed: compiled, reloaded and uncompiled engines agree on every word");
    }
}
