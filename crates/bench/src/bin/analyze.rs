//! Static analysis over the refined Table-1 grammars.
//!
//! For each selected grammar the binary re-learns the language with
//! counterexample-guided refinement (the same loop as the `refine` binary),
//! then runs the full `vstar-analyze` lint stack over everything the pipeline
//! produced: the learned language (grammar + automaton + congruence report),
//! the compiled serving artifact, and the refinement log's rule-liveness
//! trajectory. Each grammar also gets a corpus-only passive construction
//! (`vstar_passive::learn_passive` over a deterministic generated corpus) so
//! the passive lint pass and its `PSV000` stats card are exercised on real
//! artifacts. No oracle query is spent on analysis — every pass is static,
//! and passive learning itself never consults an oracle.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin analyze -- \
//!     [grammar ...] [--seed N] [--refine-iterations N] \
//!     [--max-campaigns N] [--budget N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars, `--seed 42`, `--refine-iterations 300`
//! (matching the `refine` binary's tracked configuration, so the analyzed
//! grammars are the same artifacts `BENCH_refine.json` tracks),
//! `--max-campaigns 40`, `--budget 24`. The run is fully deterministic;
//! `BENCH_analyze.json` is only (re)written by a full-grammar-set run at the
//! default configuration.
//!
//! `--check` turns the run into the CI analysis gate: the process exits
//! nonzero when any refined grammar lints at warn-or-worse severity, when a
//! report is missing the always-emitted summary lints (which would mean a
//! pass silently did not run), when a passive report is missing its `PSV000`
//! stats card or lints at error severity (warn-level findings are expected on
//! partial passive automata), or when the analyzer fails the blindness
//! self-check — a surgically broken variant of a refined grammar must light
//! up the named diagnostic codes (`VPG003`, `LRN001`), otherwise "lint-clean"
//! is indistinguishable from "looked at nothing".

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use vstar::refine::{RefineConfig, RuleLiveness};
use vstar_analyze::{
    analyze_passive, congruence_summary, AnalysisReport, Analyze, CongruenceSummary, Severity,
};
use vstar_bench::cli::Args;
use vstar_bench::{learn_refined_language, REFINE_MIN_ITERATIONS};
use vstar_fuzz::surgery::with_crossed_returns;
use vstar_fuzz::FuzzConfig;
use vstar_oracles::{language_by_name, table1_languages};
use vstar_parser::CompileLearned;
use vstar_passive::{learn_passive, PassiveConfig};

/// File the machine-readable report is written to (current directory).
const JSON_REPORT_PATH: &str = "BENCH_analyze.json";

const DEFAULT_SEED: u64 = 42;
/// In-loop campaign iterations (must match the `refine` binary so the
/// analyzed grammars are the tracked refined artifacts).
const DEFAULT_REFINE_ITERATIONS: usize = REFINE_MIN_ITERATIONS;
/// Evidence-round budget of one refinement loop.
const DEFAULT_MAX_CAMPAIGNS: usize = 40;
/// Sample budget of the in-loop campaigns.
const DEFAULT_BUDGET: usize = 24;
/// Corpus size of the per-grammar passive construction the passive lint pass
/// runs over.
const PASSIVE_CORPUS_SIZE: usize = 120;
/// Sentence-size budget of the passive corpus (matches the `passive`
/// binary's generation budget).
const PASSIVE_CORPUS_BUDGET: usize = 18;

const USAGE: &str = "analyze [grammar ...] [--seed N] [--refine-iterations N] \
                     [--max-campaigns N] [--budget N] [--check] [--json]";

/// Findings-by-severity accounting for one report.
#[derive(Serialize)]
struct SeverityCounts {
    info: usize,
    warn: usize,
    error: usize,
}

impl SeverityCounts {
    fn of(report: &AnalysisReport) -> Self {
        SeverityCounts {
            info: report.count(Severity::Info),
            warn: report.count(Severity::Warn),
            error: report.count(Severity::Error),
        }
    }
}

/// The full static-analysis picture of one refined grammar.
#[derive(Serialize)]
struct GrammarAnalyzeReport {
    language: String,
    /// Learned-language report: grammar, automaton, congruence and
    /// cross-artifact consistency lints.
    learned: AnalysisReport,
    learned_counts: SeverityCounts,
    /// Compiled serving-artifact report: table integrity, reachability and
    /// tokenizer-ambiguity lints.
    compiled: AnalysisReport,
    compiled_counts: SeverityCounts,
    /// Passive-construction report: stats card, training-consistency audit,
    /// conversion-loss accounting (over a corpus-only construction, not the
    /// refined artifact).
    passive: AnalysisReport,
    passive_counts: SeverityCounts,
    /// State/stack-symbol merge headroom of the learned automaton.
    congruence: CongruenceSummary,
    /// Rule liveness of the first refinement hypothesis.
    pre_liveness: Option<RuleLiveness>,
    /// Rule liveness of the final refined grammar.
    post_liveness: Option<RuleLiveness>,
}

/// The tracked machine-readable summary (no wall-clock fields: reruns with
/// the same configuration are byte-identical).
#[derive(Serialize)]
struct AnalyzeBenchReport {
    seed: u64,
    refine_iterations: usize,
    max_campaigns: usize,
    grammars: Vec<GrammarAnalyzeReport>,
}

fn main() {
    let args = Args::parse_or_exit(
        USAGE,
        &["seed", "refine-iterations", "max-campaigns", "budget"],
        &["check", "json"],
    );
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let refine_iterations: usize =
        args.parsed("refine-iterations", DEFAULT_REFINE_ITERATIONS).unwrap_or_else(|e| fail(e));
    let max_campaigns: usize =
        args.parsed("max-campaigns", DEFAULT_MAX_CAMPAIGNS).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> =
        if args.positionals().is_empty() { all_names.clone() } else { args.positionals().to_vec() };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config = seed == DEFAULT_SEED
        && refine_iterations == DEFAULT_REFINE_ITERATIONS
        && max_campaigns == DEFAULT_MAX_CAMPAIGNS
        && budget == DEFAULT_BUDGET;

    let loop_config = FuzzConfig {
        seed,
        iterations: refine_iterations,
        sample_budget: budget,
        ..FuzzConfig::default()
    };
    let refine_config = RefineConfig { max_campaigns, ..RefineConfig::default() };

    let mut grammars: Vec<GrammarAnalyzeReport> = Vec::new();
    // The first analyzed language doubles as the blindness self-check
    // subject; keep it (and the check's findings) out of the tracked report.
    let mut self_check: Option<(String, AnalysisReport)> = None;
    for name in &selected {
        let Some(lang) = language_by_name(name) else {
            fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")));
        };
        eprintln!("learning {name} (refined pipeline) …");
        let refined = learn_refined_language(lang.as_ref(), &loop_config, &refine_config);
        let learned = refined.learned.analyze();
        let compiled_artifact = refined.result.compile().expect("refined Table-1 grammars compile");
        let compiled = compiled_artifact.analyze();
        let congruence = congruence_summary(refined.learned.vpa());
        let mut corpus_rng = StdRng::seed_from_u64(seed);
        let corpus =
            lang.generate_corpus(&mut corpus_rng, PASSIVE_CORPUS_BUDGET, PASSIVE_CORPUS_SIZE);
        let passive = analyze_passive(&learn_passive(&corpus, &PassiveConfig::default()), None);
        eprintln!(
            "analyzed {name}: {} learned finding(s), {} compiled finding(s), \
             {} passive finding(s), {}/{} states mergeable",
            learned.diagnostics.len(),
            compiled.diagnostics.len(),
            passive.diagnostics.len(),
            congruence.mergeable_states,
            congruence.states,
        );
        if self_check.is_none() {
            if let Some(crossed) = with_crossed_returns(refined.learned.vpg()) {
                let broken = refined.learned.clone().with_vpg(crossed);
                self_check = Some((name.clone(), broken.analyze()));
            }
        }
        grammars.push(GrammarAnalyzeReport {
            language: name.clone(),
            learned_counts: SeverityCounts::of(&learned),
            learned,
            compiled_counts: SeverityCounts::of(&compiled),
            compiled,
            passive_counts: SeverityCounts::of(&passive),
            passive,
            congruence,
            pre_liveness: refined.log.pre_liveness,
            post_liveness: refined.log.post_liveness,
        });
    }

    println!("Static analysis of refined learned grammars (seed {seed})");
    println!();
    println!(
        "grammar\tlearned(i/w/e)\tcompiled(i/w/e)\tpassive(i/w/e)\tstates\tmergeable\tlive rules"
    );
    for g in &grammars {
        let live = g
            .post_liveness
            .map_or_else(|| "-".to_string(), |l| format!("{}/{}", l.live_rules, l.rules));
        println!(
            "{}\t{}/{}/{}\t{}/{}/{}\t{}/{}/{}\t{}\t{}\t{}",
            g.language,
            g.learned_counts.info,
            g.learned_counts.warn,
            g.learned_counts.error,
            g.compiled_counts.info,
            g.compiled_counts.warn,
            g.compiled_counts.error,
            g.passive_counts.info,
            g.passive_counts.warn,
            g.passive_counts.error,
            g.congruence.states,
            g.congruence.mergeable_states,
            live,
        );
    }

    let bench = AnalyzeBenchReport { seed, refine_iterations, max_campaigns, grammars };
    let json = serde_json::to_string_pretty(&bench).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        let mut failed = false;
        for g in &bench.grammars {
            for (layer, report) in [("learned", &g.learned), ("compiled", &g.compiled)] {
                if !report.is_clean(Severity::Warn) {
                    failed = true;
                    for d in report.at_least(Severity::Warn) {
                        eprintln!("FAIL {}: {layer} artifact lints at {d}", g.language);
                    }
                }
            }
            // "Lint-clean" must mean "every pass ran", not "nothing looked":
            // the automaton coverage summary and the congruence summary are
            // emitted unconditionally by their passes.
            if !g.learned.has("VPA007") || !g.learned.has("CNG000") {
                failed = true;
                eprintln!(
                    "FAIL {}: learned report is missing the always-on summary lints \
                     (have {:?}) — an analysis pass did not run",
                    g.language,
                    g.learned.codes(),
                );
            }
            // The passive pass has its own vacuity guard: the stats card is
            // emitted unconditionally, and a corpus-built construction must
            // never carry error-severity findings (training consistency and
            // nonempty language hold by construction). Warn-level findings
            // are expected — partial passive automata legitimately carry
            // unproductive grammar structure.
            if !g.passive.has("PSV000") {
                failed = true;
                eprintln!(
                    "FAIL {}: passive report is missing the PSV000 stats card \
                     (have {:?}) — the passive analysis pass did not run",
                    g.language,
                    g.passive.codes(),
                );
            }
            if !g.passive.is_clean(Severity::Error) {
                failed = true;
                for d in g.passive.at_least(Severity::Error) {
                    eprintln!("FAIL {}: passive artifact lints at {d}", g.language);
                }
            }
        }
        match &self_check {
            Some((name, report)) if report.has("VPG003") && report.has("LRN001") => {
                eprintln!(
                    "self-check: surgically crossed {name} lints as expected ({:?})",
                    report.codes()
                );
            }
            Some((name, report)) => {
                failed = true;
                eprintln!(
                    "FAIL self-check: crossed-return surgery on {name} produced {:?}, \
                     expected VPG003 and LRN001 — the analyzer went blind",
                    report.codes(),
                );
            }
            None => {
                failed = true;
                eprintln!(
                    "FAIL self-check: no selected grammar offered a second tagging pair \
                     to cross — the blindness probe never ran",
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: refined grammars analyze clean at warn severity, \
             passive constructions carded and error-free"
        );
    }
}
