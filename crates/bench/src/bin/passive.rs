//! Passive and hybrid corpus-driven learning across the Table-1 languages.
//!
//! For each selected grammar the binary (1) learns pure-passively from
//! oracle-sampled corpora of increasing size and reports the
//! recall/precision trajectory of the corpus-only hypothesis
//! (`vstar_passive::learn_passive`), (2) compares a cold corpus-evidence
//! refinement run against the hybrid warm start — corpus preloaded as
//! answered membership queries plus a passive observation seed
//! (`vstar_passive::learn_hybrid`) — on the same counting oracle, and
//! (3) runs the corpus-driven tokenizer re-inference repair over a plain
//! base run and reports the recall trajectory it closes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin passive -- \
//!     [grammar ...] [--seed N] [--corpus-size N] [--budget N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars, `--seed 42` (the corpus seed; evaluation
//! datasets keep their own fixed seed), `--corpus-size 200`, `--budget 18`.
//! The run is fully deterministic — wall-clock chatter goes to stderr —
//! and `BENCH_passive.json` is only (re)written by a full-grammar-set run
//! at the default configuration.
//!
//! `--check` turns the run into the CI passive gate: the process exits
//! nonzero when a passive hypothesis rejects one of its own training
//! samples, when the hybrid warm start fails to save membership queries on
//! a majority of the grammars, or when the re-inference repair leaves the
//! known JSON recall gap open (evaluation recall below 1.0).

use serde::Serialize;

use vstar::refine::CorpusEvidence;
use vstar::{Mat, RefineConfig, VStar, VStarConfig};
use vstar_bench::cli::Args;
use vstar_bench::{default_eval_config, repair_learned_language};
use vstar_eval::{measure_vstar_accuracy, recall_dataset};
use vstar_oracles::{language_by_name, table1_languages, CountingOracle};
use vstar_parser::GrammarSampler;
use vstar_passive::{learn_hybrid, learn_passive, HybridConfig, PassiveConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// File the machine-readable report is written to (current directory).
const JSON_REPORT_PATH: &str = "BENCH_passive.json";

const DEFAULT_SEED: u64 = 42;
/// Largest corpus size: the corpus the hybrid comparison and the curve's
/// final point use.
const DEFAULT_CORPUS_SIZE: usize = 200;
/// Sentence-size budget for corpus generation (matches the evaluation
/// datasets' generation budget).
const DEFAULT_BUDGET: usize = 18;
/// Corpus sizes of the pure-passive learning curve (filtered to the
/// configured maximum). Same-seed corpora are nested by construction, so
/// each point's training set contains the previous one.
const CURVE_SIZES: &[usize] = &[25, 50, 100, 200];
/// Sample count for pure-passive precision estimates.
const PRECISION_SAMPLES: usize = 200;
/// How many grammars the hybrid warm start must beat the cold run on.
const HYBRID_MAJORITY: usize = 3;

const USAGE: &str =
    "passive [grammar ...] [--seed N] [--corpus-size N] [--budget N] [--check] [--json]";

/// One point of the pure-passive learning curve.
#[derive(Serialize)]
struct CurvePoint {
    corpus_size: usize,
    pairs: usize,
    tree_states: usize,
    merged_states: usize,
    demoted_occurrences: usize,
    train_accepted: usize,
    /// Training consistency: every corpus word accepted by the hypothesis.
    consistent: bool,
    recall: f64,
    precision: f64,
    precision_samples: usize,
}

/// Cold corpus-evidence refinement vs the hybrid warm start, on identical
/// counting oracles.
#[derive(Serialize)]
struct HybridComparison {
    corpus_size: usize,
    cold_queries: usize,
    warm_queries: usize,
    /// `cold_queries - warm_queries` (negative when warming cost queries).
    queries_saved: i64,
    cold_campaigns: usize,
    warm_campaigns: usize,
    seeded_access_words: usize,
    seeded_tests: usize,
    cold_recall: f64,
    cold_precision: f64,
    warm_recall: f64,
    warm_precision: f64,
}

/// The re-inference repair trajectory over a plain base run.
#[derive(Serialize)]
struct RepairSummary {
    /// Whether the repair corpus witnessed a gap and a repair ran.
    applied: bool,
    rejected_members: usize,
    ill_matched: usize,
    tokenizer_changed: bool,
    pairs_before: usize,
    pairs_after: usize,
    recall_before: f64,
    recall_after: f64,
}

/// Everything measured for one grammar.
#[derive(Serialize)]
struct GrammarPassiveReport {
    language: String,
    curve: Vec<CurvePoint>,
    hybrid: HybridComparison,
    repair: RepairSummary,
}

/// The tracked machine-readable summary (no wall-clock fields: reruns with
/// the same configuration are byte-identical).
#[derive(Serialize)]
struct PassiveBenchReport {
    seed: u64,
    budget: usize,
    corpus_sizes: Vec<usize>,
    grammars: Vec<GrammarPassiveReport>,
}

fn main() {
    let args = Args::parse_or_exit(USAGE, &["seed", "corpus-size", "budget"], &["check", "json"]);
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let corpus_size: usize =
        args.parsed("corpus-size", DEFAULT_CORPUS_SIZE).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));
    if corpus_size == 0 {
        fail("--corpus-size must be positive".into());
    }

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> =
        if args.positionals().is_empty() { all_names.clone() } else { args.positionals().to_vec() };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config =
        seed == DEFAULT_SEED && corpus_size == DEFAULT_CORPUS_SIZE && budget == DEFAULT_BUDGET;

    let mut sizes: Vec<usize> = CURVE_SIZES.iter().copied().filter(|&n| n < corpus_size).collect();
    sizes.push(corpus_size);
    let eval = default_eval_config();

    let mut grammars: Vec<GrammarPassiveReport> = Vec::new();
    for name in &selected {
        let Some(lang) = language_by_name(name) else {
            fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")));
        };
        let eval_corpus = recall_dataset(lang.as_ref(), &eval);

        // (1) Pure passive: learning curve over nested corpora.
        let mut curve = Vec::new();
        for &n in &sizes {
            let mut rng = StdRng::seed_from_u64(seed);
            let corpus = lang.generate_corpus(&mut rng, budget, n);
            let result = learn_passive(&corpus, &PassiveConfig::default());
            let recall_value = {
                let mut hits = 0usize;
                for w in &eval_corpus {
                    if result.accepts_raw(w) {
                        hits += 1;
                    }
                }
                hits as f64 / eval_corpus.len().max(1) as f64
            };
            let mut sample_rng = StdRng::seed_from_u64(seed ^ 0xA11CE);
            let sampler = GrammarSampler::new(&result.automaton.vpg);
            let samples: Vec<String> = sampler
                .sample_many(&mut sample_rng, budget, PRECISION_SAMPLES)
                .iter()
                .map(|s| vstar::tokenizer::strip_markers(s))
                .collect();
            let precision_value = if samples.is_empty() {
                0.0
            } else {
                samples.iter().filter(|s| lang.accepts(s)).count() as f64 / samples.len() as f64
            };
            let stats = result.automaton.stats;
            eprintln!(
                "passive {name}: corpus {n} → {} states ({} unmerged), recall {recall_value:.3}, \
                 precision {precision_value:.3}",
                stats.merged_states, stats.tree_states
            );
            curve.push(CurvePoint {
                corpus_size: corpus.len(),
                pairs: result.pairs.len(),
                tree_states: stats.tree_states,
                merged_states: stats.merged_states,
                demoted_occurrences: result.demoted_occurrences,
                train_accepted: stats.train_accepted,
                consistent: stats.train_accepted == corpus.len(),
                recall: recall_value,
                precision: precision_value,
                precision_samples: samples.len(),
            });
        }

        // (2) Hybrid: cold corpus-evidence refinement vs warm start, same
        // corpus, fresh counting oracles.
        let mut corpus_rng = StdRng::seed_from_u64(seed);
        let corpus = lang.generate_corpus(&mut corpus_rng, budget, corpus_size);
        eprintln!("hybrid {name}: cold corpus-evidence refinement …");
        let cold_counting = CountingOracle::new(|s: &str| lang.accepts(s));
        let cold_oracle = |s: &str| cold_counting.member(s);
        let cold_mat = Mat::new(&cold_oracle);
        let mut cold_evidence = CorpusEvidence::new(corpus.clone());
        let (cold_result, cold_log) = VStar::new(VStarConfig::default())
            .learn_refined(
                &cold_mat,
                &lang.alphabet(),
                &lang.seeds(),
                &mut cold_evidence,
                RefineConfig::default(),
            )
            .expect("cold corpus-evidence run succeeds");
        let cold_queries = cold_counting.unique_queries();

        eprintln!("hybrid {name}: warm start (preload + observation seed) …");
        let warm_counting = CountingOracle::new(|s: &str| lang.accepts(s));
        let warm_oracle = |s: &str| warm_counting.member(s);
        let warm_mat = Mat::new(&warm_oracle);
        let warm = learn_hybrid(
            &warm_mat,
            &lang.alphabet(),
            &lang.seeds(),
            &corpus,
            &HybridConfig::default(),
        )
        .expect("hybrid run succeeds");
        let warm_queries = warm_counting.unique_queries();

        let cold_accuracy = measure_vstar_accuracy(lang.as_ref(), &eval, &cold_result);
        let warm_accuracy = measure_vstar_accuracy(lang.as_ref(), &eval, &warm.result);
        eprintln!(
            "hybrid {name}: cold {cold_queries} vs warm {warm_queries} unique queries \
             (saved {})",
            cold_queries as i64 - warm_queries as i64
        );
        let hybrid = HybridComparison {
            corpus_size: corpus.len(),
            cold_queries,
            warm_queries,
            queries_saved: cold_queries as i64 - warm_queries as i64,
            cold_campaigns: cold_log.campaigns_run,
            warm_campaigns: warm.log.campaigns_run,
            seeded_access_words: warm.seeded_access_words,
            seeded_tests: warm.seeded_tests,
            cold_recall: cold_accuracy.recall,
            cold_precision: cold_accuracy.precision,
            warm_recall: warm_accuracy.recall,
            warm_precision: warm_accuracy.precision,
        };

        // (3) Re-inference repair over a plain base run.
        eprintln!("repair {name}: plain base run + corpus-driven re-inference …");
        let base_oracle = |s: &str| lang.accepts(s);
        let base_mat = Mat::new(&base_oracle);
        let base = VStar::new(eval.vstar.clone())
            .learn(&base_mat, &lang.alphabet(), &lang.seeds())
            .expect("plain base run succeeds");
        let run = repair_learned_language(lang.as_ref(), &base, &eval);
        let repair = match &run.repaired {
            Some(r) => RepairSummary {
                applied: true,
                rejected_members: r.report.rejected_members,
                ill_matched: r.report.ill_matched,
                tokenizer_changed: r.report.tokenizer_changed,
                pairs_before: r.report.pairs_before,
                pairs_after: r.report.pairs_after,
                recall_before: run.recall_before,
                recall_after: run.recall_after,
            },
            None => RepairSummary {
                applied: false,
                rejected_members: 0,
                ill_matched: 0,
                tokenizer_changed: false,
                pairs_before: base.tokenizer.pair_count(),
                pairs_after: base.tokenizer.pair_count(),
                recall_before: run.recall_before,
                recall_after: run.recall_after,
            },
        };
        eprintln!(
            "repair {name}: recall {:.3} → {:.3} ({})",
            repair.recall_before,
            repair.recall_after,
            if repair.applied { "repair applied" } else { "nothing to repair" }
        );

        grammars.push(GrammarPassiveReport { language: name.clone(), curve, hybrid, repair });
    }

    println!("Passive & hybrid corpus-driven learning (seed {seed}, corpus {corpus_size})");
    println!();
    println!("grammar\tpassR\tpassP\tcold\twarm\tsaved\trepR0\trepR1");
    for g in &grammars {
        let last = g.curve.last().expect("at least one curve point");
        println!(
            "{}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{:.3}\t{:.3}",
            g.language,
            last.recall,
            last.precision,
            g.hybrid.cold_queries,
            g.hybrid.warm_queries,
            g.hybrid.queries_saved,
            g.repair.recall_before,
            g.repair.recall_after,
        );
    }

    let bench = PassiveBenchReport { seed, budget, corpus_sizes: sizes.clone(), grammars };
    let json = serde_json::to_string_pretty(&bench).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        let mut failed = false;
        for g in &bench.grammars {
            // (a) Training consistency, with a vacuity guard on the corpora.
            for point in &g.curve {
                if point.corpus_size == 0 {
                    failed = true;
                    eprintln!(
                        "FAIL {}: empty training corpus — the gate probes nothing",
                        g.language
                    );
                }
                if !point.consistent {
                    failed = true;
                    eprintln!(
                        "FAIL {}: passive hypothesis rejects {} of its {} training samples \
                         (corpus size {})",
                        g.language,
                        point.corpus_size - point.train_accepted,
                        point.corpus_size,
                        point.corpus_size,
                    );
                }
            }
            // The curve must actually probe generalisation, not just replay
            // the training set.
            if g.curve.iter().all(|p| p.precision_samples == 0) {
                failed = true;
                eprintln!(
                    "FAIL {}: passive hypotheses produced no precision samples — the curve \
                     is vacuous",
                    g.language
                );
            }
            // (c) The repair gate: the known JSON recall gap must be closed.
            if g.language == "json" {
                if tracked_config && !g.repair.applied {
                    failed = true;
                    eprintln!(
                        "FAIL json: the repair corpus no longer witnesses the known recall \
                         gap — the re-inference gate went blind"
                    );
                }
                if g.repair.recall_after < 1.0 {
                    failed = true;
                    eprintln!(
                        "FAIL json: post-repair evaluation recall is {:.3}, expected 1.0",
                        g.repair.recall_after
                    );
                }
            }
        }
        // (b) The hybrid warm start must save queries on a majority of the
        // grammars (only meaningful over the full set).
        if full_set {
            let winners: Vec<&str> = bench
                .grammars
                .iter()
                .filter(|g| g.hybrid.warm_queries < g.hybrid.cold_queries)
                .map(|g| g.language.as_str())
                .collect();
            if winners.len() < HYBRID_MAJORITY {
                failed = true;
                eprintln!(
                    "FAIL hybrid: warm start saved queries on only {}/{} grammars ({:?}); \
                     need at least {HYBRID_MAJORITY}",
                    winners.len(),
                    bench.grammars.len(),
                    winners
                );
            }
        } else {
            println!("partial grammar selection: hybrid majority gate skipped");
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: passive hypotheses consistent, hybrid saves queries, repair closes the json gap");
    }
}
