//! Multi-grammar serving daemon under concurrent load, with exact
//! observability attribution.
//!
//! For each selected Table-1 language the binary (1) learns the language
//! through a [`vstar_oracles::CountingOracle`], (2) compiles the learned
//! grammar and publishes it into a [`vstar_serve::GrammarRegistry`], then
//! (3) starts a real [`vstar_serve::Daemon`] on an ephemeral port and drives
//! it with `--clients` concurrent client threads. Every client streams the
//! deterministic corpus of every grammar through `B`/`D`/`E` sessions (chunk
//! boundaries are client-seeded and may split UTF-8 codepoints), issues the
//! matching one-shot `Q` queries on the raw strings, and after a barrier the
//! first client hot-reloads the first grammar (`P`) before a second streaming
//! wave proves the swap: same artifact bytes, same fingerprint, version 2.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin daemon -- \
//!     [grammar ...] [--seed N] [--clients N] [--samples N] [--budget N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars, `--seed 42`, `--clients 4`, `--samples 30`,
//! `--budget 24`. A full-set run at the default configuration rewrites the
//! tracked `BENCH_daemon.json`. Corpus shapes, verdicts, request/byte counts
//! and artifact fingerprints are deterministic for a fixed seed; request
//! latency quantiles are wall-clock and go to **stderr** only (the
//! `BENCH_trace.json` convention).
//!
//! `--check` turns the run into the CI observability gate: the process exits
//! nonzero when any daemon verdict disagrees with local recognition, when the
//! per-connection metrics rows do not sum exactly to the per-grammar rows and
//! the registry grand totals, when the membership oracles saw any query after
//! learning finished (the serve path must be oracle-free), when the access
//! log does not hold one record per request, or when the `/healthz`,
//! `/grammars` and `/metrics` admin endpoints disagree with ground truth.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use vstar_bench::cli::Args;
use vstar_bench::learn_learned_language;
use vstar_oracles::{language_by_name, table1_languages, CountedLanguage, CountingOracle};
use vstar_parser::{CompileLearned, GrammarSampler};
use vstar_serve::{AccessLog, Client, Daemon, GrammarRegistry};
use vstar_telemetry::{Counts, MetricsRegistry};

const JSON_REPORT_PATH: &str = "BENCH_daemon.json";

const DEFAULT_SEED: u64 = 42;
const DEFAULT_CLIENTS: usize = 4;
const DEFAULT_SAMPLES: usize = 30;
const DEFAULT_BUDGET: usize = 24;

const USAGE: &str =
    "daemon [grammar ...] [--seed N] [--clients N] [--samples N] [--budget N] [--check] [--json]";

/// One grammar's serving plan: the published artifact plus the deterministic
/// corpus and its locally precomputed expected verdicts.
struct Plan {
    name: String,
    /// Converted corpus words for the streaming `B`/`D`/`E` path.
    words: Vec<String>,
    /// Expected verdict of each streamed word (`recognize_word`).
    word_expect: Vec<bool>,
    /// Raw strings for the one-shot `Q` path.
    raws: Vec<String>,
    /// Expected verdict of each raw query (`recognize`).
    raw_expect: Vec<bool>,
    /// Canonical artifact document (used again for the hot reload).
    artifact_json: String,
    artifact_hash: u64,
    stats: vstar_parser::GrammarStats,
    learn_unique_queries: usize,
}

/// One grammar's deterministic row of `BENCH_daemon.json`.
#[derive(Serialize)]
struct DaemonRow {
    grammar: String,
    /// Words in the streaming corpus (members + mutants).
    corpus_words: usize,
    /// Expected accepts over one streamed pass of the corpus.
    accepted_stream: usize,
    /// Expected accepts over one pass of the raw one-shot queries.
    accepted_query: usize,
    /// Bytes one client streams through `D` frames in one corpus pass.
    stream_bytes: u64,
    /// Bytes one client sends as `Q` payload input in one corpus pass.
    query_bytes: u64,
    /// Unique membership queries spent learning the grammar.
    learn_unique_queries: usize,
    /// Interned item-set states of the compiled derivative automaton.
    automaton_states: u64,
    /// Size of the canonical artifact document in bytes.
    artifact_bytes: usize,
    /// FNV-64 fingerprint of the canonical artifact document.
    artifact_hash: String,
    /// Registry version after the run (2 for the hot-reloaded grammar).
    final_version: u64,
}

/// The tracked machine-readable report. No wall-clock fields: reruns with
/// the same configuration are byte-identical.
#[derive(Serialize)]
struct DaemonBenchReport {
    seed: u64,
    clients: usize,
    samples: usize,
    budget: usize,
    rows: Vec<DaemonRow>,
    /// The hot-reloaded grammar (first of the selection).
    reload_grammar: String,
    /// Whether the reload installed a byte-identical artifact (it republishes
    /// the same canonical document, so this must be `true`).
    reload_hash_stable: bool,
    /// Registry swap generation after the run.
    final_generation: u64,
    /// Metrics grand totals across every connection and grammar.
    totals: Counts,
    /// `(grammar, connection)` metrics rows observed.
    connection_rows: usize,
    /// `"access"` records in the JSONL access log (one per request).
    access_records: usize,
    /// `"reload"` records in the JSONL access log.
    reload_records: usize,
}

/// Streams `word` into the open session as client-seeded chunks (1–7 bytes,
/// freely splitting UTF-8 sequences) and returns the daemon's verdict.
fn stream_word(client: &mut Client, word: &str, rng: &mut StdRng) -> bool {
    let bytes = word.as_bytes();
    let mut at = 0;
    while at < bytes.len() {
        let take = rng.gen_range(1..=7).min(bytes.len() - at);
        client.data(&bytes[at..at + take]).expect("data frame");
        at += take;
    }
    client.end().expect("end frame")
}

fn main() {
    let args =
        Args::parse_or_exit(USAGE, &["seed", "clients", "samples", "budget"], &["check", "json"]);
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let clients: usize = args.parsed("clients", DEFAULT_CLIENTS).unwrap_or_else(|e| fail(e));
    let samples: usize = args.parsed("samples", DEFAULT_SAMPLES).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));
    if clients == 0 {
        fail("--clients must be at least 1".to_string());
    }

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> =
        if args.positionals().is_empty() { all_names.clone() } else { args.positionals().to_vec() };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config = seed == DEFAULT_SEED
        && clients == DEFAULT_CLIENTS
        && samples == DEFAULT_SAMPLES
        && budget == DEFAULT_BUDGET;

    // Learn every grammar through its own counting oracle. The oracles stay
    // alive across the serving run: the gate re-reads them afterwards to
    // prove the daemon never touched a membership oracle.
    let langs: Vec<Box<dyn vstar_oracles::Language>> = selected
        .iter()
        .map(|name| {
            language_by_name(name).unwrap_or_else(|| {
                fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")))
            })
        })
        .collect();
    let oracles: Vec<CountingOracle<'_>> =
        langs.iter().map(|l| CountingOracle::new(|s: &str| l.accepts(s))).collect();

    let registry = Arc::new(GrammarRegistry::new());
    let mut plans: Vec<Plan> = Vec::new();
    for ((name, lang), oracle) in selected.iter().zip(&langs).zip(&oracles) {
        eprintln!("learning {name} …");
        let counted = CountedLanguage::new(lang.as_ref(), oracle);
        let learned = learn_learned_language(&counted);
        let learn_unique_queries = oracle.unique_queries();
        let compiled = learned.compile().expect("learned grammars compile");

        // Deterministic corpus: grammar samples (members by construction)
        // plus single-character mutants (mostly rejects).
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = GrammarSampler::new(learned.vpg());
        let mut words = sampler.sample_many(&mut rng, budget, samples);
        let terminals: Vec<char> = learned.vpg().terminals().into_iter().collect();
        for k in 0..words.len() {
            let mut mutant: Vec<char> = words[k].chars().collect();
            if mutant.is_empty() {
                continue;
            }
            let i = rng.gen_range(0..mutant.len());
            mutant[i] = terminals[rng.gen_range(0..terminals.len())];
            words.push(mutant.into_iter().collect());
        }
        let word_expect: Vec<bool> = words.iter().map(|w| compiled.recognize_word(w)).collect();
        let raws: Vec<String> = words.iter().map(|w| learned.strip(w)).collect();
        let raw_expect: Vec<bool> = raws.iter().map(|r| compiled.recognize(r)).collect();

        let artifact_json = compiled.to_json();
        let artifact_hash = compiled.artifact_fingerprint();
        let stats = compiled.stats();
        registry.publish(name, compiled);
        plans.push(Plan {
            name: name.clone(),
            words,
            word_expect,
            raws,
            raw_expect,
            artifact_json,
            artifact_hash,
            stats,
            learn_unique_queries,
        });
    }
    let queries_after_learning: Vec<usize> = oracles.iter().map(|o| o.unique_queries()).collect();

    // The daemon itself, on an ephemeral port with an in-memory access log.
    let metrics = Arc::new(MetricsRegistry::new());
    let (access_log, _jsonl) = AccessLog::in_memory();
    let mut daemon = Daemon::start(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Arc::clone(&metrics),
        access_log.clone(),
    )
    .expect("daemon binds an ephemeral port");
    let addr = daemon.addr();
    eprintln!("daemon on {addr}: {} grammars, {clients} clients", plans.len());

    // Concurrent load: every client streams + queries every grammar's
    // corpus (wave 1), client 0 hot-reloads the first grammar behind a
    // barrier, and everyone re-streams that grammar on v2 (wave 2).
    let barrier = Barrier::new(clients);
    let mismatches = AtomicUsize::new(0);
    let plans_ref = &plans;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let barrier = &barrier;
            let mismatches = &mismatches;
            handles.push(scope.spawn(move || {
                let mut client =
                    Client::connect(addr, &format!("client-{c}")).expect("client connects");
                for (gi, plan) in plans_ref.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (c as u64).wrapping_mul(0x9e37_79b9) ^ ((gi as u64) << 32),
                    );
                    client.begin(&plan.name).expect("begin");
                    for (w, &expect) in plan.words.iter().zip(&plan.word_expect) {
                        if stream_word(&mut client, w, &mut rng) != expect {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            eprintln!("MISMATCH client-{c} {} stream {w:?}", plan.name);
                        }
                    }
                    for (r, &expect) in plan.raws.iter().zip(&plan.raw_expect) {
                        if client.recognize(&plan.name, r).expect("query") != expect {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            eprintln!("MISMATCH client-{c} {} query {r:?}", plan.name);
                        }
                    }
                }
                // Hot reload: republish the first grammar's canonical
                // artifact document. Same bytes, same fingerprint, v2.
                barrier.wait();
                let first = &plans_ref[0];
                if c == 0 {
                    let reply = client.publish(&first.name, &first.artifact_json).expect("publish");
                    assert!(reply.starts_with("ok v=2 "), "unexpected publish reply: {reply}");
                }
                barrier.wait();
                let reply = client.begin(&first.name).expect("begin v2");
                if !reply.starts_with("ok v=2 ") {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                    eprintln!("MISMATCH client-{c}: wave-2 begin got {reply:?}");
                }
                let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 17));
                for (w, &expect) in first.words.iter().zip(&first.word_expect) {
                    if stream_word(&mut client, w, &mut rng) != expect {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!("MISMATCH client-{c} {} wave-2 stream {w:?}", first.name);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let mismatches = mismatches.into_inner();

    // Admin plane, read over the same framed protocol.
    let mut admin = Client::connect(addr, "admin-probe").expect("admin connects");
    let healthz = admin.admin("/healthz").expect("/healthz");
    let grammars_json = admin.admin("/grammars").expect("/grammars");
    let metrics_text = admin.admin("/metrics").expect("/metrics");
    drop(admin);

    let snapshot = metrics.snapshot();
    let records = access_log.records();
    let access_records = records.iter().filter(|r| r.kind == "access").count();
    let reload_records = records.iter().filter(|r| r.kind == "reload").count();
    let audit = registry.audit();

    // Expected grand totals, computed locally: wave 1 is (stream + query) per
    // grammar per client, wave 2 re-streams the first grammar per client. The
    // admin probe issued no recognition requests.
    let mut expect_totals = Counts::default();
    for (gi, plan) in plans.iter().enumerate() {
        let stream_bytes: u64 = plan.words.iter().map(|w| w.len() as u64).sum();
        let query_bytes: u64 = plan.raws.iter().map(|r| r.len() as u64).sum();
        let passes: u64 = if gi == 0 { 2 } else { 1 };
        let c = clients as u64;
        expect_totals.requests += c * (passes * plan.words.len() as u64 + plan.raws.len() as u64);
        expect_totals.bytes += c * (passes * stream_bytes + query_bytes);
        let stream_accepts = plan.word_expect.iter().filter(|&&v| v).count() as u64;
        let query_accepts = plan.raw_expect.iter().filter(|&&v| v).count() as u64;
        expect_totals.accepted += c * (passes * stream_accepts + query_accepts);
    }
    expect_totals.rejected = expect_totals.requests - expect_totals.accepted;

    let rows: Vec<DaemonRow> = plans
        .iter()
        .map(|p| DaemonRow {
            grammar: p.name.clone(),
            corpus_words: p.words.len(),
            accepted_stream: p.word_expect.iter().filter(|&&v| v).count(),
            accepted_query: p.raw_expect.iter().filter(|&&v| v).count(),
            stream_bytes: p.words.iter().map(|w| w.len() as u64).sum(),
            query_bytes: p.raws.iter().map(|r| r.len() as u64).sum(),
            learn_unique_queries: p.learn_unique_queries,
            automaton_states: p.stats.automaton_states,
            artifact_bytes: p.artifact_json.len(),
            artifact_hash: format!("{:016x}", p.artifact_hash),
            final_version: registry.get(&p.name).map_or(0, |e| e.version),
        })
        .collect();

    println!("Serving daemon under concurrent load (seed {seed}, {clients} clients)");
    println!();
    println!("grammar\twords\tstream-accepts\tquery-accepts\tstates\tartifact-bytes\tversion");
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\tv{}",
            r.grammar,
            r.corpus_words,
            r.accepted_stream,
            r.accepted_query,
            r.automaton_states,
            r.artifact_bytes,
            r.final_version,
        );
    }
    println!(
        "totals: {} requests, {} bytes, {} accepted, {} rejected, {} errors across {} \
         connection rows",
        snapshot.totals.requests,
        snapshot.totals.bytes,
        snapshot.totals.accepted,
        snapshot.totals.rejected,
        snapshot.totals.errors,
        snapshot.connections.len(),
    );

    // Latency quantiles are wall-clock: stderr only, never in the report.
    eprintln!();
    eprintln!("request latency quantiles in µs (stderr only, excluded from determinism):");
    for row in metrics.latencies() {
        let q = row.latency_us;
        eprintln!(
            "  {:<10} {:<12} p50={:<6} p90={:<6} p99={:<6} max={:<6} n={}",
            row.grammar, row.connection, q.p50, q.p90, q.p99, q.max, q.count,
        );
    }

    let report = DaemonBenchReport {
        seed,
        clients,
        samples,
        budget,
        rows,
        reload_grammar: plans[0].name.clone(),
        reload_hash_stable: audit.last().is_some_and(|a| a.old_hash == Some(a.new_hash)),
        final_generation: registry.generation(),
        totals: snapshot.totals,
        connection_rows: snapshot.connections.len(),
        access_records,
        reload_records,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        let mut failed = false;
        let mut check = |ok: bool, what: &str| {
            if !ok {
                failed = true;
                eprintln!("FAIL: {what}");
            }
        };
        check(mismatches == 0, "daemon verdicts disagreed with local recognition");

        // Exact attribution: per-connection rows sum to per-grammar rows sum
        // to the grand totals, and all of it matches the local expectation.
        let mut by_connection = Counts::default();
        for row in &snapshot.connections {
            by_connection.absorb(&row.counts);
        }
        let mut by_grammar = Counts::default();
        for row in &snapshot.grammars {
            by_grammar.absorb(&row.counts);
        }
        check(by_connection == snapshot.totals, "connection rows do not sum to grand totals");
        check(by_grammar == snapshot.totals, "grammar rows do not sum to grand totals");
        check(
            snapshot.totals == expect_totals,
            &format!("grand totals {:?} != locally expected {:?}", snapshot.totals, expect_totals),
        );
        check(snapshot.totals.errors == 0, "the daemon recorded protocol errors");
        check(
            snapshot.connections.len() == clients * plans.len(),
            "unexpected (grammar, connection) row count",
        );

        // The serve path is oracle-free: not one membership query since
        // learning finished.
        for ((name, oracle), &after_learn) in
            selected.iter().zip(&oracles).zip(&queries_after_learning)
        {
            check(
                oracle.unique_queries() == after_learn && oracle.total_queries() >= after_learn,
                &format!("{name}: the serving run touched the membership oracle"),
            );
        }

        // One access record per request; the reload is mirrored and audited.
        check(
            access_records as u64 == snapshot.totals.requests,
            "access log does not hold one record per request",
        );
        check(reload_records == 1, "expected exactly one reload record");
        check(
            audit.len() == plans.len() + 1
                && audit.windows(2).all(|w| w[0].generation < w[1].generation),
            "audit trail is not one event per publish with increasing generations",
        );
        check(report.reload_hash_stable, "republished artifact changed its fingerprint");

        // Admin endpoints agree with ground truth.
        check(
            healthz == format!("ok generation={} grammars={}", registry.generation(), plans.len()),
            &format!("/healthz said {healthz:?}"),
        );
        let cards = serde_json::from_str(&grammars_json)
            .ok()
            .and_then(|d: serde::Value| d.as_array().map(|a| a.len()))
            .unwrap_or(0);
        check(cards == plans.len(), "/grammars card count is wrong");
        for p in &plans {
            check(
                grammars_json.contains(&format!("{:016x}", p.artifact_hash)),
                &format!("/grammars is missing {}'s artifact hash", p.name),
            );
            let grammar_requests: u64 = snapshot
                .grammars
                .iter()
                .filter(|g| g.grammar == p.name)
                .map(|g| g.counts.requests)
                .sum();
            check(
                metrics_text.contains(&format!(
                    "vstar_request_size_bytes_count{{grammar=\"{}\"}} {grammar_requests}",
                    p.name
                )),
                &format!("/metrics histogram count disagrees for {}", p.name),
            );
        }

        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: verdicts agree, per-connection counters sum exactly to the registry \
             grand totals, and the serve path stayed oracle-free"
        );
    }

    daemon.shutdown();
}
