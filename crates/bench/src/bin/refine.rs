//! Counterexample-guided refinement across the Table-1 languages.
//!
//! For each selected grammar the binary (1) learns the language with the
//! plain V-Star pipeline and fuzzes the result (the *pre* campaign — the
//! precision/recall gaps PR 3 exposed), (2) re-learns with the evidence-driven
//! equivalence oracle (`vstar::refine` + `vstar_fuzz::CampaignEvidence`),
//! which iterates learn → fuzz → refine until the in-loop campaigns run dry,
//! and (3) fuzzes the refined grammar at the same gate configuration (the
//! *post* campaign). The machine-readable summary tracks the shrinkage.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin refine -- \
//!     [grammar ...] [--seed N] [--iterations N] [--refine-iterations N] \
//!     [--max-campaigns N] [--budget N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars, `--seed 42`, `--iterations 150` (the pre/post
//! gate campaigns, matching CI's fuzz smoke), `--refine-iterations 300`
//! (in-loop campaigns; at least `REFINE_MIN_ITERATIONS`), `--max-campaigns
//! 40`, `--budget 24`. The run is fully deterministic; `BENCH_refine.json` is
//! only (re)written by a full-grammar-set run at the default configuration.
//!
//! `--check` turns the run into the CI refinement gate: the process exits
//! nonzero when any post-refinement campaign still diverges, or when — at the
//! tracked configuration — the `while`/`json` pre campaigns fail to exhibit
//! the known gaps the loop is supposed to repair (which would mean the gate
//! went blind, not that the grammars got better).

use serde::Serialize;

use vstar::refine::{RefineConfig, RefineLog};
use vstar_bench::cli::Args;
use vstar_bench::{
    default_eval_config, learn_learned_language, learn_refined_language, repair_learned_language,
    REFINE_MIN_ITERATIONS,
};
use vstar_eval::DifferentialCounts;
use vstar_fuzz::{CampaignReport, FuzzCampaign, FuzzConfig};
use vstar_oracles::{language_by_name, table1_languages, CountedLanguage, CountingOracle};

/// File the machine-readable report is written to (current directory).
const JSON_REPORT_PATH: &str = "BENCH_refine.json";

const DEFAULT_SEED: u64 = 42;
/// Pre/post gate-campaign iterations (CI's fuzz smoke budget).
const DEFAULT_ITERATIONS: usize = 150;
/// In-loop campaign iterations (the refinement evidence budget).
const DEFAULT_REFINE_ITERATIONS: usize = REFINE_MIN_ITERATIONS;
/// Evidence-round budget of one refinement loop.
const DEFAULT_MAX_CAMPAIGNS: usize = 40;
/// Sample budget of every campaign involved.
const DEFAULT_BUDGET: usize = 24;

/// Languages whose pre-refinement campaigns are required (at the tracked
/// configuration) to exhibit the known gaps — the `--check` proof that the
/// divergence classes *shrank to empty* rather than never being visible.
const KNOWN_GAPPED: &[&str] = &["while", "json"];

const USAGE: &str = "refine [grammar ...] [--seed N] [--iterations N] [--refine-iterations N] \
                     [--max-campaigns N] [--budget N] [--check] [--json]";

/// One campaign boiled down to the fields the refinement trajectory needs.
#[derive(Serialize)]
struct CampaignSummary {
    counts: DifferentialCounts,
    precision_estimate: f64,
    recall_estimate: f64,
    distinct_divergences: usize,
    divergence_classes: Vec<String>,
    witnesses: Vec<String>,
}

impl CampaignSummary {
    fn of(report: &CampaignReport) -> Self {
        let mut classes: Vec<String> = report.divergences.iter().map(|d| d.class.clone()).collect();
        classes.sort();
        classes.dedup();
        CampaignSummary {
            counts: report.counts,
            precision_estimate: report.precision_estimate,
            recall_estimate: report.recall_estimate,
            distinct_divergences: report.distinct_divergences(),
            divergence_classes: classes,
            witnesses: report.divergences.iter().map(|d| d.minimized.clone()).collect(),
        }
    }
}

/// The corpus-driven re-inference repair pass over the refined grammar
/// (`vstar_passive::repair_with_corpus` via the shared bench helper).
#[derive(Serialize)]
struct RepairSummary {
    /// Whether the repair corpus witnessed a gap and a repair ran.
    applied: bool,
    rejected_members: usize,
    ill_matched: usize,
    tokenizer_changed: bool,
    /// Evaluation recall of the refined grammar, before the repair.
    recall_refined: f64,
    /// Evaluation recall after the repair (same value when nothing ran).
    recall_repaired: f64,
}

/// Pre/post refinement trajectory of one grammar.
#[derive(Serialize)]
struct GrammarRefineReport {
    language: String,
    pre: CampaignSummary,
    refine: RefineLog,
    post: CampaignSummary,
    repair: RepairSummary,
    states_before: usize,
    states_after: usize,
    rules_before: usize,
    rules_after: usize,
}

/// The tracked machine-readable summary (no wall-clock fields: reruns with
/// the same configuration are byte-identical).
#[derive(Serialize)]
struct RefineBenchReport {
    seed: u64,
    iterations: usize,
    refine_iterations: usize,
    max_campaigns: usize,
    grammars: Vec<GrammarRefineReport>,
}

fn main() {
    let args = Args::parse_or_exit(
        USAGE,
        &["seed", "iterations", "refine-iterations", "max-campaigns", "budget"],
        &["check", "json"],
    );
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let iterations: usize =
        args.parsed("iterations", DEFAULT_ITERATIONS).unwrap_or_else(|e| fail(e));
    let refine_iterations: usize =
        args.parsed("refine-iterations", DEFAULT_REFINE_ITERATIONS).unwrap_or_else(|e| fail(e));
    let max_campaigns: usize =
        args.parsed("max-campaigns", DEFAULT_MAX_CAMPAIGNS).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> =
        if args.positionals().is_empty() { all_names.clone() } else { args.positionals().to_vec() };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config = seed == DEFAULT_SEED
        && iterations == DEFAULT_ITERATIONS
        && refine_iterations == DEFAULT_REFINE_ITERATIONS
        && max_campaigns == DEFAULT_MAX_CAMPAIGNS
        && budget == DEFAULT_BUDGET;

    // The in-loop campaigns must dominate the gate campaigns: a fixed point at
    // `refine_iterations ≥ iterations` (same seed, same budget) certifies the
    // gate campaign clean by prefix determinism.
    let gate_config =
        FuzzConfig { seed, iterations, sample_budget: budget, ..FuzzConfig::default() };
    let loop_config = FuzzConfig {
        seed,
        iterations: refine_iterations.max(iterations),
        sample_budget: budget,
        ..FuzzConfig::default()
    };
    let refine_config = RefineConfig { max_campaigns, ..RefineConfig::default() };

    let mut grammars: Vec<GrammarRefineReport> = Vec::new();
    for name in &selected {
        let Some(lang) = language_by_name(name) else {
            fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")));
        };
        // Route every membership query of the run — learning, in-loop
        // campaigns, gate campaigns — through one shared CountingOracle under
        // an installed telemetry collector, so the per-round query/cache
        // snapshots embedded in the refinement log are live (they read the
        // telemetry `query.oracle.*` counters). Caching changes no answers,
        // so the campaign trajectories are unaffected.
        let telemetry = vstar_telemetry::install();
        let counting = CountingOracle::new(|s: &str| lang.accepts(s));
        let counted = CountedLanguage::new(lang.as_ref(), &counting);
        eprintln!("learning {name} (plain pipeline) …");
        let base = learn_learned_language(&counted);
        let pre = FuzzCampaign::new(&base, &counted, gate_config.clone()).run();
        eprintln!(
            "refining {name}: pre campaign found {} divergent case(s) in {} iterations",
            pre.counts.divergences(),
            pre.iterations
        );
        let refined = learn_refined_language(&counted, &loop_config, &refine_config);
        let post = FuzzCampaign::new(&refined.learned, &counted, gate_config.clone()).run();
        drop(telemetry);
        // Corpus-driven re-inference over the refined grammar: fuzz evidence
        // mutates outward from the seeds, a sampled corpus probes the oracle's
        // own distribution — each catches gaps the other misses. Runs against
        // the raw oracle so the telemetry snapshots above stay comparable.
        eprintln!("repairing {name}: diffing against the repair corpus …");
        let run = repair_learned_language(lang.as_ref(), &refined.result, &default_eval_config());
        let repair = match &run.repaired {
            Some(r) => RepairSummary {
                applied: true,
                rejected_members: r.report.rejected_members,
                ill_matched: r.report.ill_matched,
                tokenizer_changed: r.report.tokenizer_changed,
                recall_refined: run.recall_before,
                recall_repaired: run.recall_after,
            },
            None => RepairSummary {
                applied: false,
                rejected_members: 0,
                ill_matched: 0,
                tokenizer_changed: false,
                recall_refined: run.recall_before,
                recall_repaired: run.recall_after,
            },
        };
        eprintln!(
            "repaired {name}: recall {:.3} → {:.3} ({})",
            repair.recall_refined,
            repair.recall_repaired,
            if repair.applied { "repair applied" } else { "nothing to repair" }
        );
        eprintln!(
            "refined {name}: {} campaign(s), {} counterexample(s) replayed, post divergences {}",
            refined.log.campaigns_run,
            refined.log.counterexamples_replayed(),
            post.counts.divergences()
        );
        grammars.push(GrammarRefineReport {
            language: name.clone(),
            pre: CampaignSummary::of(&pre),
            refine: refined.log,
            post: CampaignSummary::of(&post),
            repair,
            states_before: base.vpa().state_count(),
            states_after: refined.learned.vpa().state_count(),
            rules_before: base.vpg().rule_count(),
            rules_after: refined.learned.vpg().rule_count(),
        });
    }

    println!("Counterexample-guided refinement of learned grammars (seed {seed})");
    println!();
    println!("grammar\tpreFP\tpreFN\tcampaigns\tCEs\tpostFP\tpostFN\tstates\trules\trecall");
    for g in &grammars {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}→{}\t{}→{}\t{:.3}→{:.3}",
            g.language,
            g.pre.counts.false_positive,
            g.pre.counts.false_negative,
            g.refine.campaigns_run,
            g.refine.counterexamples_replayed(),
            g.post.counts.false_positive,
            g.post.counts.false_negative,
            g.states_before,
            g.states_after,
            g.rules_before,
            g.rules_after,
            g.repair.recall_refined,
            g.repair.recall_repaired,
        );
    }

    let bench = RefineBenchReport {
        seed,
        iterations,
        refine_iterations: loop_config.iterations,
        max_campaigns,
        grammars,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        let mut failed = false;
        for g in &bench.grammars {
            if g.post.counts.divergences() > 0 {
                failed = true;
                eprintln!(
                    "FAIL {}: post-refinement campaign still diverges ({} FP, {} FN); \
                     witnesses: {:?}",
                    g.language,
                    g.post.counts.false_positive,
                    g.post.counts.false_negative,
                    g.post.witnesses,
                );
            }
            // "Divergence-free" must mean "probed and agreed", not "generated
            // nothing worth classifying" — same vacuity guards as fuzz --check.
            if g.post.counts.agree_accept == 0 {
                failed = true;
                eprintln!(
                    "FAIL {}: post-refinement campaign never confirmed a single member",
                    g.language
                );
            }
            if g.post.counts.total() < iterations / 4 {
                failed = true;
                eprintln!(
                    "FAIL {}: post-refinement generation starved — only {} classifiable case(s) \
                     in {} iterations",
                    g.language,
                    g.post.counts.total(),
                    iterations,
                );
            }
            if g.refine.budget_exhausted {
                eprintln!(
                    "note {}: refinement stopped on the campaign budget, not a fixed point",
                    g.language
                );
            }
            // The recall gate: the corpus-driven repair must never regress,
            // and the known JSON evaluation-recall gap must end closed.
            if g.repair.recall_repaired < g.repair.recall_refined {
                failed = true;
                eprintln!(
                    "FAIL {}: repair regressed evaluation recall {:.3} → {:.3}",
                    g.language, g.repair.recall_refined, g.repair.recall_repaired,
                );
            }
            if g.language == "json" && g.repair.recall_repaired < 1.0 {
                failed = true;
                eprintln!(
                    "FAIL json: evaluation recall after corpus-driven repair is {:.3}, \
                     expected 1.0",
                    g.repair.recall_repaired,
                );
            }
            if tracked_config
                && KNOWN_GAPPED.contains(&g.language.as_str())
                && g.pre.counts.divergences() == 0
            {
                failed = true;
                eprintln!(
                    "FAIL {}: pre-refinement campaign found no divergence — the gate can no \
                     longer demonstrate the repair of the known gaps",
                    g.language
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: post-refinement campaigns divergence-free, repair recall gate holds"
        );
    }
}
