//! Full-stack instrumented trace: where does the query budget go?
//!
//! For each selected Table-1 language the binary installs a
//! [`vstar_telemetry`] collector and runs the whole stack under it — learn
//! (with counterexample-guided refinement in the loop), a post-refinement
//! differential fuzz campaign, and an oracle-free serving pass over the
//! compiled artifact. Every membership answer of the black-box program is
//! served by one shared [`vstar_oracles::CountingOracle`] (routed into the
//! learner's MAT and into the fuzz campaigns via
//! [`vstar_oracles::CountedLanguage`]), so the oracle's unique-query count is
//! the ground-truth grand total — and the telemetry span tree attributes
//! every one of those queries to the phase that issued it. The headline
//! output is the per-phase query-budget profile: the paper's "#Queries"
//! column (≈550K for json), broken down by where the queries actually went.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vstar_bench --bin trace -- \
//!     [grammar ...] [--lang NAME] [--seed N] [--iterations N] [--refine-iterations N] \
//!     [--max-campaigns N] [--budget N] [--serve-samples N] [--check] [--json]
//! ```
//!
//! Defaults: all five grammars (`--lang NAME` traces exactly one; it cannot
//! be combined with positional grammar names), `--seed 42`, `--iterations 150` (the gate
//! campaign), `--refine-iterations 300`, `--max-campaigns 40`, `--budget 24`,
//! `--serve-samples 120`. A full-set run at the default configuration
//! rewrites the tracked `BENCH_trace.json` (deterministic facts: counters,
//! span attribution, histograms) and `BENCH_trace.jsonl` (the deterministic
//! event journals). Wall-clock phase timings are printed to **stderr** only —
//! stdout and both files are byte-identical across same-seed runs, the
//! repository's determinism convention.
//!
//! `--check` turns the run into the CI observability gate: the process exits
//! nonzero when the per-phase attribution does not sum to the oracle's grand
//! total, when the serve phase issued any membership query (serving is
//! oracle-free by construction), or when a phase that must have run recorded
//! nothing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use vstar::refine::RefineConfig;
use vstar_bench::cli::Args;
use vstar_bench::REFINE_MIN_ITERATIONS;
use vstar_fuzz::{CampaignEvidence, FuzzCampaign, FuzzConfig};
use vstar_oracles::{language_by_name, table1_languages, CountedLanguage, CountingOracle};
use vstar_parser::{CompileLearned, GrammarSampler};
use vstar_telemetry::{DeterministicFacts, SpanFacts};

const JSON_REPORT_PATH: &str = "BENCH_trace.json";
const JOURNAL_REPORT_PATH: &str = "BENCH_trace.jsonl";

const DEFAULT_SEED: u64 = 42;
/// Post-refinement gate-campaign iterations (CI's fuzz smoke budget).
const DEFAULT_ITERATIONS: usize = 150;
/// In-loop campaign iterations (the refinement evidence budget).
const DEFAULT_REFINE_ITERATIONS: usize = REFINE_MIN_ITERATIONS;
/// Evidence-round budget of the refinement loop.
const DEFAULT_MAX_CAMPAIGNS: usize = 40;
/// Sample budget of every campaign involved.
const DEFAULT_BUDGET: usize = 24;
/// Words in the serving corpus.
const DEFAULT_SERVE_SAMPLES: usize = 120;
/// Size budget of serving-corpus samples.
const SERVE_SAMPLE_BUDGET: usize = 40;

const USAGE: &str = "trace [grammar ...] [--lang NAME] [--seed N] [--iterations N] \
                     [--refine-iterations N] [--max-campaigns N] [--budget N] [--serve-samples N] \
                     [--check] [--json]";

/// One row of the per-phase query-budget profile: the membership queries a
/// span itself issued (children excluded — rows partition the grand total).
#[derive(Serialize)]
struct PhaseRow {
    /// Full `/`-separated span path (empty for queries outside any span).
    path: String,
    /// Unique membership queries (innermost `query.oracle.miss`) attributed
    /// to this span itself.
    unique_queries: u64,
}

/// The instrumented trace of one language. Every field is deterministic for
/// a fixed seed.
#[derive(Serialize)]
struct TraceRow {
    language: String,
    /// Ground truth: distinct strings the black-box program ever answered
    /// (the paper's "#Queries"), from the shared [`CountingOracle`].
    oracle_unique_queries: usize,
    /// Membership calls including cache hits.
    oracle_total_queries: usize,
    /// Cache hits across the whole run.
    oracle_cache_hits: usize,
    /// Pre-order per-phase attribution; `unique_queries` sums to
    /// `oracle_unique_queries`.
    phase_profile: Vec<PhaseRow>,
    /// Unique membership queries issued by the serve phase (0: serving is
    /// oracle-free).
    serve_unique_queries: u64,
    /// Deterministic journal entries this run emitted (the entries
    /// themselves go to `BENCH_trace.jsonl`).
    journal_entries: usize,
    /// Journal entries dropped on the journal bound (0 in tracked runs).
    journal_dropped: u64,
    /// Grand-total counters, spans and histograms (journal drained into
    /// `BENCH_trace.jsonl`).
    facts: DeterministicFacts,
}

/// The tracked machine-readable report. No wall-clock fields: reruns with
/// the same configuration are byte-identical.
#[derive(Serialize)]
struct TraceBenchReport {
    seed: u64,
    iterations: usize,
    refine_iterations: usize,
    max_campaigns: usize,
    budget: usize,
    serve_samples: usize,
    rows: Vec<TraceRow>,
}

/// Collects `(path, own unique queries)` rows in pre-order, skipping
/// zero-query spans (the profile shows where the budget went, not the whole
/// span tree — that is in `facts`).
fn phase_profile(root: &SpanFacts) -> Vec<PhaseRow> {
    fn walk(span: &SpanFacts, out: &mut Vec<PhaseRow>) {
        let own = span.own_counter("query.oracle.miss");
        if own > 0 {
            out.push(PhaseRow { path: span.path.clone(), unique_queries: own });
        }
        for child in &span.children {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out
}

fn main() {
    let args = Args::parse_or_exit(
        USAGE,
        &[
            "lang",
            "seed",
            "iterations",
            "refine-iterations",
            "max-campaigns",
            "budget",
            "serve-samples",
        ],
        &["check", "json"],
    );
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    };
    let seed = args.seed(DEFAULT_SEED).unwrap_or_else(|e| fail(e));
    let iterations: usize =
        args.parsed("iterations", DEFAULT_ITERATIONS).unwrap_or_else(|e| fail(e));
    let refine_iterations: usize =
        args.parsed("refine-iterations", DEFAULT_REFINE_ITERATIONS).unwrap_or_else(|e| fail(e));
    let max_campaigns: usize =
        args.parsed("max-campaigns", DEFAULT_MAX_CAMPAIGNS).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", DEFAULT_BUDGET).unwrap_or_else(|e| fail(e));
    let serve_samples: usize =
        args.parsed("serve-samples", DEFAULT_SERVE_SAMPLES).unwrap_or_else(|e| fail(e));

    let all_names: Vec<String> = table1_languages().iter().map(|l| l.name().to_string()).collect();
    let selected: Vec<String> = match args.value("lang") {
        Some(lang) if !args.positionals().is_empty() => {
            fail(format!("--lang {lang:?} cannot be combined with positional grammar names"))
        }
        Some(lang) => vec![lang.to_string()],
        None if args.positionals().is_empty() => all_names.clone(),
        None => args.positionals().to_vec(),
    };
    let full_set = {
        let mut sorted = selected.clone();
        sorted.sort();
        sorted.dedup();
        let mut all_sorted = all_names.clone();
        all_sorted.sort();
        sorted == all_sorted
    };
    let tracked_config = seed == DEFAULT_SEED
        && iterations == DEFAULT_ITERATIONS
        && refine_iterations == DEFAULT_REFINE_ITERATIONS
        && max_campaigns == DEFAULT_MAX_CAMPAIGNS
        && budget == DEFAULT_BUDGET
        && serve_samples == DEFAULT_SERVE_SAMPLES;

    let gate_config =
        FuzzConfig { seed, iterations, sample_budget: budget, ..FuzzConfig::default() };
    let loop_config = FuzzConfig {
        seed,
        iterations: refine_iterations.max(iterations),
        sample_budget: budget,
        ..FuzzConfig::default()
    };
    let refine_config = RefineConfig { max_campaigns, ..RefineConfig::default() };

    let mut rows: Vec<TraceRow> = Vec::new();
    let mut journal_sections: Vec<(String, Vec<String>)> = Vec::new();
    let mut timing_sections: Vec<(String, vstar_telemetry::Timings)> = Vec::new();
    for name in &selected {
        let Some(lang) = language_by_name(name) else {
            fail(format!("unknown grammar {name:?}; grammars: {}", all_names.join(" ")));
        };
        eprintln!("tracing {name}: learn → refine → fuzz → serve under instrumentation …");

        // One shared counting oracle serves every membership answer of the
        // run: the learner's MAT asks it on cache misses, the in-loop and
        // gate fuzz campaigns ask it through the `CountedLanguage` view. Its
        // unique-query count is the grand total the phase profile must
        // account for.
        let counting = CountingOracle::new(|s: &str| lang.accepts(s));
        let counted = CountedLanguage::new(lang.as_ref(), &counting);
        let guard = vstar_telemetry::install();

        // Learn phase (the pipeline opens the `learn` span; refinement's
        // evidence campaigns nest under `pool-equivalence`).
        let oracle_fn = |s: &str| counting.member(s);
        let mat = vstar::Mat::new(&oracle_fn);
        let mut source = CampaignEvidence::new(&counted, loop_config.clone())
            .with_seed_window(refine_config.clean_passes as u64);
        let (result, _log) = vstar::VStar::new(vstar::VStarConfig::default())
            .learn_refined(
                &mat,
                &lang.alphabet(),
                &lang.seeds(),
                &mut source,
                refine_config.clone(),
            )
            .expect("refined learning of the bundled grammars succeeds");
        let learned = result.as_learned_language();

        // Fuzz phase: the post-refinement gate campaign (opens the
        // top-level `fuzz-campaign` span).
        let gate = FuzzCampaign::new(&learned, &counted, gate_config.clone()).run();

        // Serve phase: compile and serve the artifact — deliberately *not*
        // through the counting oracle; the gate asserts this subtree issued
        // zero membership queries. Single-threaded on purpose: the
        // collector is thread-local, worker threads are unrecorded.
        {
            let _serve_span = vstar_telemetry::span("serve");
            let compiled = learned.compile().expect("learned grammars compile");
            let mut rng = StdRng::seed_from_u64(seed);
            let sampler = GrammarSampler::new(learned.vpg());
            let words = sampler.sample_many(&mut rng, SERVE_SAMPLE_BUDGET, serve_samples);
            let mut session = compiled.session();
            let mut served_members = 0usize;
            for w in &words {
                session.reset();
                session.push_str(w);
                served_members += usize::from(session.finish());
                let raw = learned.strip(w);
                let _ = compiled.recognize(&raw);
            }
            vstar_telemetry::event(
                "serve.summary",
                &[("words", words.len() as u64), ("members", served_members as u64)],
            );
        }

        let report = guard.finish();
        let mut facts = report.facts;
        let journal_lines = facts.journal_lines();
        let journal_entries = facts.journal.len();
        let journal_dropped = facts.journal_dropped;
        facts.journal = Vec::new();

        eprintln!(
            "traced {name}: {} unique queries, {} learner rounds, gate divergences {}",
            counting.unique_queries(),
            facts.counter("learner.rounds"),
            gate.counts.divergences(),
        );

        rows.push(TraceRow {
            language: name.clone(),
            oracle_unique_queries: counting.unique_queries(),
            oracle_total_queries: counting.total_queries(),
            oracle_cache_hits: counting.cache_hits(),
            phase_profile: phase_profile(&facts.root),
            serve_unique_queries: facts.subtree_counter("serve", "query.oracle.miss"),
            journal_entries,
            journal_dropped,
            facts,
        });
        journal_sections.push((name.clone(), journal_lines));
        timing_sections.push((name.clone(), report.timings));
    }

    // The headline: the per-phase query-budget profile ("where did 550K
    // queries go"). Deterministic — safe for the stdout determinism diff.
    println!("Per-phase membership-query attribution (seed {seed})");
    for row in &rows {
        println!();
        println!(
            "{}: {} unique membership queries ({} total, {} cache hits)",
            row.language,
            row.oracle_unique_queries,
            row.oracle_total_queries,
            row.oracle_cache_hits,
        );
        println!("  {:<68} {:>10} {:>7}", "phase", "unique", "%");
        for phase in &row.phase_profile {
            let label = if phase.path.is_empty() { "(outside any span)" } else { &phase.path };
            let share = if row.oracle_unique_queries == 0 {
                0.0
            } else {
                100.0 * phase.unique_queries as f64 / row.oracle_unique_queries as f64
            };
            println!("  {label:<68} {:>10} {share:>6.1}%", phase.unique_queries);
        }
        println!(
            "  {:<68} {:>10} {:>6.1}%",
            "total",
            row.phase_profile.iter().map(|p| p.unique_queries).sum::<u64>(),
            100.0,
        );
        // Quantiles of automaton steps per served parse: a deterministic
        // shape summary of the serving workload (steps count input
        // characters, not wall clock).
        if let Some(steps) = row
            .facts
            .span("serve")
            .and_then(|s| s.histograms.iter().find(|h| h.name == "serve.steps_per_parse"))
        {
            let q = steps.summary();
            println!(
                "  serve steps/parse: p50={} p90={} p99={} max={} over {} parses",
                q.p50, q.p90, q.p99, q.max, q.count,
            );
        }
    }

    // Wall-clock timings go to stderr only: reported, never part of the
    // deterministic output (the BENCH_serve.json convention).
    eprintln!();
    eprintln!("wall-clock phase timings (stderr only, excluded from determinism):");
    for (name, timings) in &timing_sections {
        for t in &timings.spans {
            if !t.path.contains('/') {
                eprintln!("  {name}: {:<20} {:>9.3}s", t.path, t.nanos as f64 / 1e9);
            }
        }
    }

    let report = TraceBenchReport {
        seed,
        iterations,
        refine_iterations: loop_config.iterations,
        max_campaigns,
        budget,
        serve_samples,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    if full_set && tracked_config {
        match std::fs::write(JSON_REPORT_PATH, &json) {
            Ok(()) => println!("wrote {JSON_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JSON_REPORT_PATH}: {e}"),
        }
        let mut journal_doc = String::new();
        for (name, lines) in &journal_sections {
            journal_doc.push_str(&format!("{{\"language\":{:?}}}\n", name));
            for line in lines {
                journal_doc.push_str(line);
                journal_doc.push('\n');
            }
        }
        match std::fs::write(JOURNAL_REPORT_PATH, &journal_doc) {
            Ok(()) => println!("wrote {JOURNAL_REPORT_PATH}"),
            Err(e) => eprintln!("could not write {JOURNAL_REPORT_PATH}: {e}"),
        }
    } else if !full_set {
        println!("partial grammar selection: {JSON_REPORT_PATH} left untouched");
    } else {
        println!("non-default configuration: {JSON_REPORT_PATH} left untouched");
    }
    if args.switch("json") {
        println!("{json}");
    }

    if args.switch("check") {
        let mut failed = false;
        for row in &report.rows {
            let attributed: u64 = row.phase_profile.iter().map(|p| p.unique_queries).sum();
            let grand = row.oracle_unique_queries as u64;
            if attributed != grand || row.facts.counter("query.oracle.miss") != grand {
                failed = true;
                eprintln!(
                    "FAIL {}: phase attribution sums to {attributed}, telemetry total {}, \
                     oracle ground truth {grand}",
                    row.language,
                    row.facts.counter("query.oracle.miss"),
                );
            }
            if row.serve_unique_queries != 0
                || row.facts.subtree_counter("serve", "query.oracle.hit") != 0
            {
                failed = true;
                eprintln!(
                    "FAIL {}: serve phase touched the membership oracle ({} unique) — serving \
                     must be oracle-free",
                    row.language, row.serve_unique_queries,
                );
            }
            if row.facts.subtree_counter("learn", "query.oracle.miss") == 0 {
                failed = true;
                eprintln!("FAIL {}: learn phase recorded no membership queries", row.language);
            }
            for (counter, what) in [
                ("learner.rounds", "learner rounds"),
                ("serve.words_finished", "served words"),
                ("compile.grammars", "compilations"),
            ] {
                if row.facts.counter(counter) == 0 {
                    failed = true;
                    eprintln!("FAIL {}: no {what} recorded ({counter} is 0)", row.language);
                }
            }
            if row.journal_dropped != 0 {
                failed = true;
                eprintln!(
                    "FAIL {}: journal dropped {} entries — the trace is no longer complete",
                    row.language, row.journal_dropped,
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: every membership query is phase-attributed and serving stayed \
             oracle-free"
        );
    }
}
