//! Ablations for the design choices called out in DESIGN.md:
//!
//! * **Ablation A — test-string budget**: V-Star simulates equivalence queries
//!   from seed-derived test strings; this sweep varies the budget and reports the
//!   resulting F1, showing how accuracy depends on the simulated-equivalence pool.
//! * **Ablation B — nesting bound K**: `candidateNesting` checks pumping up to a
//!   bound `K`; this sweep varies `K` and reports query counts and success.
//!
//! Usage: `cargo run -p vstar_bench --bin ablation --release [-- grammar] [--seed N]`
//! (default grammar: lisp; `--seed` overrides the dataset RNG seed).

use vstar::equivalence::TestPoolConfig;
use vstar::{Mat, VStar, VStarConfig};
use vstar_bench::cli::Args;
use vstar_eval::{f1_score, precision, recall, EvalConfig};
use vstar_oracles::{language_by_name, Language};

const USAGE: &str = "ablation [grammar] [--seed N]";

fn main() {
    let args = Args::parse_or_exit(USAGE, &["seed"], &[]);
    let grammar = args.positionals().first().cloned().unwrap_or_else(|| "lisp".to_string());
    let Some(lang) = language_by_name(&grammar) else {
        eprintln!("unknown grammar {grammar:?}; available: json lisp xml while mathexpr");
        std::process::exit(1);
    };
    let mut eval_config =
        EvalConfig { recall_samples: 120, precision_samples: 120, ..EvalConfig::default() };
    eval_config.rng_seed = args.seed(eval_config.rng_seed).unwrap_or_else(|e| {
        eprintln!("{e}\nusage: {USAGE}");
        std::process::exit(2);
    });

    println!("== Ablation A: simulated-equivalence test-string budget ({grammar}) ==");
    println!("budget\t#TS\tRecall\tPrecision\tF1\t#Queries");
    for budget in [50usize, 200, 1000, 6000] {
        let config = VStarConfig {
            test_pool: TestPoolConfig { max_test_strings: budget, ..TestPoolConfig::default() },
            ..VStarConfig::default()
        };
        report_run(lang.as_ref(), &config, &eval_config, &budget.to_string());
    }

    println!();
    println!("== Ablation B: nesting-pattern pumping bound K ({grammar}) ==");
    println!("K\t#TS\tRecall\tPrecision\tF1\t#Queries");
    for k in [2usize, 3, 4] {
        let mut config = VStarConfig::default();
        config.token_config.max_k = k;
        report_run(lang.as_ref(), &config, &eval_config, &k.to_string());
    }
}

fn report_run(lang: &dyn Language, config: &VStarConfig, eval_config: &EvalConfig, label: &str) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    match VStar::new(config.clone()).learn(&mat, &lang.alphabet(), &lang.seeds()) {
        Ok(result) => {
            let mut rng = StdRng::seed_from_u64(eval_config.rng_seed);
            let corpus = lang.generate_corpus(
                &mut rng,
                eval_config.generation_budget,
                eval_config.recall_samples,
            );
            let learned = result.as_learned_language();
            let r = recall(|s| learned.accepts(&mat, s), &corpus);
            let sampler = vstar_parser::GrammarSampler::new(&result.vpg);
            let mut rng = StdRng::seed_from_u64(eval_config.rng_seed ^ 1);
            let samples: Vec<String> = sampler
                .sample_many(
                    &mut rng,
                    eval_config.generation_budget,
                    eval_config.precision_samples * 4,
                )
                .into_iter()
                .map(|s| vstar::tokenizer::strip_markers(&s))
                .take(eval_config.precision_samples)
                .collect();
            let p = if samples.is_empty() { 0.0 } else { precision(|s| lang.accepts(s), &samples) };
            println!(
                "{label}\t{}\t{r:.2}\t{p:.2}\t{:.2}\t{}",
                result.stats.test_strings,
                f1_score(r, p),
                result.stats.queries_total
            );
        }
        Err(e) => println!("{label}\t-\t-\t-\t-\tfailed: {e}"),
    }
}
