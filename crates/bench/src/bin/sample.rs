//! Samples strings from a learned grammar: learns one of the bundled oracle
//! languages with V-Star, then draws sentences from the extracted VPG with the
//! `vstar_parser` grammar sampler. Every printed string is round-tripped
//! through the derivative parser (sample → parse → accept) before printing, so
//! the output is a ready-to-use precision/fuzzing corpus of raw oracle inputs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p vstar_bench --bin sample --release -- <grammar> [count] [budget] [seed]
//! ```
//!
//! where `<grammar>` is one of json, lisp, xml, while, mathexpr (defaults:
//! count = 20, budget = 24, seed = 1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{tokenizer::strip_markers, Mat, VStar, VStarConfig};
use vstar_oracles::table1_languages;
use vstar_parser::{GrammarSampler, VpgParser};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: sample <grammar> [count] [budget] [seed]");
        eprintln!("grammars: json lisp xml while mathexpr");
        std::process::exit(2);
    };
    let count: usize = args.get(1).map_or(20, |a| a.parse().expect("count must be a number"));
    let budget: usize = args.get(2).map_or(24, |a| a.parse().expect("budget must be a number"));
    let seed: u64 = args.get(3).map_or(1, |a| a.parse().expect("seed must be a number"));

    let languages = table1_languages();
    let Some(lang) = languages.iter().find(|l| l.name() == name.as_str()) else {
        eprintln!("unknown grammar {name:?}; grammars: json lisp xml while mathexpr");
        std::process::exit(2);
    };

    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("learning the bundled grammars succeeds");
    eprintln!(
        "learned {} ({} states, {} nonterminals, {} unique queries)",
        lang.name(),
        result.vpa.state_count(),
        result.vpg.nonterminal_count(),
        result.stats.queries_total,
    );

    let sampler = GrammarSampler::new(&result.vpg);
    let parser = VpgParser::new(&result.vpg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut printed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(50).max(1000);
    let mut seen = std::collections::BTreeSet::new();
    while printed < count && attempts < max_attempts {
        attempts += 1;
        let Some(word) = sampler.sample(&mut rng, budget) else {
            break;
        };
        // Round-trip: the sampled word must parse back to itself.
        let tree = parser.parse(&word).expect("sampled word parses");
        assert_eq!(tree.yielded(), word, "parse tree must yield the sample");
        // Keep only words that correspond to raw strings of the learned
        // language (fixed points of conv ∘ strip), then print the raw form.
        let raw = strip_markers(&word);
        if result.tokenizer.convert(&mat, &raw) != word || !seen.insert(raw.clone()) {
            continue;
        }
        println!("{raw}");
        printed += 1;
    }
    eprintln!("{printed} distinct samples in {attempts} draws (budget {budget}, seed {seed})");
}
