//! Samples strings from a learned grammar: learns one of the bundled oracle
//! languages with V-Star, then draws sentences from the extracted VPG with the
//! `vstar_parser` grammar sampler. Every printed string is round-tripped
//! through the derivative parser (sample → parse → accept) before printing, so
//! the output is a ready-to-use precision/fuzzing corpus of raw oracle inputs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p vstar_bench --bin sample --release -- <grammar> \
//!     [--count N] [--budget N] [--seed N]
//! ```
//!
//! where `<grammar>` is one of json, lisp, xml, while, mathexpr (defaults:
//! `--count 20`, `--budget 24`, `--seed 1`).

use vstar::{tokenizer::strip_markers, Mat, VStar, VStarConfig};
use vstar_bench::cli::Args;
use vstar_oracles::language_by_name;
use vstar_parser::{GrammarSampler, VpgParser};

const USAGE: &str = "sample <grammar> [--count N] [--budget N] [--seed N]";

fn main() {
    let args = Args::parse_or_exit(USAGE, &["count", "budget", "seed"], &[]);
    let fail = |e: String| -> ! {
        eprintln!("{e}\nusage: {USAGE}\ngrammars: json lisp xml while mathexpr");
        std::process::exit(2);
    };
    let Some(name) = args.positionals().first() else {
        fail("missing <grammar>".to_string());
    };
    let count: usize = args.parsed("count", 20).unwrap_or_else(|e| fail(e));
    let budget: usize = args.parsed("budget", 24).unwrap_or_else(|e| fail(e));
    let seed = args.seed(1).unwrap_or_else(|e| fail(e));
    let mut rng = args.seeded_rng(1).unwrap_or_else(|e| fail(e));

    let Some(lang) = language_by_name(name) else {
        fail(format!("unknown grammar {name:?}"));
    };

    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &lang.alphabet(), &lang.seeds())
        .expect("learning the bundled grammars succeeds");
    eprintln!(
        "learned {} ({} states, {} nonterminals, {} unique queries)",
        lang.name(),
        result.vpa.state_count(),
        result.vpg.nonterminal_count(),
        result.stats.queries_total,
    );

    let sampler = GrammarSampler::new(&result.vpg);
    let parser = VpgParser::new(&result.vpg);
    let mut printed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(50).max(1000);
    let mut seen = std::collections::BTreeSet::new();
    while printed < count && attempts < max_attempts {
        attempts += 1;
        let Some(word) = sampler.sample(&mut rng, budget) else {
            break;
        };
        // Round-trip: the sampled word must parse back to itself.
        let tree = parser.parse(&word).expect("sampled word parses");
        assert_eq!(tree.yielded(), word, "parse tree must yield the sample");
        // Keep only words that correspond to raw strings of the learned
        // language (fixed points of conv ∘ strip), then print the raw form.
        let raw = strip_markers(&word);
        if result.tokenizer.convert(&mat, &raw) != word || !seen.insert(raw.clone()) {
            continue;
        }
        println!("{raw}");
        printed += 1;
    }
    eprintln!("{printed} distinct samples in {attempts} draws (budget {budget}, seed {seed})");
}
