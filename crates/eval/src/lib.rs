//! Evaluation harness for the V-Star reproduction: the metrics and runners behind
//! the paper's Table 1.
//!
//! * [`metrics`] — Recall, Precision and F1 estimated on sampled datasets, exactly
//!   as defined in §6 of the paper.
//! * [`runner`] — run V-Star, the GLADE-style baseline and the ARVADA-style
//!   baseline on one of the bundled oracle languages and collect a [`report::ToolRow`].
//! * [`report`] — Table-1-style report assembly and formatting (plain text and
//!   JSON via serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod runner;

pub use metrics::{f1_score, precision, recall, Accuracy, DifferentialCounts};
pub use report::{Table1Report, ToolRow};
pub use runner::{
    evaluate_arvada, evaluate_glade, evaluate_vstar, measure_vstar_accuracy, recall_dataset,
    EvalConfig,
};
