//! Runners: learn a grammar with one of the three tools and measure the Table-1
//! metrics against the bundled oracle languages.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig, VStarResult};
use vstar_baselines::{Arvada, ArvadaConfig, Glade, GladeConfig, LearnedGrammar};
use vstar_oracles::Language;
use vstar_parser::{CompileLearned, GrammarSampler};

use crate::metrics::{f1_score, precision, recall, Accuracy};
use crate::report::ToolRow;

/// Configuration shared by all evaluation runs.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Number of sentences sampled from the oracle for the recall dataset.
    pub recall_samples: usize,
    /// Number of sentences sampled from the learned grammar for the precision
    /// dataset.
    pub precision_samples: usize,
    /// Size budget passed to the sentence generators.
    pub generation_budget: usize,
    /// RNG seed (datasets are deterministic given this seed).
    pub rng_seed: u64,
    /// V-Star pipeline configuration.
    pub vstar: VStarConfig,
    /// GLADE-style baseline configuration.
    pub glade: GladeConfig,
    /// ARVADA-style baseline configuration.
    pub arvada: ArvadaConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            recall_samples: 200,
            precision_samples: 200,
            generation_budget: 18,
            rng_seed: 0xEA11_5EED,
            vstar: VStarConfig::default(),
            glade: GladeConfig::default(),
            arvada: ArvadaConfig::default(),
        }
    }
}

/// Builds the recall dataset for a language (deterministic for a given seed).
#[must_use]
pub fn recall_dataset(lang: &dyn Language, config: &EvalConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    lang.generate_corpus(&mut rng, config.generation_budget, config.recall_samples)
}

/// Measures recall and precision of learned V-Star artifacts against the
/// oracle, on the same deterministic datasets [`evaluate_vstar`] uses — so the
/// pre-refinement row and the post-refinement columns of Table 1 are directly
/// comparable.
///
/// Recall is measured against the compiled serving artifact — the thing a
/// deployment would actually run — rather than against the oracle-backed
/// learning-time path (the two agree on the evaluation corpora; the compiled
/// scan resolves every `conv_τ` decision from its tables).
///
/// Precision samples from the learned VPG with the grammar sampler of
/// `vstar_parser` (over the converted alphabet), strips the artificial markers
/// to obtain raw strings, and asks the oracle. Samples are kept only when the
/// compiled serving artifact re-accepts the raw string — the `conv ∘ strip`
/// fixed points, plus the words whose raw form converts to a different but
/// still accepted word. That is exactly the raw language a deployment serves,
/// `{s : compiled.recognize(s)}`; derivations outside it are unreachable
/// words of the converted alphabet, and the filter is oracle-free.
///
/// # Panics
///
/// Panics when the learned grammar exceeds the serving compilation budget.
#[must_use]
pub fn measure_vstar_accuracy(
    lang: &dyn Language,
    config: &EvalConfig,
    result: &VStarResult,
) -> Accuracy {
    let corpus = recall_dataset(lang, config);
    let compiled = result.compile().expect("learned grammar compiles for serving");
    let recall_value = recall(|s| compiled.recognize(s), &corpus);

    let mut rng = StdRng::seed_from_u64(config.rng_seed ^ 0xA11CE);
    let sampler = GrammarSampler::new(&result.vpg);
    let samples: Vec<String> = sampler
        .sample_many(&mut rng, config.generation_budget, config.precision_samples * 12)
        .into_iter()
        .filter_map(|w| {
            let raw = vstar::tokenizer::strip_markers(&w);
            compiled.recognize(&raw).then_some(raw)
        })
        .take(config.precision_samples)
        .collect();
    let precision_value =
        if samples.is_empty() { 0.0 } else { precision(|s| lang.accepts(s), &samples) };
    Accuracy::new(recall_value, precision_value)
}

/// Evaluates V-Star on one language (paper Table 1, bottom block).
#[must_use]
pub fn evaluate_vstar(lang: &dyn Language, config: &EvalConfig) -> ToolRow {
    let seeds = lang.seeds();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let start = Instant::now();
    let result = VStar::new(config.vstar.clone())
        .learn(&mat, &lang.alphabet(), &seeds)
        .expect("V-Star learning should succeed on the bundled grammars");
    let learn_time = start.elapsed();

    let accuracy = measure_vstar_accuracy(lang, config, &result);
    ToolRow {
        tool: "vstar".into(),
        grammar: lang.name().into(),
        seeds: seeds.len(),
        recall: accuracy.recall,
        precision: accuracy.precision,
        f1: accuracy.f1,
        queries: result.stats.queries_total,
        token_query_percent: Some(result.stats.token_query_percent()),
        vpa_query_percent: Some(result.stats.vpa_query_percent()),
        test_strings: Some(result.stats.test_strings),
        time_seconds: learn_time.as_secs_f64(),
        refined_recall: None,
        refined_precision: None,
        refined_f1: None,
        refine_counterexamples: None,
    }
}

/// Evaluates the GLADE-style baseline on one language.
#[must_use]
pub fn evaluate_glade(lang: &dyn Language, config: &EvalConfig) -> ToolRow {
    let seeds = lang.seeds();
    let oracle = |s: &str| lang.accepts(s);
    let start = Instant::now();
    let glade = Glade::learn(&oracle, &seeds, &config.glade);
    let learn_time = start.elapsed();
    baseline_row("glade", &glade, lang, seeds.len(), learn_time.as_secs_f64(), config)
}

/// Evaluates the ARVADA-style baseline on one language.
#[must_use]
pub fn evaluate_arvada(lang: &dyn Language, config: &EvalConfig) -> ToolRow {
    let seeds = lang.seeds();
    let oracle = |s: &str| lang.accepts(s);
    let start = Instant::now();
    let arvada = Arvada::learn(&oracle, &seeds, &config.arvada);
    let learn_time = start.elapsed();
    baseline_row("arvada", &arvada, lang, seeds.len(), learn_time.as_secs_f64(), config)
}

fn baseline_row(
    tool: &str,
    learned: &dyn LearnedGrammar,
    lang: &dyn Language,
    seeds: usize,
    time_seconds: f64,
    config: &EvalConfig,
) -> ToolRow {
    let corpus = recall_dataset(lang, config);
    let recall_value = recall(|s| learned.accepts(s), &corpus);
    let mut rng = StdRng::seed_from_u64(config.rng_seed ^ 0xBA5E);
    let samples: Vec<String> = (0..config.precision_samples * 4)
        .filter_map(|_| learned.sample(&mut rng, config.generation_budget))
        .take(config.precision_samples)
        .collect();
    let precision_value =
        if samples.is_empty() { 0.0 } else { precision(|s| lang.accepts(s), &samples) };
    ToolRow {
        tool: tool.into(),
        grammar: lang.name().into(),
        seeds,
        recall: recall_value,
        precision: precision_value,
        f1: f1_score(recall_value, precision_value),
        queries: learned.queries_used(),
        token_query_percent: None,
        vpa_query_percent: None,
        test_strings: None,
        time_seconds,
        refined_recall: None,
        refined_precision: None,
        refined_f1: None,
        refine_counterexamples: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_oracles::{Lisp, ToyXml};

    fn quick_config() -> EvalConfig {
        EvalConfig {
            recall_samples: 30,
            precision_samples: 30,
            generation_budget: 12,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn vstar_beats_baselines_on_toy_xml() {
        let lang = ToyXml::new();
        let config = quick_config();
        let vstar = evaluate_vstar(&lang, &config);
        let glade = evaluate_glade(&lang, &config);
        assert!(vstar.recall >= 0.9, "vstar recall {}", vstar.recall);
        assert!(vstar.f1 >= glade.f1, "vstar {} vs glade {}", vstar.f1, glade.f1);
        assert!(vstar.queries > glade.queries, "V-Star issues more queries than GLADE");
        assert!(vstar.test_strings.is_some());
        assert!(glade.test_strings.is_none());
    }

    #[test]
    fn arvada_runs_on_lisp() {
        let lang = Lisp::new();
        let config = quick_config();
        let row = evaluate_arvada(&lang, &config);
        assert_eq!(row.tool, "arvada");
        assert_eq!(row.grammar, "lisp");
        assert!(row.queries > 0);
        assert!(row.recall >= 0.0 && row.recall <= 1.0);
        assert!(row.precision >= 0.0 && row.precision <= 1.0);
    }

    #[test]
    fn grammar_sampler_precision_dataset_is_usable_and_accurate() {
        // `vstar_parser::GrammarSampler` is the single sampling entry point
        // (the legacy `Vpg::sampler` path is gone): the precision dataset it
        // produces under the conv∘strip fixed-point filter must be non-empty
        // and, on an exactly-learned language, must score (near-)perfect
        // precision against the oracle.
        let lang = ToyXml::new();
        let config = quick_config();
        let oracle = |s: &str| lang.accepts(s);
        let mat = Mat::new(&oracle);
        let result = VStar::new(config.vstar.clone())
            .learn(&mat, &lang.alphabet(), &lang.seeds())
            .expect("learning succeeds");

        let compiled = result.compile().expect("compiles for serving");
        let dataset = || -> Vec<String> {
            let mut rng = StdRng::seed_from_u64(config.rng_seed ^ 0xA11CE);
            GrammarSampler::new(&result.vpg)
                .sample_many(&mut rng, config.generation_budget, config.precision_samples * 12)
                .into_iter()
                .filter_map(|w| {
                    let raw = vstar::tokenizer::strip_markers(&w);
                    compiled.recognize(&raw).then_some(raw)
                })
                .take(config.precision_samples)
                .collect()
        };
        let kept = dataset();
        assert!(
            kept.len() >= config.precision_samples / 2,
            "sampler produced only {} usable samples",
            kept.len()
        );
        // The quick-config hypothesis is not exact — and the serving-path
        // filter deliberately keeps its cross-matched over-acceptances in the
        // dataset — so the bar is a sanity floor, not perfection (the
        // committed BENCH_table1.json tracks the real numbers at the default
        // configuration, where refinement drives precision to 1.0).
        let precision_value = precision(|s| lang.accepts(s), &kept);
        assert!(precision_value >= 0.2, "toy-xml precision {precision_value}");

        // The dataset is deterministic for a fixed seed, and the shared
        // measurement helper agrees with the inline computation.
        assert_eq!(kept, dataset());
        let accuracy = measure_vstar_accuracy(&lang, &config, &result);
        assert!((accuracy.precision - precision_value).abs() < 1e-12);
    }

    #[test]
    fn recall_dataset_is_deterministic() {
        let lang = Lisp::new();
        let config = quick_config();
        assert_eq!(recall_dataset(&lang, &config), recall_dataset(&lang, &config));
    }
}
