//! Recall / Precision / F1 (paper §6, "Metrics").
//!
//! Recall is the probability that a string of the oracle grammar is accepted by the
//! learned grammar; precision is the probability that a string of the learned
//! grammar is accepted by the oracle. Both are approximated on sampled datasets, as
//! in the paper.

/// Accuracy triple.
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct Accuracy {
    /// Estimated recall.
    pub recall: f64,
    /// Estimated precision.
    pub precision: f64,
    /// Harmonic mean of recall and precision.
    pub f1: f64,
}

impl Accuracy {
    /// Builds the triple from recall and precision.
    #[must_use]
    pub fn new(recall: f64, precision: f64) -> Self {
        Accuracy { recall, precision, f1: f1_score(recall, precision) }
    }
}

/// Fraction of the oracle-language corpus accepted by the learned recognizer.
pub fn recall(learned_accepts: impl FnMut(&str) -> bool, oracle_corpus: &[String]) -> f64 {
    fraction(learned_accepts, oracle_corpus)
}

/// Fraction of the learned-grammar samples accepted by the oracle.
pub fn precision(oracle_accepts: impl FnMut(&str) -> bool, learned_samples: &[String]) -> f64 {
    fraction(oracle_accepts, learned_samples)
}

fn fraction(mut predicate: impl FnMut(&str) -> bool, corpus: &[String]) -> f64 {
    if corpus.is_empty() {
        return 0.0;
    }
    let hits = corpus.iter().filter(|s| predicate(s)).count();
    hits as f64 / corpus.len() as f64
}

/// The F1 score `2 / (1/R + 1/P)`; zero when either component is zero.
#[must_use]
pub fn f1_score(recall: f64, precision: f64) -> f64 {
    if recall <= 0.0 || precision <= 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    }
}

/// Outcome tallies of a differential run: learned recognizer vs. ground-truth
/// oracle on the same inputs.
///
/// This is the bridge between a fuzzing campaign and the Table-1 metrics: the
/// agree/disagree counts double as conditional precision/recall estimates over
/// whatever input distribution produced them. With grammar-directed generation
/// the accepted-side inputs are (mostly) learned-grammar members, so
/// [`DifferentialCounts::precision_estimate`] plays the role of the paper's
/// sampled precision; the rejected-side dually bounds recall.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct DifferentialCounts {
    /// Both the learned recognizer and the oracle accept.
    pub agree_accept: usize,
    /// Both reject.
    pub agree_reject: usize,
    /// The learned recognizer accepts, the oracle rejects — a precision gap.
    pub false_positive: usize,
    /// The oracle accepts, the learned recognizer rejects — a recall gap.
    pub false_negative: usize,
}

impl DifferentialCounts {
    /// Tallies one case.
    pub fn record(&mut self, learned_accepts: bool, oracle_accepts: bool) {
        match (learned_accepts, oracle_accepts) {
            (true, true) => self.agree_accept += 1,
            (false, false) => self.agree_reject += 1,
            (true, false) => self.false_positive += 1,
            (false, true) => self.false_negative += 1,
        }
    }

    /// Total number of recorded cases.
    #[must_use]
    pub fn total(&self) -> usize {
        self.agree_accept + self.agree_reject + self.false_positive + self.false_negative
    }

    /// Number of disagreements (false positives + false negatives).
    #[must_use]
    pub fn divergences(&self) -> usize {
        self.false_positive + self.false_negative
    }

    /// `P(oracle accepts | learned accepts)` over the recorded cases — the
    /// empirical precision of the learned language on this input distribution.
    /// `1.0` when the learned side accepted nothing (no counter-evidence).
    #[must_use]
    pub fn precision_estimate(&self) -> f64 {
        let accepted = self.agree_accept + self.false_positive;
        if accepted == 0 {
            1.0
        } else {
            self.agree_accept as f64 / accepted as f64
        }
    }

    /// `P(learned accepts | oracle accepts)` over the recorded cases — the
    /// empirical recall of the learned language on this input distribution.
    /// `1.0` when the oracle accepted nothing.
    #[must_use]
    pub fn recall_estimate(&self) -> f64 {
        let members = self.agree_accept + self.false_negative;
        if members == 0 {
            1.0
        } else {
            self.agree_accept as f64 / members as f64
        }
    }

    /// Component-wise sum of two tallies.
    #[must_use]
    pub fn merged(&self, other: &DifferentialCounts) -> DifferentialCounts {
        DifferentialCounts {
            agree_accept: self.agree_accept + other.agree_accept,
            agree_reject: self.agree_reject + other.agree_reject,
            false_positive: self.false_positive + other.false_positive,
            false_negative: self.false_negative + other.false_negative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let corpus: Vec<String> = ["a", "bb", "ccc"].iter().map(ToString::to_string).collect();
        assert!((recall(|s| s.len() >= 2, &corpus) - 2.0 / 3.0).abs() < 1e-12);
        assert!((precision(|s| s.starts_with('a'), &corpus) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall(|_| true, &[]), 0.0);
    }

    #[test]
    fn differential_counts_estimates() {
        let mut c = DifferentialCounts::default();
        for (learned, oracle) in
            [(true, true), (true, true), (true, false), (false, true), (false, false)]
        {
            c.record(learned, oracle);
        }
        assert_eq!(c.total(), 5);
        assert_eq!(c.divergences(), 2);
        assert_eq!(c.agree_accept, 2);
        assert!((c.precision_estimate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall_estimate() - 2.0 / 3.0).abs() < 1e-12);
        let doubled = c.merged(&c);
        assert_eq!(doubled.total(), 10);
        assert!((doubled.precision_estimate() - c.precision_estimate()).abs() < 1e-12);
        // Degenerate distributions default to 1.0 (no counter-evidence).
        let empty = DifferentialCounts::default();
        assert_eq!(empty.precision_estimate(), 1.0);
        assert_eq!(empty.recall_estimate(), 1.0);
    }

    #[test]
    fn f1_properties() {
        assert_eq!(f1_score(0.0, 1.0), 0.0);
        assert_eq!(f1_score(1.0, 0.0), 0.0);
        assert!((f1_score(1.0, 1.0) - 1.0).abs() < 1e-12);
        let f = f1_score(0.5, 1.0);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        let acc = Accuracy::new(0.5, 1.0);
        assert!((acc.f1 - f).abs() < 1e-12);
    }
}
