//! Recall / Precision / F1 (paper §6, "Metrics").
//!
//! Recall is the probability that a string of the oracle grammar is accepted by the
//! learned grammar; precision is the probability that a string of the learned
//! grammar is accepted by the oracle. Both are approximated on sampled datasets, as
//! in the paper.

/// Accuracy triple.
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct Accuracy {
    /// Estimated recall.
    pub recall: f64,
    /// Estimated precision.
    pub precision: f64,
    /// Harmonic mean of recall and precision.
    pub f1: f64,
}

impl Accuracy {
    /// Builds the triple from recall and precision.
    #[must_use]
    pub fn new(recall: f64, precision: f64) -> Self {
        Accuracy { recall, precision, f1: f1_score(recall, precision) }
    }
}

/// Fraction of the oracle-language corpus accepted by the learned recognizer.
pub fn recall(learned_accepts: impl FnMut(&str) -> bool, oracle_corpus: &[String]) -> f64 {
    fraction(learned_accepts, oracle_corpus)
}

/// Fraction of the learned-grammar samples accepted by the oracle.
pub fn precision(oracle_accepts: impl FnMut(&str) -> bool, learned_samples: &[String]) -> f64 {
    fraction(oracle_accepts, learned_samples)
}

fn fraction(mut predicate: impl FnMut(&str) -> bool, corpus: &[String]) -> f64 {
    if corpus.is_empty() {
        return 0.0;
    }
    let hits = corpus.iter().filter(|s| predicate(s)).count();
    hits as f64 / corpus.len() as f64
}

/// The F1 score `2 / (1/R + 1/P)`; zero when either component is zero.
#[must_use]
pub fn f1_score(recall: f64, precision: f64) -> f64 {
    if recall <= 0.0 || precision <= 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let corpus: Vec<String> = ["a", "bb", "ccc"].iter().map(ToString::to_string).collect();
        assert!((recall(|s| s.len() >= 2, &corpus) - 2.0 / 3.0).abs() < 1e-12);
        assert!((precision(|s| s.starts_with('a'), &corpus) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall(|_| true, &[]), 0.0);
    }

    #[test]
    fn f1_properties() {
        assert_eq!(f1_score(0.0, 1.0), 0.0);
        assert_eq!(f1_score(1.0, 0.0), 0.0);
        assert!((f1_score(1.0, 1.0) - 1.0).abs() < 1e-12);
        let f = f1_score(0.5, 1.0);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        let acc = Accuracy::new(0.5, 1.0);
        assert!((acc.f1 - f).abs() < 1e-12);
    }
}
