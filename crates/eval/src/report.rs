//! Table-1-style reports.

use std::fmt;

use serde::Serialize;

/// One row of the evaluation: one tool on one grammar.
#[derive(Clone, Debug, Serialize)]
pub struct ToolRow {
    /// Tool name ("glade", "arvada", "vstar").
    pub tool: String,
    /// Grammar name ("json", "lisp", …).
    pub grammar: String,
    /// Number of seed strings.
    pub seeds: usize,
    /// Estimated recall.
    pub recall: f64,
    /// Estimated precision.
    pub precision: f64,
    /// F1 score.
    pub f1: f64,
    /// Unique membership queries.
    pub queries: usize,
    /// Percentage of queries attributed to token inference (V-Star only).
    pub token_query_percent: Option<f64>,
    /// Percentage of queries attributed to VPA learning (V-Star only).
    pub vpa_query_percent: Option<f64>,
    /// Number of test strings used to simulate equivalence queries (V-Star only).
    pub test_strings: Option<usize>,
    /// Wall-clock learning time in seconds.
    pub time_seconds: f64,
    /// Recall after counterexample-guided refinement (V-Star only, when the
    /// refinement pass ran; measured on the same dataset as `recall`).
    pub refined_recall: Option<f64>,
    /// Precision after counterexample-guided refinement (same dataset as
    /// `precision`).
    pub refined_precision: Option<f64>,
    /// F1 after counterexample-guided refinement.
    pub refined_f1: Option<f64>,
    /// Counterexamples the refinement loop replayed into the learner.
    pub refine_counterexamples: Option<usize>,
}

impl ToolRow {
    fn cells(&self) -> Vec<String> {
        vec![
            self.grammar.clone(),
            format!("{}", self.seeds),
            format!("{:.2}", self.recall),
            format!("{:.2}", self.precision),
            format!("{:.2}", self.f1),
            human_count(self.queries),
            self.token_query_percent.map_or_else(|| "-".into(), |v| format!("{v:.2}%")),
            self.vpa_query_percent.map_or_else(|| "-".into(), |v| format!("{v:.2}%")),
            self.test_strings.map_or_else(|| "-".into(), |v| v.to_string()),
            format!("{:.2}s", self.time_seconds),
            self.refined_recall.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            self.refined_precision.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]
    }
}

fn human_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1} M", n as f64 / 1_000_000.0)
    } else if n >= 1_000 {
        format!("{:.1} K", n as f64 / 1_000.0)
    } else {
        n.to_string()
    }
}

/// A full Table-1-style report: rows for every (tool, grammar) pair.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Table1Report {
    /// All rows collected so far.
    pub rows: Vec<ToolRow>,
}

impl Table1Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Table1Report::default()
    }

    /// Adds one row.
    pub fn push(&mut self, row: ToolRow) {
        self.rows.push(row);
    }

    /// Rows of one tool, in insertion order.
    #[must_use]
    pub fn rows_for(&self, tool: &str) -> Vec<&ToolRow> {
        self.rows.iter().filter(|r| r.tool == tool).collect()
    }

    /// Serialises the report to JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the report is always serialisable.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header = [
            "grammar",
            "#Seeds",
            "Recall",
            "Precision",
            "F1",
            "#Queries",
            "%Q(Token)",
            "%Q(VPA)",
            "#TS",
            "Time",
            "Recall+",
            "Precision+",
        ];
        let mut tools: Vec<String> = Vec::new();
        for row in &self.rows {
            if !tools.contains(&row.tool) {
                tools.push(row.tool.clone());
            }
        }
        for tool in tools {
            writeln!(f, "== {tool} ==")?;
            writeln!(f, "{}", header.join("\t"))?;
            for row in self.rows_for(&tool) {
                writeln!(f, "{}", row.cells().join("\t"))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tool: &str, grammar: &str) -> ToolRow {
        ToolRow {
            tool: tool.into(),
            grammar: grammar.into(),
            seeds: 5,
            recall: 1.0,
            precision: 0.987_654,
            f1: 0.993_788,
            queries: 541_000,
            token_query_percent: Some(2.71),
            vpa_query_percent: Some(97.29),
            test_strings: Some(8043),
            time_seconds: 3.25,
            refined_recall: Some(1.0),
            refined_precision: Some(0.995),
            refined_f1: Some(0.997_493),
            refine_counterexamples: Some(4),
        }
    }

    #[test]
    fn display_groups_by_tool() {
        let mut report = Table1Report::new();
        report.push(row("vstar", "json"));
        report.push(row("glade", "json"));
        report.push(row("vstar", "lisp"));
        let text = report.to_string();
        assert!(text.contains("== vstar =="));
        assert!(text.contains("== glade =="));
        assert!(text.contains("541.0 K"));
        assert!(text.contains("8043"));
        assert_eq!(report.rows_for("vstar").len(), 2);
    }

    #[test]
    fn json_serialisation() {
        let mut report = Table1Report::new();
        report.push(row("vstar", "xml"));
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"vstar\""));
        assert!(json.contains("\"grammar\": \"xml\""));
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(15_500), "15.5 K");
        assert_eq!(human_count(4_738_000), "4.7 M");
    }
}
