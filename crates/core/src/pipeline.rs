//! The end-to-end V-Star pipeline.
//!
//! Orchestrates the stages of the paper: tagging/tokenizer inference from seed
//! strings (Algorithms 3/4), conversion of the oracle language into a
//! character-based VPL (`conv_τ`), table-based k-SEVPA learning with simulated
//! equivalence queries (Algorithms 1/2), and extraction of a well-matched VPG from
//! the learned VPA. Query counts are attributed to the token-inference and
//! VPA-learning phases exactly as in Table 1 of the paper.

use std::time::{Duration, Instant};

use vstar_vpl::{vpa_to_vpg, Vpa, Vpg};

use crate::equivalence::{
    EquivalenceContext, EquivalenceStrategy, PoolEquivalence, TestPool, TestPoolConfig,
};
use crate::error::VStarError;
use crate::mat::Mat;
use crate::refine::{EvidenceEquivalence, EvidenceSource, RefineConfig, RefineLog};
use crate::sevpa_learner::{
    Hypothesis, ObservationSeed, SevpaLearner, SevpaLearnerConfig, TaggedAlphabet,
};
use crate::tag_infer::{tag_infer, TagInferConfig};
use crate::token_infer::{token_infer, TokenInferConfig};
use crate::tokenizer::{strip_markers, PartialTokenizer};

/// How call/return structure is discovered from the seed strings.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum TokenDiscovery {
    /// Infer multi-character call/return tokens (paper §5, Algorithm 4) and learn
    /// over the converted alphabet Σ̃. This is the general mode and the default.
    #[default]
    Tokens,
    /// Infer a character-level tagging (paper §4.3, Algorithm 3) and learn directly
    /// over Σ. Matches the paper's character-based setting (e.g. Figure 1).
    Characters,
}

/// Configuration of the [`VStar`] pipeline.
#[derive(Clone, Debug, Default)]
pub struct VStarConfig {
    /// Structure-discovery mode.
    pub token_discovery: TokenDiscovery,
    /// Character-level tagging inference options (used in [`TokenDiscovery::Characters`]).
    pub tag_config: TagInferConfig,
    /// Token inference options (used in [`TokenDiscovery::Tokens`]).
    pub token_config: TokenInferConfig,
    /// VPA-learner options.
    pub learner: SevpaLearnerConfig,
    /// Test-string pool options (simulated equivalence queries).
    pub test_pool: TestPoolConfig,
    /// Optional warm-start seed for the k-SEVPA observation structure:
    /// corpus-mined access words and test contexts (see `vstar-passive`)
    /// installed before the first closure pass, behind the learner's
    /// separability guard.
    pub hypothesis_seed: Option<ObservationSeed>,
    /// Optional pre-inferred tokenizer. When set (token mode only),
    /// structure inference is skipped and this tokenizer is used as-is — the
    /// hook corpus-driven token re-inference uses to re-learn a language
    /// under a repaired tokenizer.
    pub tokenizer_override: Option<PartialTokenizer>,
}

/// Query and size statistics of a learning run (the measurements reported in the
/// paper's Table 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VStarStats {
    /// Total number of unique membership queries.
    pub queries_total: usize,
    /// Unique membership queries spent on token/tagging inference ("%Q(Token)").
    pub queries_token_inference: usize,
    /// Unique membership queries spent on VPA learning ("%Q(VPA)").
    pub queries_vpa_learning: usize,
    /// Number of test strings used to simulate equivalence queries ("#TS").
    pub test_strings: usize,
    /// Number of simulated equivalence queries.
    pub equivalence_queries: usize,
    /// Number of counterexamples processed.
    pub counterexamples: usize,
    /// Number of states of the learned VPA.
    pub states: usize,
    /// Number of inferred call/return token pairs.
    pub token_pairs: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

impl VStarStats {
    /// Fraction of queries attributed to token inference, in percent.
    #[must_use]
    pub fn token_query_percent(&self) -> f64 {
        if self.queries_total == 0 {
            0.0
        } else {
            100.0 * self.queries_token_inference as f64 / self.queries_total as f64
        }
    }

    /// Fraction of queries attributed to VPA learning, in percent.
    #[must_use]
    pub fn vpa_query_percent(&self) -> f64 {
        if self.queries_total == 0 {
            0.0
        } else {
            100.0 * self.queries_vpa_learning as f64 / self.queries_total as f64
        }
    }
}

/// The artifacts produced by a successful V-Star run.
#[derive(Clone, Debug)]
pub struct VStarResult {
    /// The learned VPA (over Σ in character mode, over Σ̃ in token mode).
    pub vpa: Vpa,
    /// The well-matched VPG extracted from the VPA.
    pub vpg: Vpg,
    /// The inferred partial tokenizer (single-character literal tokens in
    /// character mode).
    pub tokenizer: PartialTokenizer,
    /// The discovery mode that produced this result.
    pub mode: TokenDiscovery,
    /// Statistics of the run.
    pub stats: VStarStats,
}

/// A learned language handle detached from the learning-time [`Mat`]: the learned
/// grammar, automaton and tokenizer bundled so that downstream consumers (parsers,
/// samplers, fuzzers) can execute the learned artifacts on raw strings
/// (`χ_{(H,τ)}` in the paper).
///
/// Tokenization needs k-Repetition membership checks, so a membership function must
/// still be supplied; queries made here are not attributed to learning.
#[derive(Clone, Debug)]
pub struct LearnedLanguage {
    vpa: Vpa,
    vpg: Vpg,
    tokenizer: PartialTokenizer,
    mode: TokenDiscovery,
}

impl LearnedLanguage {
    /// Bundles learned artifacts into a language handle. Normally obtained via
    /// [`VStarResult::as_learned_language`]; this constructor exists so that
    /// downstream tooling (differential fuzzers, tests) can assemble variants —
    /// e.g. a deliberately weakened grammar paired with the original tokenizer.
    #[must_use]
    pub fn new(vpa: Vpa, vpg: Vpg, tokenizer: PartialTokenizer, mode: TokenDiscovery) -> Self {
        LearnedLanguage { vpa, vpg, tokenizer, mode }
    }

    /// Returns the same handle with the grammar swapped out (tokenizer, VPA and
    /// mode retained). Grammar-level consumers (parsers, samplers, fuzzers)
    /// will then execute `vpg` while [`LearnedLanguage::convert`] still
    /// produces words of the original converted alphabet — the knob used to
    /// inject known divergences into a differential fuzzing campaign.
    ///
    /// **The retained VPA is not touched**, so on the resulting handle
    /// [`LearnedLanguage::accepts`] (VPA-based) and grammar-level recognizers
    /// over [`LearnedLanguage::vpg`] decide *different* languages — that
    /// disagreement is the point of the knob. Don't mix the two sides on a
    /// reassembled handle expecting them to agree.
    #[must_use]
    pub fn with_vpg(mut self, vpg: Vpg) -> Self {
        self.vpg = vpg;
        self
    }

    /// Inverse of [`LearnedLanguage::convert`] on its image: strips the
    /// artificial token markers from a grammar word, recovering the raw string
    /// (the identity in character mode). Note that `convert(strip(w))` need not
    /// equal `w` for arbitrary grammar words — only raw-string round trips are
    /// guaranteed — so fuzzers must re-check the fixed point when they build
    /// words directly from grammar derivations.
    #[must_use]
    pub fn strip(&self, word: &str) -> String {
        match self.mode {
            TokenDiscovery::Characters => word.to_owned(),
            TokenDiscovery::Tokens => crate::tokenizer::strip_markers(word),
        }
    }

    /// Decides membership of a raw string **with the learned VPA**. On handles
    /// straight from [`VStarResult::as_learned_language`] this agrees with the
    /// grammar-level recognizers over [`LearnedLanguage::vpg`] (the pipeline
    /// extracts the grammar from this very automaton); on handles reassembled
    /// via [`LearnedLanguage::new`] or [`LearnedLanguage::with_vpg`] the VPA
    /// and the grammar are whatever the caller paired up, and this method
    /// keeps answering from the VPA side.
    #[must_use]
    pub fn accepts(&self, mat: &Mat<'_>, s: &str) -> bool {
        match self.mode {
            TokenDiscovery::Characters => self.vpa.accepts(s),
            TokenDiscovery::Tokens => {
                let converted = self.tokenizer.convert(mat, s);
                self.vpa.accepts(&converted)
            }
        }
    }

    /// The learned VPA (over Σ in character mode, over Σ̃ in token mode).
    #[must_use]
    pub fn vpa(&self) -> &Vpa {
        &self.vpa
    }

    /// The well-matched VPG extracted from the learned VPA. Its tagging is the
    /// word alphabet of [`LearnedLanguage::convert`], so grammar-level tools
    /// (recognizers, parsers, samplers) run directly on converted words.
    #[must_use]
    pub fn vpg(&self) -> &Vpg {
        &self.vpg
    }

    /// The inferred partial tokenizer.
    #[must_use]
    pub fn tokenizer(&self) -> &PartialTokenizer {
        &self.tokenizer
    }

    /// The discovery mode the language was learned in.
    #[must_use]
    pub fn mode(&self) -> TokenDiscovery {
        self.mode
    }

    /// Converts a raw string into the word the learned grammar and VPA read: the
    /// identity in character mode, `conv_τ(s)` (artificial markers inserted
    /// around token occurrences) in token mode. The k-Repetition checks of
    /// tokenization issue membership queries through `mat`.
    #[must_use]
    pub fn convert(&self, mat: &Mat<'_>, s: &str) -> String {
        match self.mode {
            TokenDiscovery::Characters => s.to_owned(),
            TokenDiscovery::Tokens => self.tokenizer.convert(mat, s),
        }
    }
}

impl VStarResult {
    /// Decides membership of a raw string with the learned artifacts
    /// (`χ_{(H,τ)}(s)` in the paper): the string is converted with the inferred
    /// tokenizer and run through the learned VPA.
    #[must_use]
    pub fn accepts(&self, mat: &Mat<'_>, s: &str) -> bool {
        self.as_learned_language().accepts(mat, s)
    }

    /// Extracts a standalone recogniser for the learned language.
    #[must_use]
    pub fn as_learned_language(&self) -> LearnedLanguage {
        LearnedLanguage {
            vpa: self.vpa.clone(),
            vpg: self.vpg.clone(),
            tokenizer: self.tokenizer.clone(),
            mode: self.mode,
        }
    }
}

/// The V-Star learner (paper Algorithm 1 + tagging/tokenizer inference + simulated
/// equivalence queries).
#[derive(Clone, Debug, Default)]
pub struct VStar {
    config: VStarConfig,
}

impl VStar {
    /// Creates a pipeline with the given configuration.
    #[must_use]
    pub fn new(config: VStarConfig) -> Self {
        VStar { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &VStarConfig {
        &self.config
    }

    /// Runs the full pipeline: infer structure from the seeds, learn a VPA with
    /// simulated equivalence queries, and extract a VPG.
    ///
    /// # Errors
    ///
    /// * [`VStarError::NoSeeds`] / [`VStarError::InvalidSeed`] on bad seed sets,
    /// * [`VStarError::NoCompatibleTagging`] when structure inference fails,
    /// * [`VStarError::LearnerDidNotConverge`] when the counterexample budget is
    ///   exhausted,
    /// * [`VStarError::IncompatibleCounterexample`] when a member of the oracle
    ///   language cannot be well matched under the inferred structure.
    pub fn learn(
        &self,
        mat: &Mat<'_>,
        alphabet: &[char],
        seeds: &[String],
    ) -> Result<VStarResult, VStarError> {
        self.learn_with_strategy(mat, alphabet, seeds, &mut PoolEquivalence)
    }

    /// Runs the full pipeline with counterexample-guided refinement: the
    /// classic pool check is wrapped in an [`EvidenceEquivalence`] strategy so
    /// that every pool-clean hypothesis is interrogated by `source` (e.g. a
    /// differential fuzz campaign) and its divergences are replayed as
    /// counterexamples, until the evidence runs dry or the budget is spent.
    ///
    /// Returns the learned artifacts together with the [`RefineLog`]
    /// describing what the refinement loop did.
    ///
    /// # Errors
    ///
    /// As [`VStar::learn`].
    pub fn learn_refined(
        &self,
        mat: &Mat<'_>,
        alphabet: &[char],
        seeds: &[String],
        source: &mut dyn EvidenceSource,
        refine: RefineConfig,
    ) -> Result<(VStarResult, RefineLog), VStarError> {
        let mut strategy = EvidenceEquivalence::new(source, refine);
        let result = self.learn_with_strategy(mat, alphabet, seeds, &mut strategy)?;
        Ok((result, strategy.into_log()))
    }

    /// Runs the full pipeline with a caller-supplied equivalence strategy
    /// (the pluggable core of [`VStar::learn`] and [`VStar::learn_refined`]).
    ///
    /// The pipeline still builds the seed-derived test pool and hands it to
    /// the strategy via the [`EquivalenceContext`]; what the strategy does
    /// with it — replay it, wrap it, ignore it — is its own business.
    ///
    /// # Errors
    ///
    /// As [`VStar::learn`].
    pub fn learn_with_strategy(
        &self,
        mat: &Mat<'_>,
        alphabet: &[char],
        seeds: &[String],
        strategy: &mut dyn EquivalenceStrategy,
    ) -> Result<VStarResult, VStarError> {
        let start_time = Instant::now();
        let _learn_span = vstar_telemetry::span("learn");
        if seeds.is_empty() {
            return Err(VStarError::NoSeeds);
        }
        {
            let _seed_check = vstar_telemetry::span("seed-check");
            for seed in seeds {
                if !mat.member(seed) {
                    return Err(VStarError::InvalidSeed { seed: seed.clone() });
                }
            }
        }
        let queries_at_start = mat.unique_queries();

        // Phase 1: structure inference (tagging or tokenizer).
        let token_inference = vstar_telemetry::span("token-inference");
        let (tokenizer, tagged_alphabet, char_mode_tagging) = match self.config.token_discovery {
            TokenDiscovery::Characters => {
                let tagging = tag_infer(mat, seeds, &self.config.tag_config).ok_or(
                    VStarError::NoCompatibleTagging { max_k: self.config.tag_config.max_k },
                )?;
                let tokenizer = PartialTokenizer::from_tagging(&tagging);
                let alpha = TaggedAlphabet::new(tagging.clone(), alphabet.to_vec());
                (tokenizer, alpha, Some(tagging))
            }
            TokenDiscovery::Tokens => {
                let tokenizer = match &self.config.tokenizer_override {
                    Some(tokenizer) => tokenizer.clone(),
                    None => token_infer(mat, seeds, alphabet, &self.config.token_config).ok_or(
                        VStarError::NoCompatibleTagging { max_k: self.config.token_config.max_k },
                    )?,
                };
                let alpha = TaggedAlphabet::new(tokenizer.marker_tagging(), alphabet.to_vec());
                (tokenizer, alpha, None)
            }
        };
        drop(token_inference);
        let queries_after_tokens = mat.unique_queries();

        // Phase 2: test-string pool for simulated equivalence queries.
        let pool_build = vstar_telemetry::span("pool-build");
        let pool = match self.config.token_discovery {
            TokenDiscovery::Characters => {
                let tagging = char_mode_tagging.clone().expect("set in character mode");
                TestPool::build_with(seeds, &self.config.test_pool, |s| {
                    tagging.is_well_matched(s).then(|| s.to_string())
                })
            }
            TokenDiscovery::Tokens => {
                TestPool::build(mat, &tokenizer, seeds, &self.config.test_pool)
            }
        };
        drop(pool_build);

        // Phase 3: VPA learning over the (converted) alphabet.
        let vpa_learning = vstar_telemetry::span("vpa-learning");
        let membership: Box<dyn Fn(&str) -> bool> = match self.config.token_discovery {
            TokenDiscovery::Characters => Box::new(move |w: &str| mat.member(w)),
            TokenDiscovery::Tokens => Box::new(move |w: &str| mat.member(&strip_markers(w))),
        };
        let mut learner =
            SevpaLearner::new(&membership, tagged_alphabet, self.config.learner.clone());
        if let Some(seed) = &self.config.hypothesis_seed {
            learner.seed_observations(seed);
        }
        let mode = self.config.token_discovery;
        let hypothesis: Hypothesis = learner.learn(|hyp| {
            let cx = EquivalenceContext {
                mat,
                hypothesis: hyp,
                tokenizer: &tokenizer,
                mode,
                pool: &pool,
            };
            strategy.find_counterexample(&cx)
        })?;
        let learner_stats = learner.stats();
        let queries_total = mat.unique_queries();
        drop(vpa_learning);

        // Phase 4: grammar extraction.
        let extraction = vstar_telemetry::span("extraction");
        let vpg = vpa_to_vpg(&hypothesis.vpa);
        drop(extraction);

        let stats = VStarStats {
            queries_total: queries_total - queries_at_start,
            queries_token_inference: queries_after_tokens - queries_at_start,
            queries_vpa_learning: queries_total - queries_after_tokens,
            test_strings: pool.len(),
            equivalence_queries: learner_stats.equivalence_queries,
            counterexamples: learner_stats.counterexamples,
            states: hypothesis.vpa.state_count(),
            token_pairs: tokenizer.pair_count(),
            duration: start_time.elapsed(),
        };
        Ok(VStarResult {
            vpa: hypothesis.vpa,
            vpg,
            tokenizer,
            mode: self.config.token_discovery,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn fig1(s: &str) -> bool {
        fn l(s: &[u8], mut pos: usize) -> Option<usize> {
            loop {
                match s.get(pos) {
                    Some(b'a') => {
                        pos = a(s, pos + 1)?;
                        if s.get(pos) != Some(&b'b') {
                            return None;
                        }
                        pos += 1;
                    }
                    Some(b'c') => {
                        if s.get(pos + 1) != Some(&b'd') {
                            return None;
                        }
                        pos += 2;
                    }
                    _ => return Some(pos),
                }
            }
        }
        fn a(s: &[u8], pos: usize) -> Option<usize> {
            if s.get(pos) != Some(&b'g') {
                return None;
            }
            let pos = l(s, pos + 1)?;
            if s.get(pos) != Some(&b'h') {
                return None;
            }
            Some(pos + 1)
        }
        l(s.as_bytes(), 0) == Some(s.len())
    }

    #[test]
    fn rejects_empty_and_invalid_seed_sets() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        assert!(matches!(vstar.learn(&mat, &['(', ')', 'x'], &[]), Err(VStarError::NoSeeds)));
        let bad = vec!["((".to_string()];
        assert!(matches!(
            vstar.learn(&mat, &['(', ')', 'x'], &bad),
            Err(VStarError::InvalidSeed { .. })
        ));
    }

    #[test]
    fn learns_dyck_in_token_mode() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["(x(x))x".to_string(), "()".to_string()];
        let result = vstar.learn(&mat, &['(', ')', 'x'], &seeds).expect("learning succeeds");
        // Exact learning on an exhaustive bound.
        for w in vstar_vpl::words::all_strings(&['(', ')', 'x'], 6) {
            assert_eq!(dyck(&w), result.accepts(&mat, &w), "mismatch on {w:?}");
        }
        assert_eq!(result.stats.token_pairs, 1);
        assert!(result.stats.queries_total > 0);
        assert!(result.stats.test_strings > 0);
        assert!(
            result.stats.queries_token_inference + result.stats.queries_vpa_learning
                == result.stats.queries_total
        );
        // The extracted grammar agrees with the VPA on the converted strings of the
        // test-language sample.
        assert!(result.vpg.rule_count() > 0);
    }

    #[test]
    fn learns_fig1_in_character_mode() {
        let oracle = fig1;
        let mat = Mat::new(&oracle);
        let config =
            VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
        let vstar = VStar::new(config);
        let seeds = vec!["agcdcdhbcd".to_string()];
        let result =
            vstar.learn(&mat, &['a', 'b', 'c', 'd', 'g', 'h'], &seeds).expect("learning succeeds");
        assert_eq!(result.mode, TokenDiscovery::Characters);
        // The learned recognizer agrees with the oracle on all short strings.
        for w in vstar_vpl::words::all_strings(&['a', 'b', 'c', 'd', 'g', 'h'], 5) {
            assert_eq!(fig1(&w), result.accepts(&mat, &w), "mismatch on {w:?}");
        }
        // And on the paper's pumped variants of the seed.
        for k in 1..4 {
            let s = format!("{}cdcd{}cd", "ag".repeat(k), "hb".repeat(k));
            assert!(result.accepts(&mat, &s), "{s}");
        }
        assert!(!result.accepts(&mat, "agcd"));
        // The VPG recognizes the same strings as the VPA in character mode.
        for w in vstar_vpl::words::all_strings(&['a', 'b', 'c', 'd', 'g', 'h'], 4) {
            assert_eq!(result.vpa.accepts(&w), result.vpg.accepts(&w), "vpg/vpa mismatch on {w:?}");
        }
    }

    #[test]
    fn stats_percentages_sum_to_about_100() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["(x)".to_string()];
        let result = vstar.learn(&mat, &['(', ')', 'x'], &seeds).unwrap();
        let total = result.stats.token_query_percent() + result.stats.vpa_query_percent();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(result.stats.duration.as_nanos() > 0);
    }

    #[test]
    fn learned_language_is_detachable() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["(x)".to_string(), "()".to_string()];
        let result = vstar.learn(&mat, &['(', ')', 'x'], &seeds).unwrap();
        let learned = result.as_learned_language();
        assert!(learned.accepts(&mat, "(())"));
        assert!(!learned.accepts(&mat, "(()"));
        // The handle exposes every learned artifact.
        assert_eq!(learned.mode(), TokenDiscovery::Tokens);
        assert_eq!(learned.vpa().state_count(), result.vpa.state_count());
        assert_eq!(learned.vpg(), &result.vpg);
        assert_eq!(learned.tokenizer().pair_count(), result.tokenizer.pair_count());
        // convert() produces the word the grammar reads: stripping its markers
        // recovers the raw string, and the grammar's tagging covers the word.
        let converted = learned.convert(&mat, "(())");
        assert_eq!(crate::tokenizer::strip_markers(&converted), "(())");
        assert!(learned.vpg().tagging().is_well_matched(&converted));
        assert!(learned.vpg().accepts(&converted));
    }

    #[test]
    fn learned_language_can_be_reassembled_and_stripped() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let result = VStar::new(VStarConfig::default())
            .learn(&mat, &['(', ')', 'x'], &["(x)".to_string(), "()".to_string()])
            .unwrap();
        let learned = result.as_learned_language();
        // strip ∘ convert is the identity on raw strings.
        let converted = learned.convert(&mat, "(x)");
        assert_eq!(learned.strip(&converted), "(x)");
        // Reassembling from parts yields an equivalent handle.
        let rebuilt = LearnedLanguage::new(
            result.vpa.clone(),
            result.vpg.clone(),
            result.tokenizer.clone(),
            result.mode,
        );
        assert_eq!(rebuilt.vpg(), learned.vpg());
        assert!(rebuilt.accepts(&mat, "(())"));
        // with_vpg swaps only the grammar.
        let other = result.vpg.trimmed();
        let swapped = rebuilt.with_vpg(other.clone());
        assert_eq!(swapped.vpg(), &other);
        assert_eq!(swapped.vpa().state_count(), result.vpa.state_count());
    }

    #[test]
    fn convert_is_identity_in_character_mode() {
        let oracle = fig1;
        let mat = Mat::new(&oracle);
        let config =
            VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
        let result = VStar::new(config)
            .learn(&mat, &['a', 'b', 'c', 'd', 'g', 'h'], &["agcdcdhbcd".to_string()])
            .unwrap();
        let learned = result.as_learned_language();
        assert_eq!(learned.convert(&mat, "agcdhb"), "agcdhb");
        assert_eq!(learned.mode(), TokenDiscovery::Characters);
    }

    #[test]
    fn tokenizer_override_skips_structure_inference() {
        use crate::tokenizer::{TokenMatcher, TokenPair};
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        // A hand-built tokenizer: no token-inference queries are spent.
        let mut tokenizer = PartialTokenizer::new();
        tokenizer.push_pair(TokenPair {
            call: TokenMatcher::Literal("(".into()),
            ret: TokenMatcher::Literal(")".into()),
        });
        let config = VStarConfig { tokenizer_override: Some(tokenizer), ..VStarConfig::default() };
        let result = VStar::new(config)
            .learn(&mat, &['(', ')', 'x'], &["(x)".to_string(), "()".to_string()])
            .expect("learning succeeds");
        assert_eq!(result.stats.queries_token_inference, 0, "structure inference was skipped");
        assert_eq!(result.stats.token_pairs, 1);
        for w in vstar_vpl::words::all_strings(&['(', ')', 'x'], 5) {
            assert_eq!(dyck(&w), result.accepts(&mat, &w), "mismatch on {w:?}");
        }
    }

    #[test]
    fn hypothesis_seed_is_installed_before_learning() {
        use crate::sevpa_learner::{ModuleSeed, ObservationSeed};
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        // Seed module 0 with corpus-style access words; the separability
        // guard keeps the structure sound, and learning still converges.
        let seed = ObservationSeed {
            modules: vec![ModuleSeed {
                access: vec!["x".into(), "xx".into()],
                tests: vec![(String::new(), String::new())],
            }],
        };
        let config = VStarConfig { hypothesis_seed: Some(seed), ..VStarConfig::default() };
        let result = VStar::new(config)
            .learn(&mat, &['(', ')', 'x'], &["(x)".to_string(), "()".to_string()])
            .expect("learning succeeds");
        for w in vstar_vpl::words::all_strings(&['(', ')', 'x'], 5) {
            assert_eq!(dyck(&w), result.accepts(&mat, &w), "mismatch on {w:?}");
        }
    }

    #[test]
    fn empty_tagging_stats() {
        // Regular language: token inference returns an empty tokenizer and the
        // learner degenerates to a DFA learner.
        let oracle = |s: &str| s.chars().all(|c| c == 'a') && s.len() % 2 == 0;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["aa".to_string(), "aaaa".to_string()];
        let result = vstar.learn(&mat, &['a'], &seeds).unwrap();
        assert_eq!(result.stats.token_pairs, 0);
        for w in ["", "a", "aa", "aaa", "aaaa", "aaaaa"] {
            assert_eq!(oracle(w), result.accepts(&mat, w), "mismatch on {w:?}");
        }
    }
}
