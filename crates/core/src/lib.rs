//! V-Star: active learning of visibly pushdown grammars from program inputs.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*V-Star: Learning Visibly Pushdown Grammars from Program Inputs*, PLDI 2024).
//! Given a black-box membership oracle (typically a parser: a string is a member iff
//! the program accepts it) and a handful of valid *seed strings*, V-Star infers a
//! visibly pushdown automaton — and from it a visibly pushdown grammar — for the
//! oracle language. It proceeds in stages:
//!
//! 1. **Nesting-pattern discovery** ([`nesting`], paper Definition 4.4): partitions
//!    `u·x·z·y·v` of seed strings such that `u xᵏ z yᵏ v` is valid for all `k` but
//!    unbalanced pumpings are not. These witness the call/return structure.
//! 2. **Tagging / tokenizer inference** ([`mod@tag_infer`] for character-level tags,
//!    Algorithm 3; [`mod@token_infer`] for multi-character call/return tokens,
//!    Algorithm 4). Token lexical rules are generalised with Angluin's L\*.
//! 3. **Conversion** ([`tokenizer`], paper §5.1): `conv_τ` inserts artificial call
//!    and return markers around inferred tokens, turning the oracle language into a
//!    character-based VPL.
//! 4. **VPA learning** ([`sevpa_learner`], Algorithm 1/2 and Proposition 4.3): an
//!    L\*-style, table-based learner for *k*-SEVPAs over the congruences of
//!    Alur et al. (2005).
//! 5. **Equivalence-query simulation** ([`equivalence`], paper §6): test strings
//!    assembled from prefixes/infixes/suffixes of the seed strings stand in for
//!    equivalence queries, behind a pluggable [`EquivalenceStrategy`].
//! 6. **Counterexample-guided refinement** ([`refine`], beyond the paper):
//!    evidence sources — e.g. the differential fuzz campaigns of `vstar-fuzz` —
//!    interrogate every pool-clean hypothesis and replay minimized divergences
//!    into the learner until the evidence runs dry.
//! 7. **Grammar extraction**: the learned VPA is converted to a well-matched VPG
//!    via [`vstar_vpl::vpa_to_vpg()`].
//!
//! The one-call entry points are [`VStar::learn`] and [`VStar::learn_refined`];
//! see `examples/` at the workspace root for end-to-end usage on JSON, XML and
//! the paper's running examples.
//!
//! ```
//! use vstar::{Mat, VStar, VStarConfig};
//!
//! // Learn the Dyck language of balanced parentheses with 'x' bodies.
//! let oracle = |s: &str| {
//!     let mut depth = 0i64;
//!     for c in s.chars() {
//!         match c {
//!             '(' => depth += 1,
//!             ')' => { depth -= 1; if depth < 0 { return false; } }
//!             'x' => {}
//!             _ => return false,
//!         }
//!     }
//!     depth == 0
//! };
//! let mat = Mat::new(&oracle);
//! let seeds = vec!["(x(x))x".to_string(), "()".to_string()];
//! let alphabet = vec!['(', ')', 'x'];
//! let result = VStar::new(VStarConfig::default())
//!     .learn(&mat, &alphabet, &seeds)
//!     .expect("learning succeeds");
//! assert!(result.accepts(&mat, "((x)x)"));
//! assert!(!result.accepts(&mat, "((x)"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
mod error;
pub mod mat;
pub mod nesting;
pub mod pipeline;
pub mod refine;
pub mod sevpa_learner;
pub mod tag_infer;
pub mod token_infer;
pub mod tokenizer;

pub use equivalence::{EquivalenceContext, EquivalenceStrategy, PoolEquivalence};
pub use error::VStarError;
pub use mat::Mat;
pub use nesting::{candidate_nesting, NestingConfig, NestingPattern};
pub use pipeline::{LearnedLanguage, TokenDiscovery, VStar, VStarConfig, VStarResult, VStarStats};
pub use refine::{
    rule_liveness, CorpusEvidence, Evidence, EvidenceEquivalence, EvidenceSource, RefineConfig,
    RefineLog, RuleLiveness,
};
pub use sevpa_learner::{
    ModuleSeed, ObservationSeed, SevpaLearner, SevpaLearnerConfig, TaggedAlphabet,
};
pub use tag_infer::tag_infer;
pub use token_infer::{token_infer, TokenInferConfig};
pub use tokenizer::{PartialTokenizer, TokenKind, TokenMatcher, TokenPair};
