//! Simulated equivalence queries (paper §6, "Implementation").
//!
//! Black-box programs answer membership queries but not equivalence queries. The
//! paper approximates an equivalence query by testing the hypothesis against a pool
//! of *test strings* assembled from the seed strings: "we construct a set of strings
//! by combining prefixes, infixes, and suffixes of the seed strings; for each such
//! string s, if conv_τ(s) is well-matched, we add it to a set of test strings". A
//! test string on which the hypothesis and the oracle disagree becomes the
//! counterexample. This is the conformance-testing flavour of the W-method that the
//! related-work section discusses.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::mat::Mat;
use crate::pipeline::TokenDiscovery;
use crate::sevpa_learner::Hypothesis;
use crate::tokenizer::PartialTokenizer;

/// Everything an equivalence strategy may inspect when asked for a
/// counterexample: the current hypothesis, the learning-time artifacts that
/// translate between raw strings and the (converted) alphabet the hypothesis
/// reads, and the precomputed [`TestPool`].
///
/// The pipeline rebuilds this view for every equivalence round, so strategies
/// always see the *current* hypothesis.
pub struct EquivalenceContext<'c> {
    /// The membership teacher.
    pub mat: &'c Mat<'c>,
    /// The hypothesis under test.
    pub hypothesis: &'c Hypothesis,
    /// The inferred tokenizer (single-character literal tokens in character
    /// mode); converts raw strings into hypothesis words.
    pub tokenizer: &'c PartialTokenizer,
    /// The structure-discovery mode of the run.
    pub mode: TokenDiscovery,
    /// The seed-derived test-string pool (the paper's simulated equivalence
    /// check); strategies are free to consult it, wrap it, or ignore it.
    pub pool: &'c TestPool,
}

impl EquivalenceContext<'_> {
    /// Converts a raw string into the word the hypothesis reads: the identity
    /// in character mode, `conv_τ(s)` in token mode.
    #[must_use]
    pub fn convert(&self, s: &str) -> String {
        match self.mode {
            TokenDiscovery::Characters => s.to_owned(),
            TokenDiscovery::Tokens => self.tokenizer.convert(self.mat, s),
        }
    }
}

/// A pluggable equivalence check for the learning pipeline.
///
/// The pipeline's classic behaviour — scan the seed-derived [`TestPool`] for a
/// disagreement — is [`PoolEquivalence`]; the counterexample-guided refinement
/// loop ([`crate::refine`]) wraps that same check in an evidence-driven oracle
/// that keeps interrogating the hypothesis after the pool runs clean.
///
/// Implementations return the counterexample in *converted* form (a word over
/// the hypothesis alphabet on which hypothesis and oracle disagree), or `None`
/// to declare the hypothesis equivalent and end learning.
pub trait EquivalenceStrategy {
    /// Finds a counterexample to the current hypothesis, or `None`.
    fn find_counterexample(&mut self, cx: &EquivalenceContext<'_>) -> Option<String>;
}

/// The default strategy: simulate the equivalence query with the test-string
/// pool exactly as the paper's §6 implementation does.
#[derive(Copy, Clone, Debug, Default)]
pub struct PoolEquivalence;

impl EquivalenceStrategy for PoolEquivalence {
    fn find_counterexample(&mut self, cx: &EquivalenceContext<'_>) -> Option<String> {
        cx.pool.find_counterexample(cx.mat, cx.hypothesis)
    }
}

/// Configuration for test-string generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPoolConfig {
    /// Maximum number of test strings kept in the pool (the paper reports the
    /// number used per grammar in the "#TS" column).
    pub max_test_strings: usize,
    /// Maximum length (in characters) of a test string; longer combinations are
    /// discarded. `None` means unlimited.
    pub max_length: Option<usize>,
    /// Seed for the deterministic subsampling applied when the combination space
    /// exceeds `max_test_strings`.
    pub rng_seed: u64,
}

impl Default for TestPoolConfig {
    fn default() -> Self {
        TestPoolConfig { max_test_strings: 6000, max_length: Some(64), rng_seed: 0x5eed }
    }
}

/// A pool of test strings together with their converted forms, used to simulate
/// equivalence queries against hypothesis VPAs.
#[derive(Clone, Debug)]
pub struct TestPool {
    /// Raw candidate strings (over Σ).
    raw: Vec<String>,
    /// `conv_τ` of each raw string (over Σ̃), precomputed once.
    converted: Vec<String>,
}

impl TestPool {
    /// Builds the pool from the seed strings using `conv_τ` of a partial tokenizer:
    /// prefixes, infixes and suffixes of the seeds are combined
    /// (prefix·infix·suffix), the seeds themselves and the empty string are always
    /// included, and only strings whose conversion is well matched are kept
    /// (paper §6).
    #[must_use]
    pub fn build(
        mat: &Mat<'_>,
        tokenizer: &PartialTokenizer,
        seeds: &[String],
        config: &TestPoolConfig,
    ) -> Self {
        let marker_tagging = tokenizer.marker_tagging();
        Self::build_with(seeds, config, |s| {
            let conv = tokenizer.convert(mat, s);
            marker_tagging.is_well_matched(&conv).then_some(conv)
        })
    }

    /// Builds the pool with a custom conversion: `convert` returns the string the
    /// hypothesis should be run on, or `None` if the candidate is not well matched
    /// under the inferred structure (and should be dropped). The character-level
    /// mode passes the identity conversion guarded by the tagging's
    /// well-matchedness check.
    #[must_use]
    pub fn build_with(
        seeds: &[String],
        config: &TestPoolConfig,
        convert: impl Fn(&str) -> Option<String>,
    ) -> Self {
        let mut prefixes: BTreeSet<String> = BTreeSet::new();
        let mut suffixes: BTreeSet<String> = BTreeSet::new();
        let mut infixes: BTreeSet<String> = BTreeSet::new();
        infixes.insert(String::new());
        for seed in seeds {
            let chars: Vec<char> = seed.chars().collect();
            for i in 0..=chars.len() {
                prefixes.insert(chars[..i].iter().collect());
                suffixes.insert(chars[i..].iter().collect());
            }
            for i in 0..chars.len() {
                for j in i + 1..=chars.len() {
                    infixes.insert(chars[i..j].iter().collect());
                }
            }
        }

        let mut candidates: BTreeSet<String> = BTreeSet::new();
        candidates.insert(String::new());
        for seed in seeds {
            candidates.insert(seed.clone());
        }
        let prefixes: Vec<String> = prefixes.into_iter().collect();
        let infixes: Vec<String> = infixes.into_iter().collect();
        let suffixes: Vec<String> = suffixes.into_iter().collect();
        let within_length = |s: &str| config.max_length.is_none_or(|max| s.chars().count() <= max);
        // Always include every prefix, infix and suffix on its own (they are the
        // highest-value probes: e.g. the infix "true" of a seed is itself a valid
        // JSON document) …
        for piece in prefixes.iter().chain(&infixes).chain(&suffixes) {
            if within_length(piece) {
                candidates.insert(piece.clone());
            }
        }
        // … and every prefix·suffix splice across seeds, if that stays affordable.
        if prefixes.len() * suffixes.len() <= config.max_test_strings.saturating_mul(2) {
            for p in &prefixes {
                for s in &suffixes {
                    let combined = format!("{p}{s}");
                    if within_length(&combined) {
                        candidates.insert(combined);
                    }
                }
            }
        }
        let total_combinations =
            prefixes.len().saturating_mul(infixes.len()).saturating_mul(suffixes.len());
        if total_combinations <= config.max_test_strings.saturating_mul(4) {
            // Small combination space: enumerate it exhaustively.
            for p in &prefixes {
                for m in &infixes {
                    for s in &suffixes {
                        let combined = format!("{p}{m}{s}");
                        if within_length(&combined) {
                            candidates.insert(combined);
                        }
                    }
                }
            }
        } else {
            // Large combination space: draw a deterministic random sample so that
            // all seeds contribute prefixes/infixes/suffixes uniformly.
            let mut rng = StdRng::seed_from_u64(config.rng_seed);
            let budget = config.max_test_strings.saturating_mul(4);
            for _ in 0..budget {
                let p = prefixes.choose(&mut rng).expect("nonempty");
                let m = infixes.choose(&mut rng).expect("nonempty");
                let s = suffixes.choose(&mut rng).expect("nonempty");
                let combined = format!("{p}{m}{s}");
                if within_length(&combined) {
                    candidates.insert(combined);
                }
            }
        }

        // Deterministically subsample if the candidate set is still too large,
        // always keeping the seeds, the empty string and the individual
        // prefix/infix/suffix pieces.
        let mut all: Vec<String> = candidates.into_iter().collect();
        if all.len() > config.max_test_strings {
            let mut priority: BTreeSet<String> = BTreeSet::new();
            priority.insert(String::new());
            priority.extend(seeds.iter().cloned());
            for piece in prefixes.iter().chain(&infixes).chain(&suffixes) {
                if within_length(piece) {
                    priority.insert(piece.clone());
                }
            }
            let mut rng = StdRng::seed_from_u64(config.rng_seed);
            all.shuffle(&mut rng);
            let mut kept: Vec<String> = priority.iter().cloned().collect();
            let kept_set: BTreeSet<String> = priority;
            for s in all {
                if kept.len() >= config.max_test_strings.max(kept_set.len()) {
                    break;
                }
                if !kept_set.contains(&s) {
                    kept.push(s);
                }
            }
            all = kept;
        }

        // Keep only strings whose conversion is well matched, and precompute the
        // conversions (they are reused every equivalence round).
        let mut raw = Vec::new();
        let mut converted = Vec::new();
        for s in all {
            if let Some(conv) = convert(&s) {
                raw.push(s);
                converted.push(conv);
            }
        }
        TestPool { raw, converted }
    }

    /// Number of test strings in the pool (the paper's "#TS" column).
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` if the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The raw test strings.
    #[must_use]
    pub fn raw_strings(&self) -> &[String] {
        &self.raw
    }

    /// Simulates an equivalence query: returns the *converted* form of the first
    /// test string on which the oracle and the hypothesis disagree, or `None`.
    ///
    /// The counterexample is returned in converted form because the learner works
    /// over the extended alphabet Σ̃.
    #[must_use]
    pub fn find_counterexample(&self, mat: &Mat<'_>, hypothesis: &Hypothesis) -> Option<String> {
        for (raw, conv) in self.raw.iter().zip(&self.converted) {
            let oracle_says = mat.member(raw);
            let hypothesis_says = hypothesis.vpa.accepts(conv);
            if oracle_says != hypothesis_says {
                return Some(conv.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sevpa_learner::{SevpaLearner, SevpaLearnerConfig, TaggedAlphabet};
    use crate::tokenizer::strip_markers;
    use vstar_vpl::Tagging;

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn dyck_tokenizer() -> PartialTokenizer {
        PartialTokenizer::from_tagging(&Tagging::from_pairs([('(', ')')]).unwrap())
    }

    #[test]
    fn pool_contains_seeds_and_only_well_matched_strings() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let tokenizer = dyck_tokenizer();
        let seeds = vec!["(x)".to_string(), "()x".to_string()];
        let pool = TestPool::build(&mat, &tokenizer, &seeds, &TestPoolConfig::default());
        assert!(!pool.is_empty());
        for seed in &seeds {
            assert!(pool.raw_strings().contains(seed), "{seed}");
        }
        let marker_tagging = tokenizer.marker_tagging();
        for (raw, conv) in pool.raw.iter().zip(&pool.converted) {
            assert_eq!(&strip_markers(conv), raw);
            assert!(marker_tagging.is_well_matched(conv), "{raw:?}");
        }
        // Ill-matched combinations like "((x" must have been filtered out.
        assert!(!pool.raw_strings().contains(&"(".to_string()));
    }

    #[test]
    fn pool_respects_size_limit() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let tokenizer = dyck_tokenizer();
        let seeds = vec!["(x(x))x".to_string(), "((x))".to_string()];
        let config = TestPoolConfig { max_test_strings: 50, max_length: Some(20), rng_seed: 1 };
        let pool = TestPool::build(&mat, &tokenizer, &seeds, &config);
        assert!(pool.len() <= 50);
        assert!(pool.raw_strings().contains(&"(x(x))x".to_string()));
    }

    #[test]
    fn equivalence_simulation_drives_learning_to_exactness_on_pool() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let tokenizer = dyck_tokenizer();
        let seeds = vec!["(x(x))x".to_string(), "()".to_string()];
        let pool = TestPool::build(&mat, &tokenizer, &seeds, &TestPoolConfig::default());

        let member = |w: &str| mat.member(&strip_markers(w));
        let member_ref: &dyn Fn(&str) -> bool = &member;
        let alphabet = TaggedAlphabet::new(tokenizer.marker_tagging(), vec!['(', ')', 'x']);
        let mut learner = SevpaLearner::new(member_ref, alphabet, SevpaLearnerConfig::default());
        let hyp = learner.learn(|h| pool.find_counterexample(&mat, h)).expect("learning succeeds");
        // After convergence the hypothesis agrees with the oracle on every pool string.
        assert!(pool.find_counterexample(&mat, &hyp).is_none());
    }

    #[test]
    fn counterexample_is_reported_in_converted_form() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let tokenizer = dyck_tokenizer();
        let seeds = vec!["(x)".to_string()];
        let pool = TestPool::build(&mat, &tokenizer, &seeds, &TestPoolConfig::default());
        // A trivially wrong hypothesis: accepts nothing (no accepting states).
        let member = |_: &str| false;
        let member_ref: &dyn Fn(&str) -> bool = &member;
        let alphabet = TaggedAlphabet::new(tokenizer.marker_tagging(), vec!['(', ')', 'x']);
        let mut learner = SevpaLearner::new(member_ref, alphabet, SevpaLearnerConfig::default());
        let wrong = learner.learn(|_| None).expect("no counterexamples requested");
        let ce = pool.find_counterexample(&mat, &wrong);
        assert!(ce.is_some());
        let ce = ce.unwrap();
        // The counterexample is the converted form of a raw pool member.
        assert!(pool.raw_strings().contains(&strip_markers(&ce)));
    }
}
