//! Character-level tagging inference (paper §4.3, Algorithm 3).
//!
//! Given seed strings and the membership oracle, infer a tagging `T ⊆ Σ × Σ` of
//! call/return character pairs that is *compatible* with the seeds: every seed is
//! well matched under `T` and every nesting pattern of the seeds contains an
//! unmatched call of some pair in its `x` part and an unmatched paired return in its
//! `y` part (Definition 4.5). By Theorem 4.2, a compatible tagging turns the oracle
//! language into a VPL, which Algorithm 1 can then learn exactly.

use vstar_vpl::nested::{unmatched_call_positions, unmatched_return_positions};
use vstar_vpl::Tagging;

use crate::mat::Mat;
use crate::nesting::{candidate_nesting, NestingConfig, NestingPattern};

/// Configuration for [`tag_infer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagInferConfig {
    /// Upper bound on the pumping bound `K` tried by the outer loop (the paper
    /// starts at `K = 2` and increments; Theorem 4.3 guarantees a finite bound).
    pub max_k: usize,
    /// Limits for the nesting-pattern enumeration.
    pub nesting: NestingConfig,
}

impl Default for TagInferConfig {
    fn default() -> Self {
        TagInferConfig { max_k: 3, nesting: NestingConfig::default() }
    }
}

/// Is the tagging compatible with one nesting pattern (Definition 4.5)?
///
/// There must be a pair `(‹a, b›)` of the tagging such that `x` contains an `a`
/// that is unmatched *within* `x`, and `y` contains a `b` that is unmatched within
/// `y`.
#[must_use]
pub fn tagging_compatible_with_pattern(tagging: &Tagging, pattern: &NestingPattern) -> bool {
    let x = tagging.tag(&pattern.x());
    let y = tagging.tag(&pattern.y());
    tagging.pairs().iter().any(|&(call, ret)| {
        !unmatched_call_positions(&x, call).is_empty()
            && !unmatched_return_positions(&y, ret).is_empty()
    })
}

/// Is the tagging compatible with the seed strings and all their nesting patterns
/// (Definition 4.5, second part)?
#[must_use]
pub fn tagging_compatible(
    tagging: &Tagging,
    seeds: &[String],
    patterns: &[NestingPattern],
) -> bool {
    seeds.iter().all(|s| tagging.is_well_matched(s))
        && patterns.iter().all(|p| tagging_compatible_with_pattern(tagging, p))
}

/// Infers a tagging compatible with the seed strings (Algorithm 3).
///
/// Returns `None` if no compatible tagging exists for any `K ≤ config.max_k`.
/// An empty tagging (no call/return pairs at all) is returned when the seeds have
/// no nesting patterns, i.e. when the oracle language looks regular.
#[must_use]
pub fn tag_infer(mat: &Mat<'_>, seeds: &[String], config: &TagInferConfig) -> Option<Tagging> {
    for big_k in 2..=config.max_k.max(2) {
        let patterns = candidate_nesting(mat, seeds, big_k, &config.nesting);
        if let Some(t) = search(seeds, &patterns, &[], &Tagging::new()) {
            return Some(t);
        }
    }
    None
}

/// The backtracking `search` of Algorithm 3.
fn search(
    seeds: &[String],
    remaining: &[NestingPattern],
    done: &[NestingPattern],
    tagging: &Tagging,
) -> Option<Tagging> {
    let Some((pattern, rest)) = remaining.split_first() else {
        return Some(tagging.clone());
    };
    let mut done_plus: Vec<NestingPattern> = done.to_vec();
    done_plus.push(pattern.clone());

    if tagging_compatible_with_pattern(tagging, pattern) {
        return search(seeds, rest, &done_plus, tagging);
    }

    // Prioritise outermost characters: leftmost in x, rightmost in y (the paper's
    // running example pairs 'a' with 'b' from the pattern (ag, hb)).
    let x_chars: Vec<char> = pattern.x().chars().collect();
    let mut y_chars: Vec<char> = pattern.y().chars().collect();
    y_chars.reverse();
    for &call in &x_chars {
        for &ret in &y_chars {
            if call == ret {
                continue;
            }
            let mut extended = tagging.clone();
            if extended.add_pair(call, ret).is_err() {
                continue; // characters already used by the tagging
            }
            if seeds.iter().all(|s| extended.is_well_matched(s))
                && done_plus.iter().all(|p| tagging_compatible_with_pattern(&extended, p))
            {
                if let Some(result) = search(seeds, rest, &done_plus, &extended) {
                    return Some(result);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_oracle(s: &str) -> bool {
        fn l(s: &[u8], mut pos: usize) -> Option<usize> {
            loop {
                match s.get(pos) {
                    Some(b'a') => {
                        pos = a(s, pos + 1)?;
                        if s.get(pos) != Some(&b'b') {
                            return None;
                        }
                        pos += 1;
                    }
                    Some(b'c') => {
                        if s.get(pos + 1) != Some(&b'd') {
                            return None;
                        }
                        pos += 2;
                    }
                    _ => return Some(pos),
                }
            }
        }
        fn a(s: &[u8], pos: usize) -> Option<usize> {
            if s.get(pos) != Some(&b'g') {
                return None;
            }
            let pos = l(s, pos + 1)?;
            if s.get(pos) != Some(&b'h') {
                return None;
            }
            Some(pos + 1)
        }
        l(s.as_bytes(), 0) == Some(s.len())
    }

    fn dyck_oracle(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    #[test]
    fn compatibility_with_paper_example() {
        let pattern = NestingPattern::new("agcdcdhbcd", (0, 2), (6, 8));
        // {(a,b)} is compatible: 'a' unmatched in "ag", 'b' unmatched in "hb".
        let ab = Tagging::from_pairs([('a', 'b')]).unwrap();
        assert!(tagging_compatible_with_pattern(&ab, &pattern));
        // {(g,h)} is compatible too.
        let gh = Tagging::from_pairs([('g', 'h')]).unwrap();
        assert!(tagging_compatible_with_pattern(&gh, &pattern));
        // {(c,d)} is not: c does not occur in x at all.
        let cd = Tagging::from_pairs([('c', 'd')]).unwrap();
        assert!(!tagging_compatible_with_pattern(&cd, &pattern));
    }

    #[test]
    fn incompatible_crossed_tagging_rejected_by_well_matchedness() {
        // The paper notes {(a,h),(g,b)} is incompatible: the seed is not
        // well matched under it.
        let crossed = Tagging::from_pairs([('a', 'h'), ('g', 'b')]).unwrap();
        let seeds = vec!["agcdcdhbcd".to_string()];
        assert!(!tagging_compatible(&crossed, &seeds, &[]));
    }

    #[test]
    fn infers_tagging_for_fig1() {
        let oracle = fig1_oracle;
        let mat = Mat::new(&oracle);
        let seeds = vec!["agcdcdhbcd".to_string()];
        let tagging = tag_infer(&mat, &seeds, &TagInferConfig::default()).expect("tagging found");
        // The inferred tagging must be compatible; the paper's preferred answer is
        // {(a,b)} (outermost pair), but any compatible tagging is acceptable.
        let patterns = candidate_nesting(&mat, &seeds, 2, &NestingConfig::default());
        assert!(tagging_compatible(&tagging, &seeds, &patterns), "tagging {tagging} incompatible");
        assert!(!tagging.is_empty());
        // Outermost preference: the pair (a, b) is chosen for the outermost pattern.
        assert!(
            tagging.pairs().contains(&('a', 'b')) || tagging.pairs().contains(&('g', 'h')),
            "unexpected tagging {tagging}"
        );
    }

    #[test]
    fn infers_tagging_for_dyck() {
        let oracle = dyck_oracle;
        let mat = Mat::new(&oracle);
        let seeds = vec!["(x(x))x".to_string()];
        let tagging = tag_infer(&mat, &seeds, &TagInferConfig::default()).expect("tagging found");
        assert_eq!(tagging.pairs(), &[('(', ')')]);
    }

    #[test]
    fn regular_language_gets_empty_tagging() {
        // (ab)* has no nesting patterns (only regular pumping), so the inferred
        // tagging is empty and the language will be learned as a plain DFA.
        let oracle = |s: &str| {
            let chars: Vec<char> = s.chars().collect();
            chars.len() % 2 == 0 && chars.chunks(2).all(|c| c == ['a', 'b'])
        };
        let mat = Mat::new(&oracle);
        let seeds = vec!["abab".to_string()];
        let tagging = tag_infer(&mat, &seeds, &TagInferConfig::default()).expect("tagging found");
        assert!(tagging.is_empty());
    }

    #[test]
    fn two_pair_language() {
        // Language: a D b | c D d where D is Dyck-like over the same pairs with
        // plain 'x': i.e. both (a,b) and (c,d) are call/return pairs.
        fn oracle(s: &str) -> bool {
            fn expr(s: &[u8], pos: usize) -> Option<usize> {
                match s.get(pos) {
                    Some(b'x') => Some(pos + 1),
                    Some(b'a') => {
                        let p = expr(s, pos + 1)?;
                        (s.get(p) == Some(&b'b')).then_some(p + 1)
                    }
                    Some(b'c') => {
                        let p = expr(s, pos + 1)?;
                        (s.get(p) == Some(&b'd')).then_some(p + 1)
                    }
                    _ => None,
                }
            }
            expr(s.as_bytes(), 0) == Some(s.len())
        }
        let oracle_fn = oracle;
        let mat = Mat::new(&oracle_fn);
        let seeds = vec!["axb".to_string(), "cxd".to_string(), "acxdb".to_string()];
        let tagging = tag_infer(&mat, &seeds, &TagInferConfig::default()).expect("tagging found");
        assert_eq!(tagging.pair_count(), 2);
        assert!(tagging.pairs().contains(&('a', 'b')));
        assert!(tagging.pairs().contains(&('c', 'd')));
    }
}
