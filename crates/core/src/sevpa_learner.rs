//! The table-based *k*-SEVPA learner (paper §4.2: Algorithms 1–2 and Prop. 4.3).
//!
//! The learner maintains, for each module `i ∈ [0..k]` of the single-entry VPA
//! (module 0 is the base module, module `i ≥ 1` belongs to the `i`-th call symbol),
//! a set of well-matched *access words* `Q_i` and a set of *test words* `C_i`
//! (paper §4.2.2). Two access words are `C_i`-equivalent when all tests agree on
//! them; the observation structure is kept *separable* (no two access words are
//! equivalent) and *closed* (every one-step extension is equivalent to some access
//! word), at which point a hypothesis VPA can be read off (Definition 4.3).
//! Counterexamples from (simulated) equivalence queries are processed with the
//! binary-search analysis of Proposition 4.3.
//!
//! The learner is agnostic to whether the call/return characters are real oracle
//! characters (paper §4) or the artificial markers inserted by `conv_τ` (paper §5):
//! it only sees a [`TaggedAlphabet`] and a membership function over strings in that
//! alphabet.

use vstar_vpl::vpa::StackSymId;
use vstar_vpl::{Kind, StateId, Tagging, Vpa, VpaBuilder};

use crate::error::VStarError;

/// The alphabet the learner works over: a tagging giving the call/return characters
/// plus the set of plain characters.
#[derive(Clone, Debug)]
pub struct TaggedAlphabet {
    tagging: Tagging,
    plain: Vec<char>,
}

impl TaggedAlphabet {
    /// Creates an alphabet. Characters of `plain` that are tagged as call/return by
    /// `tagging` are dropped from the plain set.
    #[must_use]
    pub fn new(tagging: Tagging, plain: Vec<char>) -> Self {
        let mut plain: Vec<char> =
            plain.into_iter().filter(|&c| tagging.kind(c) == Kind::Plain).collect();
        plain.sort_unstable();
        plain.dedup();
        TaggedAlphabet { tagging, plain }
    }

    /// The tagging (call/return pairs).
    #[must_use]
    pub fn tagging(&self) -> &Tagging {
        &self.tagging
    }

    /// The plain characters.
    #[must_use]
    pub fn plain(&self) -> &[char] {
        &self.plain
    }

    /// The call characters, in pair order (module `i+1` belongs to the `i`-th pair).
    #[must_use]
    pub fn call_chars(&self) -> Vec<char> {
        self.tagging.call_symbols().collect()
    }

    /// The return characters, in pair order.
    #[must_use]
    pub fn ret_chars(&self) -> Vec<char> {
        self.tagging.return_symbols().collect()
    }
}

/// Configuration for the [`SevpaLearner`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SevpaLearnerConfig {
    /// Maximum number of counterexample rounds before giving up.
    pub max_ce_rounds: usize,
    /// Safety bound on the total number of states.
    pub max_states: usize,
}

impl Default for SevpaLearnerConfig {
    fn default() -> Self {
        SevpaLearnerConfig { max_ce_rounds: 200, max_states: 4000 }
    }
}

/// A test word: a context `(u, v)`; the test of an access word `q` is the
/// membership of `u · q · v`. Module 0 uses contexts with `u = ε`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Test {
    prefix: String,
    suffix: String,
}

#[derive(Clone, Debug, Default)]
struct Module {
    access: Vec<String>,
    tests: Vec<Test>,
}

/// Seed material for one module of the observation structure: access words and
/// test contexts mined outside the active loop (e.g. from a sample corpus by
/// `vstar-passive`).
#[derive(Clone, Debug, Default)]
pub struct ModuleSeed {
    /// Candidate access words (module-local well-matched words over the
    /// tagged alphabet).
    pub access: Vec<String>,
    /// Candidate test contexts `(prefix, suffix)`; the test of an access word
    /// `q` is the membership of `prefix · q · suffix`.
    pub tests: Vec<(String, String)>,
}

/// A warm-start seed for the whole observation structure, one entry per module
/// (index 0 is the base module, index `i ≥ 1` belongs to the `i`-th call
/// pair). Entries beyond the learner's module count are ignored.
#[derive(Clone, Debug, Default)]
pub struct ObservationSeed {
    /// Per-module seed material.
    pub modules: Vec<ModuleSeed>,
}

impl ObservationSeed {
    /// Returns `true` when the seed carries no access words and no tests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.iter().all(|m| m.access.is_empty() && m.tests.is_empty())
    }

    /// Total number of candidate access words across modules.
    #[must_use]
    pub fn access_words(&self) -> usize {
        self.modules.iter().map(|m| m.access.len()).sum()
    }

    /// Total number of candidate test contexts across modules.
    #[must_use]
    pub fn tests(&self) -> usize {
        self.modules.iter().map(|m| m.tests.len()).sum()
    }
}

/// A hypothesis VPA together with the learner metadata needed to analyse
/// counterexamples (module and access word of each state, contents of each stack
/// symbol).
#[derive(Clone, Debug)]
pub struct Hypothesis {
    /// The hypothesis automaton (over the tagged alphabet).
    pub vpa: Vpa,
    /// For each state: `(module, access word)`.
    pub states: Vec<(usize, String)>,
    /// For each stack symbol: `(state pushed from, call character)`.
    pub stack_syms: Vec<(StateId, char)>,
}

/// Statistics of a completed learning run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LearnerStats {
    /// Number of simulated equivalence queries.
    pub equivalence_queries: usize,
    /// Number of counterexamples processed.
    pub counterexamples: usize,
    /// Number of states of the final hypothesis.
    pub states: usize,
}

/// The table-based k-SEVPA learner.
pub struct SevpaLearner<'a> {
    member: &'a dyn Fn(&str) -> bool,
    alphabet: TaggedAlphabet,
    config: SevpaLearnerConfig,
    modules: Vec<Module>,
    stats: LearnerStats,
}

impl<'a> std::fmt::Debug for SevpaLearner<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SevpaLearner")
            .field("modules", &self.modules.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'a> SevpaLearner<'a> {
    /// Creates a learner for the language decided by `member` (a membership function
    /// over strings in the tagged alphabet).
    #[must_use]
    pub fn new(
        member: &'a dyn Fn(&str) -> bool,
        alphabet: TaggedAlphabet,
        config: SevpaLearnerConfig,
    ) -> Self {
        let k = alphabet.tagging().pair_count();
        let ret_chars = alphabet.ret_chars();
        let call_chars = alphabet.call_chars();
        let mut modules = vec![Module::default(); k + 1];
        for (i, module) in modules.iter_mut().enumerate() {
            module.access.push(String::new());
            if i == 0 {
                module.tests.push(Test { prefix: String::new(), suffix: String::new() });
            } else {
                // C_i initialised with (‹a_i, b›) for every return character b›.
                for &b in &ret_chars {
                    module.tests.push(Test {
                        prefix: call_chars[i - 1].to_string(),
                        suffix: b.to_string(),
                    });
                }
            }
        }
        SevpaLearner { member, alphabet, config, modules, stats: LearnerStats::default() }
    }

    /// Statistics of the run so far.
    #[must_use]
    pub fn stats(&self) -> LearnerStats {
        self.stats
    }

    /// The alphabet the learner works over.
    #[must_use]
    pub fn alphabet(&self) -> &TaggedAlphabet {
        &self.alphabet
    }

    fn member(&self, s: &str) -> bool {
        (self.member)(s)
    }

    /// Are `s1` and `s2` equivalent w.r.t. the tests of module `i`?
    fn equivalent(&self, module: usize, s1: &str, s2: &str) -> bool {
        self.modules[module].tests.iter().all(|t| {
            self.member(&format!("{}{}{}", t.prefix, s1, t.suffix))
                == self.member(&format!("{}{}{}", t.prefix, s2, t.suffix))
        })
    }

    /// Index of an access word of module `i` equivalent to `s`, if any.
    fn find_equivalent(&self, module: usize, s: &str) -> Option<usize> {
        (0..self.modules[module].access.len())
            .find(|&idx| self.equivalent(module, &self.modules[module].access[idx].clone(), s))
    }

    /// The current extension set Σ_M: plain characters plus the nested words
    /// `‹a_i q b›` for every access word `q` of module `i ≥ 1` and return `b›`
    /// (Definition 4.2). Bare call/return symbols are omitted because appending
    /// them cannot produce well-matched access words; their transitions are fixed
    /// by the single-entry structure.
    fn extensions(&self) -> Vec<String> {
        let call_chars = self.alphabet.call_chars();
        let ret_chars = self.alphabet.ret_chars();
        let mut out: Vec<String> = self.alphabet.plain.iter().map(ToString::to_string).collect();
        for (i, module) in self.modules.iter().enumerate().skip(1) {
            for q in &module.access {
                for &b in &ret_chars {
                    out.push(format!("{}{q}{b}", call_chars[i - 1]));
                }
            }
        }
        out
    }

    /// Algorithm 2: extend the access-word sets until the structure is closed.
    fn close(&mut self) {
        loop {
            let mut added = false;
            let extensions = self.extensions();
            for module_idx in 0..self.modules.len() {
                let access_words = self.modules[module_idx].access.clone();
                for q in &access_words {
                    for m in &extensions {
                        let candidate = format!("{q}{m}");
                        if self.find_equivalent(module_idx, &candidate).is_none() {
                            self.modules[module_idx].access.push(candidate);
                            added = true;
                            if self.state_count() >= self.config.max_states {
                                return;
                            }
                        }
                    }
                }
                if added {
                    break; // recompute extensions: new access words add nested words
                }
            }
            if !added {
                return;
            }
        }
    }

    /// Total number of access words across modules.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.modules.iter().map(|m| m.access.len()).sum()
    }

    fn state_id(&self, module: usize, idx: usize) -> StateId {
        let offset: usize = self.modules[..module].iter().map(|m| m.access.len()).sum();
        StateId(offset + idx)
    }

    /// Definition 4.3: read a hypothesis VPA off the closed, separable structure.
    fn construct_vpa(&mut self) -> Hypothesis {
        let call_chars = self.alphabet.call_chars();
        let ret_chars = self.alphabet.ret_chars();
        let mut builder = VpaBuilder::new(self.alphabet.tagging().clone());

        let mut states: Vec<(usize, String)> = Vec::new();
        for (i, module) in self.modules.iter().enumerate() {
            for q in &module.access {
                states.push((i, q.clone()));
            }
        }
        let state_ids = builder.add_states(states.len());

        builder.set_initial(self.state_id(0, 0));
        // Accepting states: module-0 access words that are members.
        let accepting: Vec<usize> = self.modules[0]
            .access
            .iter()
            .enumerate()
            .filter(|(_, q)| self.member(q))
            .map(|(idx, _)| idx)
            .collect();
        for idx in accepting {
            builder.add_accepting(self.state_id(0, idx));
        }

        // One stack symbol per (source state, call character).
        let mut stack_syms: Vec<(StateId, char)> = Vec::new();
        let stack_sym_id = |builder: &mut VpaBuilder,
                            stack_syms: &mut Vec<(StateId, char)>,
                            state: StateId,
                            call: char|
         -> StackSymId {
            if let Some(pos) = stack_syms.iter().position(|&(s, c)| s == state && c == call) {
                StackSymId(pos)
            } else {
                let id = builder.add_stack_symbol();
                stack_syms.push((state, call));
                id
            }
        };

        // Call transitions: from every state, on ‹a_j, push (state, ‹a_j) and move to
        // the entry state of module j.
        for (sid, _) in states.iter().enumerate() {
            let from = state_ids[sid];
            for (j, &a) in call_chars.iter().enumerate() {
                let gamma = stack_sym_id(&mut builder, &mut stack_syms, from, a);
                let entry = self.state_id(j + 1, 0);
                builder.call(from, a, entry, gamma).expect("valid call transition");
            }
        }

        // Plain transitions inside each module.
        for (sid, (module, q)) in states.iter().enumerate() {
            let from = state_ids[sid];
            for &c in &self.alphabet.plain.clone() {
                let candidate = format!("{q}{c}");
                if let Some(target_idx) = self.find_equivalent(*module, &candidate) {
                    let to = self.state_id(*module, target_idx);
                    builder.plain(from, c, to).expect("valid plain transition");
                }
            }
        }

        // Return transitions: from a state of module i ≥ 1, on b›, with stack symbol
        // ([q']_j, ‹a_i), move to the module-j state equivalent to q' ‹a_i q b›.
        for (sid, (module_i, q)) in states.iter().enumerate() {
            if *module_i == 0 {
                continue;
            }
            let from = state_ids[sid];
            let a_i = call_chars[*module_i - 1];
            for &b in &ret_chars {
                for (gamma_idx, &(push_state, call)) in stack_syms.clone().iter().enumerate() {
                    if call != a_i {
                        continue;
                    }
                    let (module_j, q_prime) = states[push_state.0].clone();
                    let combined = format!("{q_prime}{a_i}{q}{b}");
                    if let Some(target_idx) = self.find_equivalent(module_j, &combined) {
                        let to = self.state_id(module_j, target_idx);
                        builder
                            .ret(from, b, StackSymId(gamma_idx), to)
                            .expect("valid return transition");
                    }
                }
            }
        }

        let vpa = builder.build().expect("hypothesis automaton is well formed");
        self.stats.states = states.len();
        Hypothesis { vpa, states, stack_syms }
    }

    /// The context `(w, w')` of the configuration after reading `idx` symbols of the
    /// counterexample (proof of Proposition 4.3).
    fn context_of(
        &self,
        hyp: &Hypothesis,
        trace_cfg: &vstar_vpl::vpa::Configuration,
        rest: &str,
    ) -> (String, String) {
        let mut prefix = String::new();
        for gamma in &trace_cfg.stack {
            let (push_state, call) = hyp.stack_syms[gamma.0];
            prefix.push_str(&hyp.states[push_state.0].1);
            prefix.push(call);
        }
        (prefix, rest.to_string())
    }

    /// Processes a counterexample (Proposition 4.3). Returns `Ok(true)` if the
    /// observation structure was refined, `Ok(false)` if no refinement was possible
    /// (which indicates the approximate equivalence test produced a spurious
    /// counterexample).
    fn process_counterexample(&mut self, hyp: &Hypothesis, ce: &str) -> Result<bool, VStarError> {
        let tagged = self.alphabet.tagging().tag(ce);
        let chars: Vec<char> = ce.chars().collect();
        let n = chars.len();
        let ce_member = self.member(ce);
        // A member that is not pair-matched cannot be represented under the
        // inferred structure at all. A *non-member* that is not pair-matched
        // is different: the hypothesis can genuinely accept it — acceptance
        // only needs an empty stack, and the constructed return transitions
        // may pop a stack symbol pushed by a different pair's call — and the
        // standard analysis below handles it (the trace completes, the
        // contexts are well defined), refining the observation structure
        // until the cross-pair acceptance is gone. Before counterexample-
        // guided refinement nothing ever surfaced such words, which is why
        // they survived into serving artifacts.
        if ce_member && !self.alphabet.tagging().is_well_matched(ce) {
            return Err(VStarError::IncompatibleCounterexample { counterexample: ce.to_string() });
        }
        let trace = hyp.vpa.trace_tagged(&tagged);
        if !trace.completed() {
            if std::env::var_os("VSTAR_DEBUG_LEARNER").is_some() {
                eprintln!("[learner] trace stuck at {:?} on counterexample {ce:?}", trace.stuck_at);
            }
            // The hypothesis rejects by getting stuck; the counterexample is
            // then a member (or an ill-matched word the strategy should not
            // have sent — strategies only report disagreements, and a stuck
            // trace means the hypothesis rejects). The stuck prefix still
            // gives us refinement information, but the simplest sound
            // treatment is to refine at the stuck position's predecessor via
            // the same analysis on the completed prefix. We fall back to
            // reporting no progress if even that fails.
            return Ok(false);
        }

        let correct = |learner: &Self, idx: usize| -> bool {
            let rest: String = chars[idx..].iter().collect();
            let (w, w_prime) = learner.context_of(hyp, &trace.configs[idx], &rest);
            let state_word = &hyp.states[trace.configs[idx].state.0].1;
            learner.member(&format!("{w}{state_word}{w_prime}")) == ce_member
        };

        debug_assert!(correct(self, 0), "the initial state is always correct");
        if correct(self, n) {
            // The final state agrees with the oracle: spurious counterexample.
            if std::env::var_os("VSTAR_DEBUG_LEARNER").is_some() {
                eprintln!("[learner] final state already correct on counterexample {ce:?}");
            }
            return Ok(false);
        }
        let (mut lo, mut hi) = (0usize, n);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if correct(self, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let i = lo;
        let sym = tagged[i];
        let rest_after: String = chars[i + 1..].iter().collect();
        let (w_next, w_next_suffix) = self.context_of(hyp, &trace.configs[i + 1], &rest_after);
        let state_i = trace.configs[i].state;
        let (module_i, access_i) = hyp.states[state_i.0].clone();

        match sym.kind {
            Kind::Call => {
                // Proposition 4.3 proves s[i+1] cannot be a call symbol; if the
                // approximate tests put us here anyway, report no progress.
                if std::env::var_os("VSTAR_DEBUG_LEARNER").is_some() {
                    eprintln!(
                        "[learner] counterexample analysis landed on a call symbol in {ce:?}"
                    );
                }
                Ok(false)
            }
            Kind::Plain => {
                let new_access = format!("{access_i}{}", sym.ch);
                let progressed = self.refine(module_i, new_access, w_next, w_next_suffix);
                if !progressed && std::env::var_os("VSTAR_DEBUG_LEARNER").is_some() {
                    eprintln!("[learner] plain refinement made no progress on {ce:?}");
                }
                Ok(progressed)
            }
            Kind::Return => {
                let Some(&gamma) = trace.configs[i].stack.last() else {
                    return Ok(false);
                };
                let (push_state, call) = hyp.stack_syms[gamma.0];
                let (module_j, access_push) = hyp.states[push_state.0].clone();
                let new_access = format!("{access_push}{call}{access_i}{}", sym.ch);
                let progressed = self.refine(module_j, new_access, w_next, w_next_suffix);
                if !progressed && std::env::var_os("VSTAR_DEBUG_LEARNER").is_some() {
                    eprintln!("[learner] return refinement made no progress on {ce:?}");
                }
                Ok(progressed)
            }
        }
    }

    /// Adds an access word and a distinguishing test to a module. Returns `true`
    /// if anything new was added.
    fn refine(&mut self, module: usize, access: String, prefix: String, suffix: String) -> bool {
        let test = Test { prefix, suffix };
        let module_ref = &mut self.modules[module];
        let mut added = false;
        if !module_ref.tests.contains(&test) {
            module_ref.tests.push(test);
            added = true;
        }
        if !module_ref.access.contains(&access) {
            module_ref.access.push(access);
            added = true;
        }
        added
    }

    /// Algorithm 1: learn a VPA using the given (simulated) equivalence query.
    ///
    /// `equivalence` receives the current hypothesis and returns a counterexample —
    /// a string over the tagged alphabet on which the hypothesis and the oracle
    /// disagree — or `None` if no disagreement was found.
    ///
    /// # Errors
    ///
    /// Returns [`VStarError::LearnerDidNotConverge`] if the counterexample budget is
    /// exhausted and [`VStarError::IncompatibleCounterexample`] if a member of the
    /// oracle language is not well matched under the tagging.
    pub fn learn(
        &mut self,
        mut equivalence: impl FnMut(&Hypothesis) -> Option<String>,
    ) -> Result<Hypothesis, VStarError> {
        {
            let _row_fill = vstar_telemetry::span("row-fill");
            self.close();
        }
        for round in 0..self.config.max_ce_rounds {
            vstar_telemetry::counter("learner.rounds", 1);
            let hypothesis = {
                let _construct = vstar_telemetry::span("hypothesis-construction");
                self.construct_vpa()
            };
            self.observe_hypothesis(round, &hypothesis);
            self.stats.equivalence_queries += 1;
            vstar_telemetry::counter("learner.equivalence_queries", 1);
            let counterexample = {
                let _equivalence = vstar_telemetry::span("pool-equivalence");
                equivalence(&hypothesis)
            };
            match counterexample {
                None => return Ok(hypothesis),
                Some(ce) => {
                    self.stats.counterexamples += 1;
                    vstar_telemetry::counter("learner.counterexamples", 1);
                    let progressed = {
                        let _ce_processing = vstar_telemetry::span("ce-processing");
                        self.process_counterexample(&hypothesis, &ce)?
                    };
                    if !progressed {
                        // Spurious counterexample (an artifact of approximate
                        // equivalence): returning the current hypothesis is the
                        // best we can do.
                        vstar_telemetry::counter("learner.spurious_counterexamples", 1);
                        return Ok(hypothesis);
                    }
                    let _row_fill = vstar_telemetry::span("row-fill");
                    self.close();
                }
            }
        }
        Err(VStarError::LearnerDidNotConverge { rounds: self.config.max_ce_rounds })
    }

    /// Journals the dimensions of a freshly constructed hypothesis: the
    /// observation-table growth curve (access and test words per round) and
    /// the hypothesis sizes, as deterministic telemetry facts.
    fn observe_hypothesis(&self, round: usize, hypothesis: &Hypothesis) {
        if !vstar_telemetry::enabled() {
            return;
        }
        let access_words: usize = self.modules.iter().map(|m| m.access.len()).sum();
        let test_words: usize = self.modules.iter().map(|m| m.tests.len()).sum();
        vstar_telemetry::record("learner.hypothesis_states", hypothesis.vpa.state_count() as u64);
        vstar_telemetry::event(
            "learner.hypothesis",
            &[
                ("round", round as u64),
                ("states", hypothesis.vpa.state_count() as u64),
                ("stack_symbols", hypothesis.stack_syms.len() as u64),
                ("modules", self.modules.len() as u64),
                ("access_words", access_words as u64),
                ("test_words", test_words as u64),
            ],
        );
    }

    /// Warm-starts the observation structure from corpus-mined material
    /// (hybrid passive/active learning). Tests are installed first; each
    /// candidate access word is then admitted only when no existing access
    /// word of its module is equivalent under the module's tests — the same
    /// separability guard `close` applies to one-step
    /// extensions, so a seeded structure is indistinguishable from one the
    /// active loop grew itself. Returns the number of access words admitted.
    ///
    /// Membership queries issued by the admission checks go through the
    /// learner's membership function and are attributed to VPA learning.
    pub fn seed_observations(&mut self, seed: &ObservationSeed) -> usize {
        for (module_idx, module_seed) in seed.modules.iter().enumerate() {
            if module_idx >= self.modules.len() {
                break;
            }
            for (prefix, suffix) in &module_seed.tests {
                let test = Test { prefix: prefix.clone(), suffix: suffix.clone() };
                if !self.modules[module_idx].tests.contains(&test) {
                    self.modules[module_idx].tests.push(test);
                }
            }
        }
        let mut admitted = 0;
        for (module_idx, module_seed) in seed.modules.iter().enumerate() {
            if module_idx >= self.modules.len() {
                break;
            }
            for access in &module_seed.access {
                if self.state_count() >= self.config.max_states {
                    return admitted;
                }
                if self.modules[module_idx].access.contains(access) {
                    continue;
                }
                if self.find_equivalent(module_idx, access).is_none() {
                    self.modules[module_idx].access.push(access.clone());
                    admitted += 1;
                }
            }
        }
        vstar_telemetry::counter("learner.seeded_access_words", admitted as u64);
        admitted
    }

    /// Convenience: learn with equivalence simulated over a fixed pool of test
    /// strings (over the tagged alphabet). Returns the first disagreeing test
    /// string each round.
    ///
    /// # Errors
    ///
    /// See [`SevpaLearner::learn`].
    pub fn learn_with_test_pool(&mut self, pool: &[String]) -> Result<Hypothesis, VStarError> {
        let member = self.member;
        let pool: Vec<String> = pool.to_vec();
        self.learn(move |hyp| {
            pool.iter()
                .find(|s| {
                    let tagged = hyp.vpa.tagging().tag(s);
                    member(s) != hyp.vpa.accepts_tagged(&tagged)
                })
                .cloned()
        })
    }
}

/// Enumerates all strings over the tagged alphabet up to `max_len` and returns those
/// on which `member` and the hypothesis disagree — an exact equivalence check for
/// small bounds, used by tests.
#[must_use]
pub fn exhaustive_disagreement(
    member: &dyn Fn(&str) -> bool,
    hyp: &Hypothesis,
    alphabet: &TaggedAlphabet,
    max_len: usize,
) -> Option<String> {
    let mut symbols: Vec<char> = alphabet.plain().to_vec();
    symbols.extend(alphabet.call_chars());
    symbols.extend(alphabet.ret_chars());
    let mut frontier = vec![String::new()];
    for _ in 0..=max_len {
        for w in &frontier {
            if member(w) != hyp.vpa.accepts(w) {
                return Some(w.clone());
            }
        }
        let mut next = Vec::with_capacity(frontier.len() * symbols.len());
        for w in &frontier {
            if w.chars().count() == max_len {
                continue;
            }
            for &c in &symbols {
                next.push(format!("{w}{c}"));
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn dyck_alphabet() -> TaggedAlphabet {
        TaggedAlphabet::new(Tagging::from_pairs([('(', ')')]).unwrap(), vec!['(', ')', 'x'])
    }

    #[test]
    fn alphabet_filters_tagged_chars_from_plain() {
        let a = dyck_alphabet();
        assert_eq!(a.plain(), ['x']);
        assert_eq!(a.call_chars(), vec!['(']);
        assert_eq!(a.ret_chars(), vec![')']);
    }

    #[test]
    fn learns_dyck_exactly_with_bounded_equivalence() {
        let member: &dyn Fn(&str) -> bool = &dyck;
        let alphabet = dyck_alphabet();
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&dyck, hyp, &alphabet, 6))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&dyck, &hyp, &alphabet, 7).is_none());
        assert!(hyp.vpa.accepts("((x)x)"));
        assert!(!hyp.vpa.accepts("((x)"));
        assert!(learner.stats().states >= 1);
    }

    #[test]
    fn learns_depth_language() {
        // { (^k x )^k | k ≥ 0 }: needs a state distinguishing "has seen x".
        fn lang(s: &str) -> bool {
            let chars: Vec<char> = s.chars().collect();
            let opens = chars.iter().take_while(|&&c| c == '(').count();
            if chars.get(opens) != Some(&'x') {
                return false;
            }
            let closes = &chars[opens + 1..];
            closes.len() == opens && closes.iter().all(|&c| c == ')')
        }
        let member: &dyn Fn(&str) -> bool = &lang;
        let alphabet = dyck_alphabet();
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&lang, hyp, &alphabet, 7))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&lang, &hyp, &alphabet, 8).is_none());
        assert!(hyp.vpa.accepts("((x))"));
        assert!(!hyp.vpa.accepts("((x)"));
        assert!(!hyp.vpa.accepts("(xx)"));
    }

    #[test]
    fn learns_regular_language_with_empty_tagging() {
        // No call/return pairs at all: the learner degenerates to L* for module 0.
        fn lang(s: &str) -> bool {
            s.chars().all(|c| c == 'a' || c == 'b')
                && s.chars().filter(|&c| c == 'a').count() % 2 == 0
        }
        let member: &dyn Fn(&str) -> bool = &lang;
        let alphabet = TaggedAlphabet::new(Tagging::new(), vec!['a', 'b']);
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&lang, hyp, &alphabet, 6))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&lang, &hyp, &alphabet, 7).is_none());
        assert_eq!(hyp.vpa.state_count(), 2);
    }

    #[test]
    fn learns_two_pair_language() {
        // a D b | c D d | x, where D is the same language (two distinct pairs).
        fn lang(s: &str) -> bool {
            fn expr(s: &[u8], pos: usize) -> Option<usize> {
                match s.get(pos) {
                    Some(b'x') => Some(pos + 1),
                    Some(b'a') => {
                        let p = expr(s, pos + 1)?;
                        (s.get(p) == Some(&b'b')).then_some(p + 1)
                    }
                    Some(b'c') => {
                        let p = expr(s, pos + 1)?;
                        (s.get(p) == Some(&b'd')).then_some(p + 1)
                    }
                    _ => None,
                }
            }
            expr(s.as_bytes(), 0) == Some(s.len())
        }
        let member: &dyn Fn(&str) -> bool = &lang;
        let alphabet =
            TaggedAlphabet::new(Tagging::from_pairs([('a', 'b'), ('c', 'd')]).unwrap(), vec!['x']);
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&lang, hyp, &alphabet, 6))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&lang, &hyp, &alphabet, 7).is_none());
        assert!(hyp.vpa.accepts("acxdb"));
        assert!(!hyp.vpa.accepts("acxbd"));
    }

    #[test]
    fn fig1_language_is_learned_exactly() {
        fn fig1(s: &str) -> bool {
            fn l(s: &[u8], mut pos: usize) -> Option<usize> {
                loop {
                    match s.get(pos) {
                        Some(b'a') => {
                            pos = a(s, pos + 1)?;
                            if s.get(pos) != Some(&b'b') {
                                return None;
                            }
                            pos += 1;
                        }
                        Some(b'c') => {
                            if s.get(pos + 1) != Some(&b'd') {
                                return None;
                            }
                            pos += 2;
                        }
                        _ => return Some(pos),
                    }
                }
            }
            fn a(s: &[u8], pos: usize) -> Option<usize> {
                if s.get(pos) != Some(&b'g') {
                    return None;
                }
                let pos = l(s, pos + 1)?;
                if s.get(pos) != Some(&b'h') {
                    return None;
                }
                Some(pos + 1)
            }
            l(s.as_bytes(), 0) == Some(s.len())
        }
        // Use the paper's preferred tagging {(a,b)} with g, h treated as plain.
        let member: &dyn Fn(&str) -> bool = &fig1;
        let alphabet = TaggedAlphabet::new(
            Tagging::from_pairs([('a', 'b')]).unwrap(),
            vec!['c', 'd', 'g', 'h'],
        );
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&fig1, hyp, &alphabet, 6))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&fig1, &hyp, &alphabet, 7).is_none());
        assert!(hyp.vpa.accepts("agcdcdhbcd"));
        assert!(hyp.vpa.accepts("agaghbhbcd"));
        assert!(!hyp.vpa.accepts("agcd"));
    }

    #[test]
    fn seed_observations_admits_only_inequivalent_access_words() {
        let member: &dyn Fn(&str) -> bool = &dyck;
        let alphabet = dyck_alphabet();
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let seed = ObservationSeed {
            modules: vec![
                ModuleSeed {
                    access: vec!["x".into(), "(x)".into()],
                    tests: vec![(String::new(), String::new())],
                },
                ModuleSeed { access: vec!["x".into()], tests: Vec::new() },
            ],
        };
        assert!(!seed.is_empty());
        assert_eq!(seed.access_words(), 3);
        assert_eq!(seed.tests(), 1);
        // Dyck needs one state per module: every candidate is equivalent to ε,
        // so the separability guard rejects them all — and seeding twice is
        // idempotent.
        assert_eq!(learner.seed_observations(&seed), 0);
        assert_eq!(learner.seed_observations(&seed), 0);
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&dyck, hyp, &alphabet, 6))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&dyck, &hyp, &alphabet, 7).is_none());
    }

    #[test]
    fn seed_observations_warm_starts_learning() {
        // { (^k x )^k }: "x" is a genuine second module-0 state, so the seed
        // is admitted and the warm-started run still converges exactly.
        fn lang(s: &str) -> bool {
            let chars: Vec<char> = s.chars().collect();
            let opens = chars.iter().take_while(|&&c| c == '(').count();
            if chars.get(opens) != Some(&'x') {
                return false;
            }
            let closes = &chars[opens + 1..];
            closes.len() == opens && closes.iter().all(|&c| c == ')')
        }
        let member: &dyn Fn(&str) -> bool = &lang;
        let alphabet = dyck_alphabet();
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let seed = ObservationSeed {
            modules: vec![ModuleSeed { access: vec!["x".into()], tests: Vec::new() }],
        };
        assert_eq!(learner.seed_observations(&seed), 1);
        let hyp = learner
            .learn(|hyp| exhaustive_disagreement(&lang, hyp, &alphabet, 7))
            .expect("learning succeeds");
        assert!(exhaustive_disagreement(&lang, &hyp, &alphabet, 8).is_none());
    }

    #[test]
    fn test_pool_equivalence_variant() {
        let member: &dyn Fn(&str) -> bool = &dyck;
        let alphabet = dyck_alphabet();
        let mut learner = SevpaLearner::new(member, alphabet, SevpaLearnerConfig::default());
        // A pool rich enough to learn Dyck exactly.
        let pool: Vec<String> = vstar_vpl::words::all_strings(&['(', ')', 'x'], 6);
        let hyp = learner.learn_with_test_pool(&pool).expect("learning succeeds");
        for s in &pool {
            assert_eq!(dyck(s), hyp.vpa.accepts(s), "disagreement on {s:?}");
        }
    }

    #[test]
    fn stats_and_debug() {
        let member: &dyn Fn(&str) -> bool = &dyck;
        let alphabet = dyck_alphabet();
        let mut learner =
            SevpaLearner::new(member, alphabet.clone(), SevpaLearnerConfig::default());
        let _ = learner.learn(|hyp| exhaustive_disagreement(&dyck, hyp, &alphabet, 5)).unwrap();
        assert!(learner.stats().equivalence_queries >= 1);
        assert!(format!("{learner:?}").contains("SevpaLearner"));
    }

    #[test]
    fn incompatible_counterexample_is_reported() {
        // Oracle accepts ")(", which can never be well matched under {((,))}.
        fn lang(s: &str) -> bool {
            s == ")(" || dyck(s)
        }
        let member: &dyn Fn(&str) -> bool = &lang;
        let alphabet = dyck_alphabet();
        let mut learner = SevpaLearner::new(member, alphabet, SevpaLearnerConfig::default());
        let result = learner.learn(|_| Some(")(".to_string()));
        assert!(matches!(result, Err(VStarError::IncompatibleCounterexample { .. })));
    }
}
